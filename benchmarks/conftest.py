"""Shared machinery for the experiment benchmarks.

Every benchmark regenerates one row/series of the paper's evaluation
(see DESIGN.md §5 for the experiment index) and prints it in a uniform
table format, so `pytest benchmarks/ --benchmark-only -s` reproduces the
whole §6 cost analysis plus the behaviours of Figures 3-1, 4-1 and 5-1.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable

import pytest

from repro.core.config import SystemConfig
from repro.core.system import System

#: schema tag for the machine-readable benchmark artifacts
BENCH_SCHEMA = "repro-bench/v1"


def make_system(machines: int = 4, **overrides) -> System:
    """A booted system with benchmark-friendly defaults."""
    return System(SystemConfig(machines=machines, **overrides))


def make_bare_system(machines: int = 4, **overrides) -> System:
    """A system without servers (pure-mechanism benchmarks)."""
    overrides.setdefault("boot_servers", False)
    return System(SystemConfig(machines=machines, **overrides))


def drain(system: System, max_events: int = 10_000_000) -> None:
    """Run the system to quiescence."""
    fired = system.run(max_events=max_events)
    assert fired < max_events, "simulation did not quiesce"


#: Regenerated tables are also written here, so the paper-vs-measured
#: record survives runs that capture stdout (plain ``--benchmark-only``).
RESULTS_DIR = Path(__file__).parent / "results"


def print_table(
    title: str,
    columns: list[str],
    rows: Iterable[Iterable[Any]],
    notes: str | None = None,
) -> None:
    """Print one experiment's reproduced table and persist it to
    ``benchmarks/results/``."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if notes:
        lines.append(f"    {notes}")
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def write_bench_artifact(
    name: str,
    metrics: dict[str, Any],
    meta: dict[str, Any] | None = None,
) -> Path:
    """Persist one experiment's headline numbers as ``BENCH_<name>.json``.

    The artifact is the machine-readable twin of :func:`print_table`:
    a flat ``metrics`` mapping of metric name to number, so CI can diff
    runs against the committed baselines in ``benchmarks/baselines/``
    (see ``scripts/check_bench_regression.py``).
    """
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "metrics": metrics,
    }
    meta = dict(meta) if meta else {}
    # The regression gate cross-checks run identity (machines, seed)
    # between result and baseline before diffing metrics; every
    # benchmark here runs on the SystemConfig default seed unless its
    # meta says otherwise.
    meta.setdefault("seed", 0)
    payload["meta"] = meta
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def bench_once(benchmark):
    """Run the expensive experiment exactly once under pytest-benchmark.

    Simulations are deterministic; repeating them only burns wall clock.
    """

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
