"""A1 (ablation) — what lazy link updating buys (paper §5).

DESIGN.md calls for ablation benches on the design choices; this one
switches off the §5 link-update message and reruns the stale-link
workload.  Without updates, *every* message on a stale link pays the
forwarding penalty forever ("Simply forwarding messages is a sufficient
mechanism to insure correct operation ... However, the motivation for
process migration is often to improve message performance"); with them,
the penalty is paid once per link.
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.ids import ProcessAddress

ROUNDS = 20


def run(updates_enabled: bool):
    system = make_bare_system(send_link_updates=updates_enabled)
    latencies = []

    def server(ctx):
        while True:
            msg = yield ctx.receive()
            if msg.delivered_link_ids:
                reply = msg.delivered_link_ids[0]
                yield ctx.send(reply, op="r")
                yield ctx.destroy_link(reply)

    def client(ctx):
        for _ in range(ROUNDS):
            reply_link = yield ctx.create_link()
            sent = ctx.now
            yield ctx.send(ctx.bootstrap["server"], op="q",
                          links=(reply_link,))
            yield ctx.receive()
            latencies.append(ctx.now - sent)
            yield ctx.destroy_link(reply_link)
            yield ctx.sleep(2_000)
        yield ctx.exit()

    server_pid = system.spawn(server, machine=0, name="server")
    system.migrate(server_pid, 1)
    drain(system)  # settle: only the client's link will be stale
    system.kernel(2).spawn(
        client, name="client",
        extra_links={"server": ProcessAddress(server_pid, 0)},
    )
    drain(system)
    return {
        "forwards": sum(k.stats.messages_forwarded for k in system.kernels),
        "updates": sum(k.stats.link_updates_sent for k in system.kernels),
        "mean_latency": sum(latencies) / len(latencies),
        "steady_latency": sum(latencies[-5:]) / 5,
    }


def run_both():
    return run(updates_enabled=True), run(updates_enabled=False)


def test_a1_link_update_ablation(bench_once):
    with_updates, without_updates = bench_once(run_both)

    print_table(
        "A1 (ablation): link updating on vs off (paper §5)",
        ["link updates", "forwards", "update msgs", "mean rtt us",
         "steady-state rtt us"],
        [
            ["on", with_updates["forwards"], with_updates["updates"],
             round(with_updates["mean_latency"]),
             round(with_updates["steady_latency"])],
            ["off", without_updates["forwards"],
             without_updates["updates"],
             round(without_updates["mean_latency"]),
             round(without_updates["steady_latency"])],
        ],
        notes=f"{ROUNDS} requests on one stale link; without §5 every "
              f"request forwards forever",
    )

    write_bench_artifact(
        "a1_link_update_ablation",
        {
            "forwards_with_updates": with_updates["forwards"],
            "forwards_without_updates": without_updates["forwards"],
            "steady_latency_us_with_updates": round(
                with_updates["steady_latency"]
            ),
            "steady_latency_us_without_updates": round(
                without_updates["steady_latency"]
            ),
        },
        meta={"paper": "§5: without link updates every request on a "
                       "stale link forwards forever"},
    )

    # With updates: bounded forwards (paper: 1 typical, 2 worst).
    assert with_updates["forwards"] <= 2
    # Without updates: every round forwards — correctness survives, but
    # the performance motivation is defeated.
    assert without_updates["forwards"] == ROUNDS
    assert without_updates["updates"] == 0
    # One extra hop on the request leg of every round trip (the reply
    # leg is unaffected): a persistent ~1.4x penalty on this mesh.
    assert (
        without_updates["steady_latency"]
        > 1.3 * with_updates["steady_latency"]
    )
