"""A2 (ablation) — the value of hysteresis in the decision rule (§3.1).

"[the features not usually available include] a hysteresis mechanism to
keep from incurring the cost of migration more often than justified by
the gains."

Same imbalanced workload, three balancer temperaments: none, a trigger-
happy balancer with no hysteresis, and the tuned balancer (sustained-
imbalance requirement + per-process cooldown).  The trigger-happy variant
must migrate far more often without commensurate benefit.
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.workloads.compute import compute_bound
from repro.workloads.results import ResultsBoard

JOBS = 10
WORK = 60_000


def run(mode: str):
    board = ResultsBoard()
    system = make_bare_system(machines=4)
    for i in range(JOBS):
        system.loop.call_at(
            100 * i,
            lambda: system.spawn(
                lambda ctx: compute_bound(ctx, total=WORK, board=board),
                machine=0,
            ),
        )
    balancer = None
    if mode == "eager":
        balancer = ThresholdLoadBalancer(
            system, interval=2_000, threshold=1, sustain=1, cooldown=0,
        )
    elif mode == "hysteresis":
        balancer = ThresholdLoadBalancer(
            system, interval=10_000, threshold=2, sustain=2,
            cooldown=50_000,
        )
    if balancer is not None:
        balancer.install()
    system.run(until=JOBS * WORK + 400_000)
    if balancer is not None:
        balancer.stop()
    drain(system, max_events=50_000_000)
    records = board.get("compute")
    assert len(records) == JOBS
    return {
        "mode": mode,
        "makespan": max(r["finished"] for r in records),
        "migrations": len(system.migration_records()),
        "admin_bytes": sum(
            r.admin_bytes for r in system.migration_records()
        ),
        "state_bytes": sum(
            r.state_transfer_bytes for r in system.migration_records()
            if r.success
        ),
    }


def run_all():
    return [run("static"), run("eager"), run("hysteresis")]


def test_a2_hysteresis_ablation(bench_once):
    static, eager, tuned = bench_once(run_all)

    print_table(
        "A2 (ablation): hysteresis in the migration decision rule (§3.1)",
        ["balancer", "makespan us", "migrations", "admin bytes",
         "state bytes moved"],
        [
            [r["mode"], r["makespan"], r["migrations"], r["admin_bytes"],
             r["state_bytes"]]
            for r in (static, eager, tuned)
        ],
        notes="eager = threshold 1, no sustain, no cooldown; hysteresis "
              "= the paper's requested damping",
    )

    metrics = {}
    for r in (static, eager, tuned):
        metrics[f"makespan_us_{r['mode']}"] = r["makespan"]
        metrics[f"migrations_{r['mode']}"] = r["migrations"]
        metrics[f"state_bytes_{r['mode']}"] = r["state_bytes"]
    write_bench_artifact(
        "a2_hysteresis_ablation", metrics,
        meta={"paper": "§3.1: hysteresis keeps migration costs from "
                       "exceeding the gains"},
    )

    # The tuned balancer beats static placement.
    assert tuned["makespan"] < static["makespan"]
    # The eager balancer thrashes: an order of magnitude more
    # migrations, far more state moved, and — exactly the failure mode
    # hysteresis exists to prevent — it "incur[s] the cost of migration
    # more often than justified by the gains", ending up *slower than
    # doing nothing at all*.
    assert eager["migrations"] >= 5 * tuned["migrations"]
    assert eager["state_bytes"] > 3 * tuned["state_bytes"]
    assert eager["makespan"] > static["makespan"]
    assert tuned["makespan"] < eager["makespan"] / 2
