"""E10 — Migration cost versus pending message queue depth (paper §6).

"In addition, each message that is pending in the queue for the migrating
process must be forwarded to the destination machine.  The cost for each
of these messages is the same as for any other inter-machine message."

The series freezes a process with 0..128 queued messages, migrates it,
and shows the pending-forward count and the extra cost scaling linearly —
while the administrative message count stays pinned at nine.
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind

QUEUE_DEPTHS = [0, 4, 16, 64, 128]


def migrate_with_queue(depth: int):
    system = make_bare_system()

    def receiver(ctx):
        received = 0
        while received < depth:
            yield ctx.receive()
            received += 1
        while True:
            yield ctx.receive()

    pid = system.spawn(receiver, machine=0)
    # Freeze first, then stuff the queue: messages arriving while the
    # process is IN_MIGRATION are exactly the "pending" messages of §6.
    ticket = system.migrate(pid, 1)
    kernel = system.kernel(0)
    for i in range(depth):
        kernel.send_to_process(
            ProcessAddress(pid, 0), "pending", i, kind=MessageKind.USER,
        )
    drain(system)
    assert ticket.success
    state = system.process_state(pid)
    # Every pending message was delivered on the destination.
    assert state.accounting.messages_received == depth
    return ticket.record


def run_series():
    return [migrate_with_queue(depth) for depth in QUEUE_DEPTHS]


def test_e10_pending_queue_cost(bench_once):
    records = bench_once(run_series)

    rows = []
    for depth, record in zip(QUEUE_DEPTHS, records):
        rows.append([
            depth, record.pending_forwarded, record.admin_message_count,
            record.duration,
        ])
    print_table(
        "E10: migration cost vs pending queue depth (paper §6)",
        ["queued msgs", "forwarded in step 6", "admin msgs",
         "total duration us"],
        rows,
        notes="pending messages ride the normal inter-machine path; "
              "the 9-message administrative cost is flat",
    )

    metrics = {"admin_messages": records[0].admin_message_count}
    for depth, record in zip(QUEUE_DEPTHS, records):
        metrics[f"duration_us_depth{depth}"] = record.duration
        metrics[f"pending_forwarded_depth{depth}"] = (
            record.pending_forwarded
        )
    write_bench_artifact(
        "e10_queue_depth", metrics,
        meta={"paper": "§6: pending messages ride the normal "
                       "inter-machine path; admin cost stays 9 messages"},
    )

    for depth, record in zip(QUEUE_DEPTHS, records):
        assert record.pending_forwarded == depth
        assert record.admin_message_count == 9

    # Cost grows with queue depth, roughly linearly.
    durations = [r.duration for r in records]
    assert durations[-1] > durations[0]
    shallow_slope = (durations[1] - durations[0]) / 4
    deep_slope = (durations[-1] - durations[-2]) / 64
    assert deep_slope < shallow_slope * 5  # no superlinear blow-up
