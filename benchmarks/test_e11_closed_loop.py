"""E11b — Closed-loop latency under migration churn (ROADMAP north star).

The cluster-scale experiment (test_e11_cluster_scale) gates protocol
*counters*: how many forwards, link updates and admin bytes the churn
produced.  This experiment gates what a *user* of the cluster sees: a
closed-loop pool of simulated users (request -> reply -> think) drives
one echo server per machine while half the servers are force-migrated
mid-conversation, and the end-to-end request latencies land in the
registry's log-spaced :class:`~repro.obs.metrics.LatencyHistogram`.

Two properties are checked:

- **deterministic load**: the pool is closed-loop, so the request count
  is exactly ``clients * requests_per_client`` — no open-loop drift —
  and the per-client request-count vector is pinned;
- **deterministic latency distribution** (gated via baseline diff): the
  histogram's count/sum and its p50/p95/p99/max are exactly
  reproducible, so any change to migration cost, forwarding, or the
  delivery path shows up as a percentile shift in the baseline diff.
  Migration cost lives in the *tail* (p99 >> p50), which is the paper's
  §6 cost analysis expressed as users experience it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from conftest import drain, make_system, print_table, write_bench_artifact

from repro.workloads.closed_loop import (
    REQUEST_LATENCY_METRIC,
    ClientPool,
    ClosedLoopConfig,
)
from repro.workloads.pingpong import echo_server
from repro.workloads.results import ResultsBoard


@dataclass(frozen=True)
class ClosedLoopParams:
    """One closed-loop scenario size."""

    name: str
    machines: int
    clients_per_server: int
    requests_per_client: int
    mean_think_us: int
    server_compute_us: int  #: CPU us the server burns per request
    server_moves: int  #: echo servers force-migrated mid-run
    churn_start: int  #: first forced migration (us)
    churn_gap: int  #: spacing between forced migrations (us)
    duration: int  #: run_until horizon before draining


FULL = ClosedLoopParams(
    name="e11_closed_loop",
    machines=64,
    clients_per_server=4,
    requests_per_client=12,
    mean_think_us=20_000,
    server_compute_us=2_000,
    server_moves=24,
    churn_start=60_000,
    churn_gap=8_000,
    duration=1_200_000,
)

#: reduced scenario for the CI `scale-smoke` job: same shape, 8 machines
SMOKE = ClosedLoopParams(
    name="e11_closed_loop_smoke",
    machines=8,
    clients_per_server=3,
    requests_per_client=8,
    mean_think_us=10_000,
    server_compute_us=2_000,
    server_moves=4,
    churn_start=40_000,
    churn_gap=10_000,
    duration=900_000,
)


def run_closed_loop(p: ClosedLoopParams) -> dict:
    board = ResultsBoard()
    # Metrics stay ON: the latency histogram *is* the experiment.
    system = make_system(
        machines=p.machines,
        trace_categories=(),  # tracing off: measure the bare hot path
    )

    # One echo server per machine; requests cost CPU so queueing (and
    # therefore migration-induced stalls) show up in the latencies.
    server_pids = {}
    for m in range(p.machines):
        server_pids[m] = system.spawn(
            lambda ctx, _m=m: echo_server(
                ctx, service_name=f"echo-{_m}",
                compute_per_request=p.server_compute_us,
            ),
            machine=m, name=f"echo-{m}",
        )

    # Clients for echo-m sit one machine over, so every request crosses
    # the network and forced server moves leave genuinely stale links.
    pool = ClientPool(
        system,
        ClosedLoopConfig(
            clients=p.machines * p.clients_per_server,
            requests_per_client=p.requests_per_client,
            mean_think_us=p.mean_think_us,
        ),
        services=tuple(f"echo-{m}" for m in range(p.machines)),
        machines=tuple((m + 1) % p.machines for m in range(p.machines)),
        board=board,
    )
    pool.install()

    # Forced churn: migrate every other echo server across the cluster
    # while its clients are mid-conversation.
    for j in range(p.server_moves):
        victim = (2 * j) % p.machines
        dest = (victim + p.machines // 2) % p.machines
        system.loop.call_at(
            p.churn_start + p.churn_gap * j,
            lambda _pid=server_pids[victim], _dest=dest: system.migrate(
                _pid, _dest
            ),
        )

    started = time.perf_counter()
    system.run(until=p.duration)
    drain(system, max_events=100_000_000)
    wall = time.perf_counter() - started

    snapshot = system.metrics.snapshot()
    latency = snapshot.histogram(REQUEST_LATENCY_METRIC)
    kstats = [k.stats for k in system.kernels]
    records = system.migration_records()
    return {
        "system": system,
        "pool": pool,
        "board": board,
        "latency": latency,
        "wall_seconds": wall,
        "events_fired": system.loop.events_fired,
        "metrics": {
            "requests_total": sum(pool.request_counts),
            "clients_finished": len(board.get("closed-loop")),
            "latency_count": latency.count,
            "latency_sum_us": int(latency.sum),
            "latency_p50_us": latency.p50,
            "latency_p95_us": latency.p95,
            "latency_p99_us": latency.p99,
            "latency_max_us": latency.max,
            "replies_forwarded": int(
                snapshot.total("workload.replies_forwarded")
            ),
            "migrations_ok": sum(1 for r in records if r.success),
            "forwards": sum(s.messages_forwarded for s in kstats),
            "link_updates_applied": sum(
                s.link_updates_applied for s in kstats
            ),
            "messages_delivered": sum(s.messages_delivered for s in kstats),
            "packets_sent": system.network.stats.packets_sent,
        },
    }


def _report(p: ClosedLoopParams, result: dict) -> None:
    metrics = result["metrics"]
    events_per_sec = result["events_fired"] / max(
        result["wall_seconds"], 1e-9
    )
    print_table(
        f"E11b: closed-loop latency ({p.machines} machines, "
        f"{p.machines * p.clients_per_server} clients)",
        ["metric", "value"],
        [[k, v] for k, v in metrics.items()]
        + [
            ["events_fired (not gated)", result["events_fired"]],
            ["events/sec (not gated)", f"{events_per_sec:,.0f}"],
        ],
        notes="latency percentiles are deterministic and gated; "
              "migration cost lives in the tail (p99 vs p50)",
    )
    write_bench_artifact(
        p.name,
        metrics,
        meta={
            "machines": p.machines,
            "clients": p.machines * p.clients_per_server,
            "requests_per_client": p.requests_per_client,
            "server_moves": p.server_moves,
            "events_fired": result["events_fired"],
            "wall_seconds": round(result["wall_seconds"], 3),
            "events_per_sec": round(events_per_sec),
            "paper": "§6 cost analysis as request-latency percentiles: "
                     "migration cost concentrates in the tail",
        },
    )


def _check(p: ClosedLoopParams, result: dict) -> None:
    metrics = result["metrics"]
    pool: ClientPool = result["pool"]
    clients = p.machines * p.clients_per_server
    # Closed loop: the offered load is exactly the configured quota.
    assert pool.done
    assert pool.request_counts == [p.requests_per_client] * clients
    assert metrics["requests_total"] == clients * p.requests_per_client
    assert metrics["clients_finished"] == clients
    # Every request latency was observed exactly once.
    assert metrics["latency_count"] == metrics["requests_total"]
    # Churn really happened, and some replies chased migrated servers.
    assert metrics["migrations_ok"] >= p.server_moves
    assert metrics["forwards"] >= 1
    assert metrics["replies_forwarded"] >= 1
    # Migration cost concentrates in the tail.
    assert metrics["latency_p50_us"] <= metrics["latency_p95_us"]
    assert metrics["latency_p95_us"] <= metrics["latency_p99_us"]
    assert metrics["latency_p99_us"] <= metrics["latency_max_us"]


def test_e11_closed_loop(bench_once):
    result = bench_once(run_closed_loop, FULL)
    _report(FULL, result)
    _check(FULL, result)


def test_e11_closed_loop_smoke(bench_once):
    result = bench_once(run_closed_loop, SMOKE)
    _report(SMOKE, result)
    _check(SMOKE, result)
