"""E11 — Cluster-scale protocol throughput (ROADMAP north star).

The paper's §6 cost analysis (3 data moves + 9 control messages of
6-12 B per migration) is only interesting if the substrate stays cheap
when the system is big.  This experiment runs the full protocol stack —
migration, forwarding, link update, load balancing — on a 64-machine
mesh with ~1,000 processes and verifies two things:

- **deterministic protocol counters** (gated): the mix of migrations,
  forwards, link updates and admin bytes the scenario produces is exactly
  reproducible, so any change in simulated behaviour shows up as a
  baseline diff;
- **events/sec** (reported, not gated): the wall-clock throughput of the
  event loop, the number every hot-path PR has to move.

The scenario: one echo server per machine, each pinged by clients on
other machines; a skewed Poisson stream of compute jobs lands on the
first four machines and the threshold balancer spreads it out; half the
echo servers are forcibly migrated *while their clients are mid
conversation*, so messages chase processes through forwarding addresses
and the §5 link-update traffic patches the stale link tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from conftest import drain, make_system, print_table, write_bench_artifact

from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.workloads.compute import compute_bound
from repro.workloads.generators import ArrivalGenerator, poisson_plan
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard


@dataclass(frozen=True)
class ClusterParams:
    """One cluster scenario size."""

    name: str
    machines: int
    pingers_per_server: int
    ping_rounds: int
    compute_rate_per_ms: float  #: Poisson arrival rate of compute jobs
    compute_window: int  #: arrivals happen in [0, window) us
    compute_work: int  #: CPU us per compute job
    server_moves: int  #: echo servers force-migrated mid-run
    duration: int  #: run_until horizon before draining
    topology: str = "mesh"  #: SystemConfig topology shape


FULL = ClusterParams(
    name="e11_cluster_scale",
    machines=64,
    pingers_per_server=6,
    ping_rounds=40,
    compute_rate_per_ms=1.0,
    compute_window=600_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_200_000,
)

#: reduced topology for the CI `scale-smoke` job: same shape, 8 machines
SMOKE = ClusterParams(
    name="e11_cluster_smoke",
    machines=8,
    pingers_per_server=4,
    ping_rounds=8,
    compute_rate_per_ms=0.25,
    compute_window=400_000,
    compute_work=40_000,
    server_moves=4,
    duration=900_000,
)

#: 256 machines on a 16x16 torus (degree 4, diameter 16): multi-hop
#: routing, forwarding chains that actually span the network, and a
#: machine count where the retired all-pairs route precomputation was
#: a measurable start-up tax.  Per-server workload is lighter than FULL
#: because every message now pays ~8 hops instead of 1.
SPARSE = ClusterParams(
    name="e11_cluster_sparse",
    machines=256,
    pingers_per_server=2,
    ping_rounds=12,
    compute_rate_per_ms=0.5,
    compute_window=400_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_500_000,
    topology="torus",
)

#: 1,024 machines on a 32x32 torus — the ROADMAP scale-out step the
#: adaptive route cache unblocked (a hard 512-source LRU thrashed here:
#: forwarding makes all 1,024 machines routing sources, and every
#: evicted source cost a full Dijkstra per hop).  Workload per server
#: is minimal; the point is protocol traffic across a diameter-32
#: network.  The sharded engine runs the same machine count in
#: `test_e11_shards.py` (`e11_shards_xsparse`), where shards=1 and
#: shards=4 must agree byte-for-byte.
XSPARSE = ClusterParams(
    name="e11_cluster_xsparse",
    machines=1024,
    pingers_per_server=1,
    ping_rounds=8,
    compute_rate_per_ms=0.5,
    compute_window=400_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_500_000,
    topology="torus",
)

#: reduced sparse scenario for CI: same torus shape, 16 machines (4x4)
SPARSE_SMOKE = ClusterParams(
    name="e11_sparse_smoke",
    machines=16,
    pingers_per_server=2,
    ping_rounds=6,
    compute_rate_per_ms=0.25,
    compute_window=300_000,
    compute_work=40_000,
    server_moves=8,
    duration=900_000,
    topology="torus",
)


def run_cluster(p: ClusterParams) -> dict:
    board = ResultsBoard()
    system = make_system(
        machines=p.machines,
        topology=p.topology,
        trace_categories=(),  # tracing off: measure the bare hot path
        metrics_enabled=False,  # registry hands out no-op instruments
    )

    # One echo server per machine, one service name per machine.
    server_pids = {}
    for m in range(p.machines):
        server_pids[m] = system.spawn(
            lambda ctx, _m=m: echo_server(ctx, service_name=f"echo-{_m}"),
            machine=m, name=f"echo-{m}",
        )

    # Pingers spread around the ring of machines, staggered so the
    # switchboard lookups don't all land in one instant.
    arrivals = []
    for m in range(p.machines):
        for k in range(p.pingers_per_server):
            client_machine = (m + 1 + 7 * k) % p.machines
            arrivals.append((
                30_000 + 500 * (m * p.pingers_per_server + k),
                client_machine,
                lambda ctx, _m=m, _k=k: pinger(
                    ctx, service_name=f"echo-{_m}", rounds=p.ping_rounds,
                    payload_bytes=32, gap=1_000, board=board,
                    key="ping",
                ),
            ))
    for at, machine, program in arrivals:
        system.loop.call_at(
            at,
            lambda _p=program, _m=machine: system.spawn(_p, machine=_m,
                                                        name="pinger"),
        )

    # Skewed compute arrivals: the first four machines catch everything,
    # the balancer has to spread it (paper §1's motivating imbalance).
    hot = {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.1}
    plan = poisson_plan(
        system,
        lambda ctx: compute_bound(ctx, total=p.compute_work, board=board),
        rate_per_ms=p.compute_rate_per_ms,
        duration=p.compute_window,
        machine_weights=hot,
    )
    ArrivalGenerator(system, plan).install()

    balancer = ThresholdLoadBalancer(
        system, interval=20_000, threshold=3, sustain=2, cooldown=100_000,
    )
    balancer.install()

    # Forced churn: migrate every other echo server while its clients
    # are mid-conversation, exercising forwarding + link update.
    forced = []
    for j in range(p.server_moves):
        victim = (2 * j) % p.machines
        dest = (victim + p.machines // 2) % p.machines
        forced.append((80_000 + 15_000 * j, server_pids[victim], dest))
    for at, pid, dest in forced:
        system.loop.call_at(
            at, lambda _pid=pid, _dest=dest: system.migrate(_pid, _dest),
        )

    started = time.perf_counter()
    system.run(until=p.duration)
    balancer.stop()
    drain(system, max_events=100_000_000)
    wall = time.perf_counter() - started

    kstats = [k.stats for k in system.kernels]
    net = system.network.stats
    records = system.migration_records()
    ping_done = board.get("ping-summary")
    compute_done = board.get("compute")
    return {
        "system": system,
        "wall_seconds": wall,
        "events_fired": system.loop.events_fired,
        "metrics": {
            "processes_spawned": sum(s.processes_spawned for s in kstats),
            "compute_jobs": len(plan),
            "compute_done": len(compute_done),
            "pingers_done": len(ping_done),
            "migrations_completed": len(records),
            "migrations_ok": sum(1 for r in records if r.success),
            "balancer_migrations": balancer.stats.migrations_succeeded,
            "forwards": sum(s.messages_forwarded for s in kstats),
            "link_updates_sent": sum(s.link_updates_sent for s in kstats),
            "link_updates_applied": sum(
                s.link_updates_applied for s in kstats
            ),
            "links_retargeted": sum(s.links_retargeted for s in kstats),
            "messages_delivered": sum(s.messages_delivered for s in kstats),
            "admin_payload_bytes": net.payload_bytes_by_category["admin"],
            "datamove_payload_bytes": (
                net.payload_bytes_by_category["datamove"]
                + net.payload_bytes_by_category["dma"]
            ),
            "packets_sent": net.packets_sent,
            "wire_bytes_sent": net.bytes_sent,
        },
    }


def _report(p: ClusterParams, result: dict) -> None:
    metrics = result["metrics"]
    events_per_sec = result["events_fired"] / max(
        result["wall_seconds"], 1e-9
    )
    print_table(
        f"E11: cluster scale ({p.machines} machines, "
        f"{metrics['processes_spawned']} processes)",
        ["metric", "value"],
        [[k, v] for k, v in metrics.items()]
        + [
            ["events_fired (not gated)", result["events_fired"]],
            ["events/sec (not gated)", f"{events_per_sec:,.0f}"],
        ],
        notes="protocol counters are deterministic and gated; "
              "events/sec is wall-clock and reported only",
    )
    write_bench_artifact(
        p.name,
        metrics,
        meta={
            "machines": p.machines,
            "topology": p.topology,
            "events_fired": result["events_fired"],
            "wall_seconds": round(result["wall_seconds"], 3),
            "events_per_sec": round(events_per_sec),
            "paper": "§6: migration stays 3 data moves + 9 control "
                     "messages even at cluster scale",
        },
    )


def _check(p: ClusterParams, result: dict) -> None:
    metrics = result["metrics"]
    # Every client and every compute job finished despite the churn.
    assert metrics["pingers_done"] == p.machines * p.pingers_per_server
    assert metrics["compute_done"] == metrics["compute_jobs"]
    # Real churn happened: forced server moves plus balancer traffic.
    assert metrics["migrations_ok"] >= p.server_moves
    assert metrics["balancer_migrations"] >= 1
    # Stale links actually chased processes and were patched.
    assert metrics["forwards"] >= 1
    assert metrics["link_updates_applied"] >= 1
    assert metrics["links_retargeted"] >= 1


def test_e11_cluster_scale(bench_once):
    result = bench_once(run_cluster, FULL)
    _report(FULL, result)
    _check(FULL, result)


def test_e11_cluster_smoke(bench_once):
    result = bench_once(run_cluster, SMOKE)
    _report(SMOKE, result)
    _check(SMOKE, result)


def test_e11_cluster_sparse(bench_once):
    result = bench_once(run_cluster, SPARSE)
    _report(SPARSE, result)
    _check(SPARSE, result)


def test_e11_cluster_xsparse(bench_once):
    result = bench_once(run_cluster, XSPARSE)
    _report(XSPARSE, result)
    _check(XSPARSE, result)


def test_e11_sparse_smoke(bench_once):
    result = bench_once(run_cluster, SPARSE_SMOKE)
    _report(SPARSE_SMOKE, result)
    _check(SPARSE_SMOKE, result)
