"""E11 — Sharded parallel execution: determinism parity and speedup.

The sharded engine (``repro.sim.shard``) splits the cluster across
worker processes synchronised by conservative time windows.  Its whole
value rests on one claim: **the shard count is invisible in the
simulation's results**.  This benchmark runs the cluster-scale protocol
scenario twice — ``shards=1`` on the serial reference executor and
``shards=N`` on the fork executor — and asserts every gated counter is
byte-identical, then reports the wall-clock speedup (meta only, not
gated: wall time depends on the host).

The scenario mirrors ``test_e11_cluster_scale`` with the two engine-
mandated substitutions that keep it shard-layout independent *and*
fork-safe: the global threshold balancer becomes one
:class:`~repro.policy.load_balancer.DomainLoadBalancer` per torus row
(rows never straddle shards), and forced server moves are machine-
anchored ``schedule_migration`` calls within the victim's row (live
process generators cannot cross a fork boundary).

Wires are 1 ms here (vs 100 us in the classic scenario): the minimum
wire latency is the conservative lookahead, and a 10x bigger window
amortises each barrier over ~10x more events — the knob that makes
parallelism pay.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from conftest import print_table, write_bench_artifact

from repro.core.config import SystemConfig, near_square_factor
from repro.policy.load_balancer import DomainLoadBalancer
from repro.sim.shard import ShardedSystem
from repro.workloads.compute import compute_bound
from repro.workloads.generators import poisson_plan
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard


@dataclass(frozen=True)
class ShardBenchParams:
    """One sharded cluster scenario size."""

    name: str
    machines: int  #: torus node count
    shards: int  #: parallel worker count for the sharded run
    pingers_per_server: int
    ping_rounds: int
    compute_rate_per_ms: float
    compute_window: int
    compute_work: int
    server_moves: int
    duration: int
    latency: int = 1_000  #: wire latency == conservative lookahead
    topology: str = "torus"  #: SystemConfig topology shape
    #: two-level window grid: pairs exchange at their own cadence
    barrier_elision: bool = False
    #: slow-tier wire latency (torus verticals + column wraps); the
    #: gap between this and `latency` is what elision harvests
    backbone_latency: int | None = None


FULL = ShardBenchParams(
    name="e11_shards",
    machines=256,  # 16x16 torus, 4 rows of 16 per shard
    shards=4,
    pingers_per_server=4,
    ping_rounds=24,
    compute_rate_per_ms=1.0,
    compute_window=600_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_500_000,
)

#: the classic e11 full-cluster shape — 64 machines, every pair one
#: hop — sharded.  A mesh partitions freely (alignment 1), so the
#: contiguous 16-machine shard ranges keep the 8-wide balancer domains
#: whole; parity here proves the engine on a dense topology too.
MESH = ShardBenchParams(
    name="e11_shards_mesh",
    machines=64,
    shards=4,
    pingers_per_server=4,
    ping_rounds=24,
    compute_rate_per_ms=1.0,
    compute_window=600_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_200_000,
    topology="mesh",
)

#: CI `shard-smoke`: tiny torus, 2 shards, same parity gate
SMOKE = ShardBenchParams(
    name="e11_shards_smoke",
    machines=8,  # 2x4 torus, one row per shard
    shards=2,
    pingers_per_server=2,
    ping_rounds=6,
    compute_rate_per_ms=0.25,
    compute_window=200_000,
    compute_work=40_000,
    server_moves=4,
    duration=700_000,
)

#: the FULL scenario with barrier elision on a two-tier torus: local
#: wires 1 ms, inter-row backbone 4 ms, so each shard pair's exchange
#: cadence is 4 grid windows and only the 4 wire-connected pairs of
#: the row-band ring rendezvous at all (vs 6 all-pairs).
ELIDE = ShardBenchParams(
    name="e11_shards_elide",
    machines=256,
    shards=4,
    pingers_per_server=4,
    ping_rounds=24,
    compute_rate_per_ms=1.0,
    compute_window=600_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_500_000,
    barrier_elision=True,
    backbone_latency=4_000,
)

#: elision on the dense uniform-latency mesh: every shard pair is
#: wire-connected and the pair period degenerates to the window grid,
#: so there is nothing to elide — this arm proves the keyed-loop
#: schedule is *still* byte-identical to the classic engine when the
#: rendezvous cadence buys nothing.
MESH_ELIDE = ShardBenchParams(
    name="e11_shards_mesh_elide",
    machines=64,
    shards=4,
    pingers_per_server=4,
    ping_rounds=24,
    compute_rate_per_ms=1.0,
    compute_window=600_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_200_000,
    topology="mesh",
    barrier_elision=True,
)

#: CI `elision-smoke`: 4x4 two-tier torus, one row per shard, same
#: gates as the full elision arm at 1/16th the size
ELIDE_SMOKE = ShardBenchParams(
    name="e11_shards_elide_smoke",
    machines=16,
    shards=4,
    pingers_per_server=2,
    ping_rounds=6,
    compute_rate_per_ms=0.25,
    compute_window=200_000,
    compute_work=40_000,
    server_moves=4,
    duration=700_000,
    barrier_elision=True,
    backbone_latency=4_000,
)

#: run-ahead headline: the ELIDE scenario swept across shards
#: {1, 2, 4, 8} — the wall-clock curve of the dynamic rendezvous
#: schedule, with the static per-period cadence as the rounds baseline
RUNAHEAD = ShardBenchParams(
    name="e11_shards_runahead",
    machines=256,
    shards=8,
    pingers_per_server=4,
    ping_rounds=24,
    compute_rate_per_ms=1.0,
    compute_window=600_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_500_000,
    barrier_elision=True,
    backbone_latency=4_000,
)

#: CI `runahead-smoke`: the elision smoke shape swept across
#: shards {1, 2, 4}, same parity and rounds gates
RUNAHEAD_SMOKE = ShardBenchParams(
    name="e11_shards_runahead_smoke",
    machines=16,
    shards=4,
    pingers_per_server=2,
    ping_rounds=6,
    compute_rate_per_ms=0.25,
    compute_window=200_000,
    compute_work=40_000,
    server_moves=4,
    duration=700_000,
    barrier_elision=True,
    backbone_latency=4_000,
)

#: the ROADMAP's 1,024-machine step, sharded: 32x32 torus, 8 rows/shard
XSPARSE = ShardBenchParams(
    name="e11_shards_xsparse",
    machines=1024,
    shards=4,
    pingers_per_server=1,
    ping_rounds=8,
    compute_rate_per_ms=0.5,
    compute_window=400_000,
    compute_work=40_000,
    server_moves=32,
    duration=1_500_000,
)


def run_sharded_cluster(p: ShardBenchParams, shards: int, executor: str):
    """Build the scenario, execute it, and return merged counters."""
    system = ShardedSystem(SystemConfig(
        machines=p.machines,
        topology=p.topology,
        latency=p.latency,
        shards=shards,
        barrier_elision=p.barrier_elision,
        backbone_latency=p.backbone_latency,
        trace_categories=(),  # tracing off: measure the bare hot path
        metrics_enabled=False,  # plain integer counters only
    ))
    cols = p.machines // near_square_factor(p.machines)
    boards = [ResultsBoard() for _ in system.shards]
    balancers_by_shard: list[list[DomainLoadBalancer]] = [
        [] for _ in system.shards
    ]

    # One echo server per machine, one service name per machine.
    server_pids = {}
    for m in range(p.machines):
        server_pids[m] = system.spawn(
            lambda ctx, _m=m: echo_server(ctx, service_name=f"echo-{_m}"),
            machine=m, name=f"echo-{m}",
        )

    # Pingers spread around the machines, staggered, each posting to
    # its *client* machine's shard board (pingers only ever migrate
    # within their row, so the board stays shard-local).
    for m in range(p.machines):
        for k in range(p.pingers_per_server):
            client = (m + 1 + 7 * k) % p.machines
            board = boards[system.plan.shard_of(client)]
            system.schedule_spawn(
                30_000 + 500 * (m * p.pingers_per_server + k),
                client,
                lambda ctx, _m=m, _b=board: pinger(
                    ctx, service_name=f"echo-{_m}", rounds=p.ping_rounds,
                    payload_bytes=32, gap=1_000, board=_b, key="ping",
                ),
                name="pinger",
            )

    # Skewed compute arrivals: machines 0-3 (all in torus row 0) catch
    # everything and row 0's balancer has to spread it.
    hot = {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.1}
    hot_board = boards[system.plan.shard_of(0)]
    plan = poisson_plan(
        system,
        lambda ctx: compute_bound(
            ctx, total=p.compute_work, board=hot_board,
        ),
        rate_per_ms=p.compute_rate_per_ms,
        duration=p.compute_window,
        machine_weights=hot,
    )
    for arrival in plan:
        system.schedule_spawn(
            arrival.at, arrival.machine, arrival.program,
            name=arrival.name,
        )

    # One domain balancer per torus row; rows never straddle shards.
    for row in range(p.machines // cols):
        row_machines = list(range(row * cols, (row + 1) * cols))
        view = system.domain_view(row_machines)
        balancer = DomainLoadBalancer(
            view, domain=f"row{row}", interval=20_000, threshold=3,
            sustain=2, cooldown=100_000,
        )
        balancer.install()
        balancers_by_shard[system.plan.shard_of(row_machines[0])].append(
            balancer,
        )
        system.call_at(p.duration, row_machines[0], balancer.stop)

    # Forced churn, fork-safe: each victim server moves half a row over,
    # anchored at its home machine (skipped if a balancer got there
    # first — a per-machine decision, identical for every shard count).
    for j in range(p.server_moves):
        victim = (2 * j) % p.machines
        row_start = (victim // cols) * cols
        dest = row_start + (victim - row_start + cols // 2) % cols
        system.schedule_migration(
            80_000 + 15_000 * j, server_pids[victim], victim, dest,
        )

    def collect(shard):
        kstats = [shard.kernels[m].stats for m in shard.machines]
        net = shard.network.stats
        board = boards[shard.index]
        records = [
            record
            for m in shard.machines
            for record in shard.kernels[m].migration.completed
        ]
        return {
            "processes_spawned": sum(
                s.processes_spawned for s in kstats
            ),
            "compute_done": len(board.get("compute")),
            "pingers_done": len(board.get("ping-summary")),
            "migrations_completed": len(records),
            "migrations_ok": sum(1 for r in records if r.success),
            "balancer_migrations": sum(
                b.stats.migrations_succeeded
                for b in balancers_by_shard[shard.index]
            ),
            "forwards": sum(s.messages_forwarded for s in kstats),
            "link_updates_sent": sum(
                s.link_updates_sent for s in kstats
            ),
            "link_updates_applied": sum(
                s.link_updates_applied for s in kstats
            ),
            "links_retargeted": sum(s.links_retargeted for s in kstats),
            "messages_delivered": sum(
                s.messages_delivered for s in kstats
            ),
            "admin_payload_bytes": net.payload_bytes_by_category["admin"],
            "datamove_payload_bytes": (
                net.payload_bytes_by_category["datamove"]
                + net.payload_bytes_by_category["dma"]
            ),
            "packets_sent": net.packets_sent,
            "wire_bytes_sent": net.bytes_sent,
            "events_fired": shard.loop.events_fired,
            "sync_stats": shard.network.sync.as_dict(),
        }

    started = time.perf_counter()
    per_shard = system.execute(p.duration, collect, executor=executor)
    wall = time.perf_counter() - started

    merged = {
        key: sum(part[key] for part in per_shard)
        for key in per_shard[0]
        if key != "sync_stats"
    }
    merged["compute_jobs"] = len(plan)
    events = merged.pop("events_fired")
    sync = {
        key: sum(part["sync_stats"][key] for part in per_shard)
        for key in per_shard[0]["sync_stats"]
    }
    return merged, sync, events, wall


def _parity_and_report(p: ShardBenchParams) -> None:
    reference, _, ref_events, ref_wall = run_sharded_cluster(
        p, 1, "serial",
    )
    sharded, _, sh_events, sh_wall = run_sharded_cluster(
        p, p.shards, "fork",
    )

    # THE gate: the shard count must be invisible in every counter.
    assert sharded == reference, (
        "sharded run diverged from the serial reference: "
        + str({
            key: (reference[key], sharded[key])
            for key in reference
            if reference[key] != sharded.get(key)
        })
    )
    assert sh_events == ref_events

    # Wall clock is meta only: speedup needs actual cores.  On a
    # single-core host the workers time-slice and the ratio reads as
    # pure barrier overhead (~0.9x); on >= `shards` cores the same
    # scenario measures real parallelism.
    speedup = ref_wall / max(sh_wall, 1e-9)
    events_per_sec = sh_events / max(sh_wall, 1e-9)
    print_table(
        f"E11: sharded execution parity ({p.machines} machines, "
        f"{p.shards} shards)",
        ["metric", "value"],
        [[key, value] for key, value in sorted(reference.items())]
        + [
            ["events_fired (not gated)", ref_events],
            ["serial wall s (not gated)", f"{ref_wall:.2f}"],
            [f"fork x{p.shards} wall s (not gated)", f"{sh_wall:.2f}"],
            ["speedup (not gated)", f"{speedup:.2f}x"],
            ["events/sec sharded (not gated)", f"{events_per_sec:,.0f}"],
        ],
        notes="all counters byte-identical between shards=1 and "
              f"shards={p.shards}; wall clock reported only",
    )
    write_bench_artifact(
        p.name,
        reference,
        meta={
            "machines": p.machines,
            "topology": p.topology,
            "shards": p.shards,
            "lookahead_us": p.latency,
            "events_fired": ref_events,
            "serial_wall_seconds": round(ref_wall, 3),
            "sharded_wall_seconds": round(sh_wall, 3),
            "speedup": round(speedup, 2),
            "events_per_sec": round(events_per_sec),
            "cpu_count": os.cpu_count(),
            "paper": "per-processor kernels make the machine the unit "
                     "of distribution; conservative windows keep the "
                     "simulation bit-exact across workers",
        },
    )
    # Sanity floor, same spirit as the classic e11 checks.
    assert reference["pingers_done"] == p.machines * p.pingers_per_server
    assert reference["compute_done"] == reference["compute_jobs"]
    assert reference["migrations_ok"] >= 1
    assert reference["balancer_migrations"] >= 1
    assert reference["forwards"] >= 1
    assert reference["link_updates_applied"] >= 1


def _elide_and_report(p: ShardBenchParams) -> None:
    """Elision gates: parity across shard counts AND engines, plus the
    sync-overhead reductions the rendezvous schedule exists for."""
    import dataclasses

    classic = dataclasses.replace(p, barrier_elision=False)
    reference, _, ref_events, ref_wall = run_sharded_cluster(
        classic, 1, "serial",
    )
    classic_sharded, classic_sync, cl_events, cl_wall = (
        run_sharded_cluster(classic, p.shards, "fork")
    )

    shard_counts = sorted({1, 2, p.shards})
    arms = {}
    elide_walls = {}
    for n in shard_counts:
        executor = "serial" if n == 1 else "fork"
        merged, sync, events, wall = run_sharded_cluster(p, n, executor)
        arms[n] = (merged, sync, events)
        elide_walls[n] = wall

    def diffed(other):
        return {
            key: (reference[key], other[key])
            for key in reference
            if reference[key] != other.get(key)
        }

    # Gate 1 — the classic determinism bar, unchanged.
    assert classic_sharded == reference, (
        "classic sharded diverged: " + str(diffed(classic_sharded))
    )
    assert cl_events == ref_events
    # Gate 2 — elision is unobservable: every elided arm matches the
    # classic reference bit for bit, counters and event counts alike.
    for n, (merged, _, events) in arms.items():
        assert merged == reference, (
            f"elided shards={n} diverged from the classic reference: "
            + str(diffed(merged))
        )
        assert events == ref_events, (n, events, ref_events)

    elided_sync = arms[p.shards][1]
    if p.backbone_latency is not None:
        # Gate 3 — the point of the exercise: on a two-tier topology
        # the rendezvous schedule must cut barrier rounds >= 3x and
        # ship fewer bytes, while actually skipping grid windows.
        round_ratio = classic_sync["rounds"] / max(
            elided_sync["rounds"], 1,
        )
        assert round_ratio >= 3.0, (
            f"barrier rounds only improved {round_ratio:.2f}x "
            f"({classic_sync['rounds']} -> {elided_sync['rounds']})"
        )
        assert elided_sync["bytes_sent"] < classic_sync["bytes_sent"]
        assert elided_sync["windows_elided"] > 0
    else:
        round_ratio = classic_sync["rounds"] / max(
            elided_sync["rounds"], 1,
        )

    print_table(
        f"E11: barrier elision ({p.machines} machines, "
        f"{p.shards} shards, backbone "
        f"{p.backbone_latency or p.latency}us)",
        ["metric", "classic", "elided"],
        [
            [key, classic_sync[key], elided_sync[key]]
            for key in classic_sync
        ]
        + [
            ["barrier round ratio", "", f"{round_ratio:.2f}x"],
            ["events_fired (gated)", ref_events, arms[p.shards][2]],
            [f"fork x{p.shards} wall s (not gated)",
             f"{cl_wall:.2f}", f"{elide_walls[p.shards]:.2f}"],
        ],
        notes=f"all counters byte-identical across shards "
              f"{shard_counts} elided AND vs the classic engine; "
              "sync overhead gated exactly",
    )
    write_bench_artifact(
        p.name,
        {
            **reference,
            **{f"classic_sync_{k}": v for k, v in classic_sync.items()
               if k != "windows_elided"},
            **{f"elided_sync_{k}": v for k, v in elided_sync.items()},
        },
        meta={
            "machines": p.machines,
            "topology": p.topology,
            "shards": p.shards,
            "shard_counts_gated": shard_counts,
            "lookahead_us": p.latency,
            "backbone_latency_us": p.backbone_latency,
            "events_fired": ref_events,
            "barrier_round_ratio": round(round_ratio, 2),
            "serial_wall_seconds": round(ref_wall, 3),
            "classic_fork_wall_seconds": round(cl_wall, 3),
            "elided_fork_wall_seconds": round(
                elide_walls[p.shards], 3,
            ),
            "cpu_count": os.cpu_count(),
            "paper": "records carry their grid window, so shard pairs "
                     "can exchange at their wire latency's cadence "
                     "instead of every window — fewer, fatter barriers "
                     "with bit-identical results",
        },
    )
    assert reference["pingers_done"] == p.machines * p.pingers_per_server
    assert reference["compute_done"] == reference["compute_jobs"]


def _runahead_and_report(
    p: ShardBenchParams,
    shard_counts: tuple[int, ...],
    speedup_floor: float | None,
    ratio_floor: float,
) -> None:
    """Run-ahead gates: every shard count lands on the classic
    reference bit for bit, the dynamic schedule beats the classic
    engine's barrier rounds by at least *ratio_floor* while shipping
    fewer bytes, and — when the host has the cores — the wall-clock
    curve actually bends down."""
    import dataclasses

    from repro.sim.barrier import rendezvous_schedule

    classic = dataclasses.replace(p, barrier_elision=False)
    reference, _, ref_events, _ = run_sharded_cluster(classic, 1, "serial")
    # The classic engine at the curve's shared point (4 shards is in
    # every arm's sweep): the denominator of the round-reduction gate.
    _, classic_sync, cl_events, _ = run_sharded_cluster(
        classic, 4, "fork",
    )
    assert cl_events == ref_events

    walls: dict[int, float] = {}
    syncs: dict[int, dict] = {}
    for n in shard_counts:
        executor = "serial" if n == 1 else "fork"
        merged, sync, events, wall = run_sharded_cluster(p, n, executor)
        assert merged == reference, (
            f"run-ahead shards={n} diverged from the classic "
            f"reference: " + str({
                key: (reference[key], merged[key])
                for key in reference
                if reference[key] != merged.get(key)
            })
        )
        assert events == ref_events, (n, events, ref_events)
        walls[n] = wall
        syncs[n] = sync

    top = max(shard_counts)
    # The static cadence (the previous elision engine's schedule) is
    # the horizon-phase upper bound the dynamic scheduler only ever
    # skips forward from; reported for reference — the measured rounds
    # additionally include the all-pairs drain phase.
    plan = ShardedSystem(SystemConfig(
        machines=p.machines, topology=p.topology, latency=p.latency,
        shards=top, barrier_elision=True,
        backbone_latency=p.backbone_latency,
        trace_categories=(), metrics_enabled=False,
    )).plan
    static_rounds = 2 * len(
        rendezvous_schedule(plan.pair_periods, p.duration)
    )
    round_ratio = classic_sync["rounds"] / max(syncs[4]["rounds"], 1)
    assert round_ratio >= ratio_floor, (
        f"barrier rounds only improved {round_ratio:.2f}x at shards=4 "
        f"({classic_sync['rounds']} -> {syncs[4]['rounds']}), floor "
        f"{ratio_floor}x"
    )
    assert syncs[4]["bytes_sent"] < classic_sync["bytes_sent"]
    assert syncs[top]["windows_elided"] > 0

    cores = os.cpu_count() or 1
    speedups = {
        n: walls[1] / max(walls[n], 1e-9)
        for n in shard_counts
        if n > 1
    }
    if speedup_floor is not None and cores >= 4 and 4 in speedups:
        assert speedups[4] >= speedup_floor, (
            f"shards=4 speedup {speedups[4]:.2f}x on a {cores}-core "
            f"host, floor {speedup_floor}x"
        )

    print_table(
        f"E11: run-ahead execution ({p.machines} machines, shards "
        f"{list(shard_counts)}, backbone {p.backbone_latency}us)",
        ["metric", "value"],
        [
            ["classic sync rounds x4 (gated)", classic_sync["rounds"]],
        ]
        + [
            [f"sync rounds x{n} (gated)", syncs[n]["rounds"]]
            for n in shard_counts if n > 1
        ]
        + [
            ["barrier round ratio x4", f"{round_ratio:.2f}x"],
            [f"static-cadence rounds x{top} (gated)", static_rounds],
            ["events_fired (gated)", ref_events],
        ]
        + [
            [f"wall s x{n} (not gated)", f"{walls[n]:.2f}"]
            for n in shard_counts
        ]
        + [
            [f"speedup x{n} (not gated)", f"{s:.2f}x"]
            for n, s in speedups.items()
        ],
        notes=f"all counters byte-identical across shards "
              f"{list(shard_counts)} and vs the classic engine; "
              f"wall clock honest for cpu_count={cores}",
    )
    write_bench_artifact(
        p.name,
        {
            **reference,
            **{f"classic_sync_{k}": v for k, v in classic_sync.items()
               if k != "windows_elided"},
            **{
                f"runahead_sync_rounds_x{n}": syncs[n]["rounds"]
                for n in shard_counts if n > 1
            },
            **{
                f"runahead_sync_bytes_x{n}": syncs[n]["bytes_sent"]
                for n in shard_counts if n > 1
            },
            f"runahead_windows_elided_x{top}":
                syncs[top]["windows_elided"],
            f"static_cadence_rounds_x{top}": static_rounds,
        },
        meta={
            "machines": p.machines,
            "topology": p.topology,
            "shard_counts_gated": list(shard_counts),
            "lookahead_us": p.latency,
            "backbone_latency_us": p.backbone_latency,
            "events_fired": ref_events,
            "barrier_round_ratio_x4": round(round_ratio, 2),
            "cpu_count": cores,
            **{
                f"wall_seconds_x{n}": round(walls[n], 3)
                for n in shard_counts
            },
            **{
                f"speedup_x{n}": round(s, 2)
                for n, s in speedups.items()
            },
            "paper": "between rendezvous each shard owns a provably "
                     "safe local time range and runs it without "
                     "synchronising; meetings happen only when the "
                     "pair can actually exchange traffic",
        },
    )
    assert reference["pingers_done"] == p.machines * p.pingers_per_server
    assert reference["compute_done"] == reference["compute_jobs"]


def test_e11_shards(bench_once):
    bench_once(_parity_and_report, FULL)


def test_e11_shards_mesh(bench_once):
    bench_once(_parity_and_report, MESH)


def test_e11_shards_smoke(bench_once):
    bench_once(_parity_and_report, SMOKE)


def test_e11_shards_xsparse(bench_once):
    bench_once(_parity_and_report, XSPARSE)


def test_e11_shards_elide(bench_once):
    bench_once(_elide_and_report, ELIDE)


def test_e11_shards_mesh_elide(bench_once):
    bench_once(_elide_and_report, MESH_ELIDE)


def test_e11_shards_elide_smoke(bench_once):
    bench_once(_elide_and_report, ELIDE_SMOKE)


def test_e11_shards_runahead(bench_once):
    # 4.21x was the static elision engine's round reduction on this
    # scenario; the dynamic schedule must land beyond it.
    bench_once(_runahead_and_report, RUNAHEAD, (1, 2, 4, 8), 1.5, 4.21)


def test_e11_shards_runahead_smoke(bench_once):
    bench_once(_runahead_and_report, RUNAHEAD_SMOKE, (1, 2, 4), None, 3.0)
