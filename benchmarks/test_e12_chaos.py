"""E12 — Chaos campaign: survivor invariants under scripted failure.

The paper's migration mechanism claims to be transparent to its
clients: messages reach a process wherever it is (forwarding
addresses, §4), kernels recover published state after fail-stop
crashes (§1/§4), and reliable delivery rides out network faults (§2).
This experiment stresses all three at once — scripted crashes, a
healing partition, a lossy window, machine evacuation and forced
migration storms, each with a live closed-loop workload — and gates
the campaign's survivor invariants instead of merely logging them.

Two gates:

- **invariants** — every scenario ends with zero violations
  (exactly-once replies, collapsed forwarding chains, no stranded
  addresses, clean recovery bookkeeping, conservation at quiescence);
- **determinism** — the whole campaign runs *twice* and the gated
  counter sets (including the fault-ledger digests) must be
  byte-identical; the artifact is then diffed against the committed
  baseline by ``scripts/check_bench_regression.py``.

``test_e12_chaos_smoke`` is the CI tier (`chaos-smoke` job);
``test_e12_chaos`` is the full campaign the weekly workflow runs.
"""

from __future__ import annotations

from conftest import print_table, write_bench_artifact

from repro.chaos import SCENARIOS, run_campaign

#: per-scenario system sizes, pinned as run identity in the artifact
MACHINES = {
    "crash": 8, "partition": 8, "evacuate": 8, "fileserver_crash": 8,
    "storm_parity": 8, "crash_parity": 8,
}
MACHINES_FULL = {
    "crash": 12, "partition": 8, "evacuate": 8, "fileserver_crash": 8,
    "storm_parity": 16, "crash_parity": 16,
}

#: per-scenario RNG seeds (see ``repro.chaos.campaign``)
SEEDS = {
    "crash": 1983, "partition": 1984, "evacuate": 1985,
    "storm_parity": 1986, "fileserver_crash": 1987, "crash_parity": 1988,
}


def _campaign_and_report(scale: str, name: str) -> None:
    first = run_campaign(scale)
    assert first.ok, (
        "survivor invariant violations:\n" + "\n".join(first.problems)
    )
    second = run_campaign(scale)
    assert second.ok, (
        "survivor invariant violations (second run):\n"
        + "\n".join(second.problems)
    )

    # THE determinism gate: same seeds, same scenarios — the two runs'
    # gated counters (fault-ledger digests included) must be
    # byte-identical.
    assert second.counters == first.counters, (
        "campaign is not deterministic: "
        + str({
            key: (first.counters.get(key), second.counters.get(key))
            for key in set(first.counters) | set(second.counters)
            if first.counters.get(key) != second.counters.get(key)
        })
    )

    print_table(
        f"E12: chaos campaign ({scale})",
        ["gated counter", "value"],
        [[key, value] for key, value in sorted(first.counters.items())],
        notes="all survivor invariants hold; two consecutive runs "
              "byte-identical",
    )
    write_bench_artifact(
        name,
        first.counters,
        meta={
            "scale": scale,
            "scenarios": list(SCENARIOS),
            "machines": MACHINES_FULL if scale == "full" else MACHINES,
            "seed": SEEDS,
            "paper": "migration transparency under fire: forwarding, "
                     "recovery and reliable delivery gated together",
        },
    )

    # Sanity floors: each scenario actually exercised its fault.
    counters = first.counters
    assert counters["crash.recovered"] >= 1
    assert counters["crash.replies_forwarded"] >= 1
    assert counters["partition.faults.partition"] == 1
    assert counters["partition.casualties"] == 0
    assert counters["evacuate.draining_refusals"] >= 1
    assert counters["evacuate.casualties"] == 0
    assert counters["fileserver_crash.file_errors"] == 0
    assert counters["fileserver_crash.recovered"] >= 1
    assert counters["storm_parity.faults.storm-move"] >= 1
    assert counters["storm_parity.messages_forwarded"] >= 1
    assert counters["crash_parity.recovered"] >= 1
    assert counters["crash_parity.pingers_done"] >= 2
    for scenario in SCENARIOS:
        assert counters.get(f"{scenario}.reply_mismatches", 0) == 0


def test_e12_chaos(bench_once):
    bench_once(_campaign_and_report, "full", "e12_chaos")


def test_e12_chaos_smoke(bench_once):
    bench_once(_campaign_and_report, "smoke", "e12_chaos_smoke")
