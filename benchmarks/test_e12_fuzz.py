"""E12b — Chaos fuzzing: seeded random schedules, gated per draw.

The scripted campaign (E12) gates hand-picked failure scenarios; the
fuzzer samples the scenario space — random crash/partition/flaky/storm/
evacuation schedules under live pinger traffic, every sharded draw run
three ways (classic engine, ``shards=1``, ``shards=2``) with merged
counters and fault ledgers compared byte-for-byte.

Two gates:

- **invariants** — every drawn schedule runs clean: survivor
  invariants, exactly-once transcripts, engine parity, quiescence;
- **determinism** — the whole sweep runs *twice* and the per-schedule
  ledger digests must be byte-identical; the digest vector is then
  diffed against the committed baseline, so a behavior change in any
  fuzzed subsystem (recovery, forwarding, transport, barrier engine)
  shows up as a digest diff even when every invariant still holds.

``test_e12_fuzz_smoke`` is the CI tier (`fuzz-smoke` job);
``test_e12_fuzz`` is the bigger sweep the weekly workflow runs.
"""

from __future__ import annotations

from conftest import print_table, write_bench_artifact

from repro.chaos import generate_schedule, run_fuzz

#: the pinned sweep identities (root seed, number of schedules)
SMOKE = {"seed": 1983, "runs": 12}
FULL = {"seed": 1983, "runs": 60}


def _fuzz_and_report(scale: str, name: str) -> None:
    params = FULL if scale == "full" else SMOKE
    first = run_fuzz(**params, shrink_violations=False)
    assert first.ok, (
        "fuzz violations:\n" + "\n".join(
            f"schedule {o.schedule.index}: {o.problems}"
            for o in first.violations
        )
    )
    second = run_fuzz(**params, shrink_violations=False)
    assert second.ok

    # THE determinism gate: the same sweep twice — every schedule's
    # fault-ledger digest byte-identical.
    assert first.digests == second.digests, "fuzz sweep is not deterministic"

    sharded = sum(
        1 for i in range(params["runs"])
        if generate_schedule(params["seed"], i).sharded
    )
    metrics: dict[str, int] = {
        "schedules": params["runs"],
        "violations": len(first.violations),
        "sharded_draws": sharded,
        "classic_draws": params["runs"] - sharded,
    }
    for index, digest in enumerate(first.digests):
        metrics[f"digest.{index:03d}"] = digest

    print_table(
        f"E12b: chaos fuzzing ({scale})",
        ["metric", "value"],
        [[key, value] for key, value in sorted(metrics.items())
         if not key.startswith("digest.")],
        notes="every schedule held the survivor invariants; sharded "
              "draws engine-parity checked; two sweeps byte-identical",
    )
    write_bench_artifact(
        name,
        metrics,
        meta={
            "scale": scale,
            "seed": params["seed"],
            "machines": "4-8 (drawn per schedule)",
            "paper": "random failure schedules against the migration "
                     "mechanism: forwarding, recovery and parity gated "
                     "on every draw",
        },
    )


def test_e12_fuzz(bench_once):
    bench_once(_fuzz_and_report, "full", "e12_fuzz")


def test_e12_fuzz_smoke(bench_once):
    bench_once(_fuzz_and_report, "smoke", "e12_fuzz_smoke")
