"""E13 — SLO-driven migration vs queue-depth under an open-loop burst.

The paper leaves the migration *policy* open: §3.1 suggests the process
manager reuse the load information kernels already report, which is what
the e9/e10 queue-depth balancer does.  This experiment measures where
that signal fails.  Two hot echo services share machine 3; an open-loop
arrival burst pushes their combined demand past one machine's capacity
while every client lives elsewhere — so the backlog piles up in the
services' *mailboxes* and machine 3's run queue never holds more than
the two servers.  Run-queue spread stays below the queue-depth
threshold for the whole burst: the queue-depth balancer never fires
and the tail rots.  The latency-aware balancer watches the windowed
p99 of the same domain's request-latency histogram instead, fires when
the SLO is breached for ``sustain`` consecutive windows, and spreads
the pair — latency says *when* to act, load says *where*.

Three gates:

- **headline** — the latency-aware arm's burst-window p99 lands below
  the queue-depth arm's, with more in-SLO replies, while the
  queue-depth arm records *zero* migrations (the blindness itself is
  gated, not assumed);
- **determinism** — both arms run twice and every gated number must be
  identical; the artifact is then diffed against the committed baseline
  by ``scripts/check_bench_regression.py``;
- **conservation** — both arms answer every request they sent (the
  open-loop pool's sent/in-SLO/late/unanswered ledger reconciles).

``test_e13_slo_smoke`` is the CI tier (`slo-smoke` job);
``test_e13_slo`` is the full burst the weekly workflow runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import make_system, print_table, write_bench_artifact

from repro.policy.load_balancer import DomainLoadBalancer, SloPolicy
from repro.workloads.closed_loop import (
    REQUEST_LATENCY_METRIC,
    ClientPool,
    LoadShape,
    OpenLoopConfig,
)
from repro.workloads.pingpong import echo_server


@dataclass(frozen=True)
class SloParams:
    """One head-to-head scenario size."""

    name: str
    machines: int
    clients: int
    mean_interarrival_us: int
    duration: int  #: open-loop arrival window
    burst_start: int  #: burst onset, relative to the arrival window
    burst_end: int
    burst_factor: float
    compute_us: int  #: CPU us each hot service burns per request
    slo_us: int  #: p99 objective; also the per-request deadline
    interval: int  #: balancer sampling interval
    threshold: int  #: queue-depth spread threshold (the e11 setting)
    sustain: int
    cooldown: int
    min_window_count: int
    stop_at: int  #: balancer retires here so the drain can finish
    drain_grace_us: int


FULL = SloParams(
    name="e13_slo",
    machines=4,
    clients=24,
    mean_interarrival_us=20_000,
    duration=400_000,
    burst_start=120_000,
    burst_end=280_000,
    burst_factor=3.0,
    compute_us=500,
    slo_us=10_000,
    interval=25_000,
    threshold=3,
    sustain=2,
    cooldown=100_000,
    min_window_count=5,
    stop_at=450_000,
    drain_grace_us=150_000,
)

#: reduced burst for the CI `slo-smoke` job: same shape, shorter window
SMOKE = SloParams(
    name="e13_slo_smoke",
    machines=4,
    clients=24,
    mean_interarrival_us=20_000,
    duration=250_000,
    burst_start=80_000,
    burst_end=200_000,
    burst_factor=3.0,
    compute_us=500,
    slo_us=10_000,
    interval=25_000,
    threshold=3,
    sustain=2,
    cooldown=100_000,
    min_window_count=5,
    stop_at=280_000,
    drain_grace_us=120_000,
)


def run_arm(p: SloParams, latency_aware: bool) -> dict:
    """One policy arm of the head-to-head; returns its gated numbers."""
    system = make_system(machines=p.machines, trace_categories=())
    for name in ("svc-0", "svc-1"):
        system.spawn(
            lambda ctx, _n=name: echo_server(
                ctx, service_name=_n, compute_per_request=p.compute_us
            ),
            machine=3, name=name,
        )
    config = OpenLoopConfig(
        clients=p.clients,
        mean_interarrival_us=p.mean_interarrival_us,
        duration=p.duration,
        deadline_us=p.slo_us,
        drain_grace_us=p.drain_grace_us,
        shape=LoadShape(
            kind="burst", burst_start=p.burst_start,
            burst_end=p.burst_end, burst_factor=p.burst_factor,
            hot_services=2, hot_share=1.0,
        ),
    )
    pool = ClientPool(
        system,
        config,
        services=("svc-0", "svc-1"),
        domains={"svc-0": "all", "svc-1": "all"},
        # Clients stay off machine 3: the overload must queue in the
        # servers' mailboxes, invisible to run-queue spread.
        machines=tuple(range(p.machines - 1)),
        key="slo",
        spotlight=(
            "burst",
            config.start_at + p.burst_start,
            config.start_at + p.burst_end,
        ),
    )
    pool.install()
    slo = None
    if latency_aware:
        slo = SloPolicy(
            p99_slo_us=p.slo_us, sustain=p.sustain, cooldown=p.cooldown,
            min_window_count=p.min_window_count,
        )
    balancer = DomainLoadBalancer(
        system.domain_view(list(range(p.machines))),
        domain="all",
        interval=p.interval,
        threshold=p.threshold,
        sustain=p.sustain,
        cooldown=p.cooldown,
        victim_strategy="hungriest",
        slo=slo,
    )
    balancer.install()
    system.loop.call_at(p.stop_at, balancer.stop)
    fired = system.run(max_events=40_000_000)
    assert fired < 40_000_000, "simulation did not quiesce"

    snapshot = system.metrics.snapshot()
    overall = snapshot.histogram(REQUEST_LATENCY_METRIC)
    burst = snapshot.histogram(REQUEST_LATENCY_METRIC, window="burst")
    move_times = balancer.stats.move_times
    prefix = "latency_aware" if latency_aware else "queue_depth"
    return {
        f"{prefix}_requests_sent": sum(pool.request_counts),
        f"{prefix}_replies": overall.count,
        f"{prefix}_in_slo": pool.in_slo,
        f"{prefix}_late": pool.late,
        f"{prefix}_unanswered": pool.unanswered,
        f"{prefix}_mismatches": pool.mismatches,
        f"{prefix}_p50_us": overall.p50,
        f"{prefix}_p99_us": overall.p99,
        f"{prefix}_burst_count": burst.count if burst else 0,
        f"{prefix}_burst_p50_us": burst.p50 if burst else 0,
        f"{prefix}_burst_p99_us": burst.p99 if burst else 0,
        f"{prefix}_migrations": balancer.stats.migrations_started,
        f"{prefix}_first_move_at_us": (
            move_times[0] if move_times else -1
        ),
        f"{prefix}_slo_breach_samples": balancer.stats.slo_breach_samples,
    }


def run_head_to_head(p: SloParams) -> dict:
    """Both arms, each run twice — the determinism gate lives here."""
    metrics: dict = {}
    for latency_aware in (False, True):
        first = run_arm(p, latency_aware)
        second = run_arm(p, latency_aware)
        assert second == first, (
            "arm is not deterministic: "
            + str({
                key: (first[key], second[key])
                for key in first
                if first[key] != second[key]
            })
        )
        metrics.update(first)
    return metrics


def _report(p: SloParams, metrics: dict) -> None:
    rows = []
    for field in (
        "requests_sent", "in_slo", "late", "p50_us", "p99_us",
        "burst_p99_us", "migrations", "first_move_at_us",
    ):
        rows.append([
            field,
            metrics[f"queue_depth_{field}"],
            metrics[f"latency_aware_{field}"],
        ])
    print_table(
        f"E13: queue-depth vs latency-aware under a x{p.burst_factor:g} "
        f"burst ({p.name})",
        ["metric", "queue-depth", "latency-aware"],
        rows,
        notes="mailbox backlog is invisible to run-queue spread: the "
              "queue-depth arm never migrates; the SLO arm spreads the "
              "hot pair and wins the burst-window p99",
    )
    write_bench_artifact(
        p.name,
        metrics,
        meta={
            "machines": p.machines,
            "clients": p.clients,
            "mean_interarrival_us": p.mean_interarrival_us,
            "duration_us": p.duration,
            "burst": [p.burst_start, p.burst_end, p.burst_factor],
            "p99_slo_us": p.slo_us,
            "balancer": {
                "interval": p.interval,
                "threshold": p.threshold,
                "sustain": p.sustain,
                "cooldown": p.cooldown,
            },
            "paper": "§3.1 policy question made concrete: queue depth "
                     "misses mailbox overload; windowed p99 does not",
        },
    )


def _check(p: SloParams, metrics: dict) -> None:
    # Same arrival schedule in both arms: open-loop load is identical.
    sent = metrics["queue_depth_requests_sent"]
    assert metrics["latency_aware_requests_sent"] == sent
    for prefix in ("queue_depth", "latency_aware"):
        # Conservation: every request was answered and judged once.
        assert metrics[f"{prefix}_replies"] == sent
        assert metrics[f"{prefix}_unanswered"] == 0
        assert metrics[f"{prefix}_mismatches"] == 0
        assert (
            metrics[f"{prefix}_in_slo"] + metrics[f"{prefix}_late"] == sent
        )
    # The blindness is real: spread never crossed the e11 threshold.
    assert metrics["queue_depth_migrations"] == 0
    assert metrics["queue_depth_first_move_at_us"] == -1
    # ...and it cost the users: the tail sat far beyond the SLO.
    assert metrics["queue_depth_burst_p99_us"] > 2 * p.slo_us
    # The SLO arm saw the breach, moved, and won the burst window.
    assert metrics["latency_aware_slo_breach_samples"] >= p.sustain
    assert metrics["latency_aware_migrations"] >= 1
    assert (
        metrics["latency_aware_burst_p99_us"]
        < metrics["queue_depth_burst_p99_us"]
    )
    assert metrics["latency_aware_in_slo"] > metrics["queue_depth_in_slo"]


def test_e13_slo(bench_once):
    metrics = bench_once(run_head_to_head, FULL)
    _report(FULL, metrics)
    _check(FULL, metrics)


def test_e13_slo_smoke(bench_once):
    metrics = bench_once(run_head_to_head, SMOKE)
    _report(SMOKE, metrics)
    _check(SMOKE, metrics)
