"""E1 — Migration cost breakdown (paper §6).

Paper claims reproduced here:

- administrative cost: **9 control messages**, each in the **6-12 byte**
  range;
- state transfer: exactly **three data moves** — resident state
  (~250 bytes), swappable state (~600 bytes, link-table dependent), and
  the program;
- "For non-trivial processes, the size of the program and data overshadow
  the size of the system information."
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.memory import MemoryImage

PROGRAM_SIZES = [1 << 10, 8 << 10, 64 << 10, 256 << 10]


def typical_links(n: int = 10) -> dict[str, ProcessAddress]:
    """Extra bootstrap links so the link table has the paper's 'typical'
    size (10 entries -> swappable state = 600 bytes)."""
    return {
        f"svc{i}": ProcessAddress(ProcessId(3, 100 + i), 3) for i in range(n)
    }


def migrate_once(program_bytes: int):
    system = make_bare_system(memory_capacity=1 << 30)
    code = program_bytes // 2
    data = program_bytes - code

    def parked(ctx):
        while True:
            yield ctx.receive()

    pid = system.kernel(0).spawn(
        parked, name="subject",
        memory=MemoryImage.sized(code=code, data=data, stack=0),
        extra_links=typical_links(),
    )
    ticket = system.migrate(pid, 1)
    drain(system)
    assert ticket.success
    return ticket.record


def run_sweep():
    return [migrate_once(size) for size in PROGRAM_SIZES]


def test_e1_migration_cost_breakdown(bench_once):
    records = bench_once(run_sweep)

    rows = []
    for size, record in zip(PROGRAM_SIZES, records):
        rows.append([
            f"{size >> 10}KB",
            record.admin_message_count,
            record.admin_bytes,
            record.segment_bytes["resident"],
            record.segment_bytes["swappable"],
            record.segment_bytes["program"],
            record.datamove_chunks,
            record.downtime,
        ])
    print_table(
        "E1: migration cost vs process size (paper §6)",
        ["program", "admin msgs", "admin B", "resident B",
         "swappable B", "program B", "chunks", "downtime us"],
        rows,
        notes="paper: 9 admin msgs of 6-12B; resident ~250B; "
              "swappable ~600B; program dominates",
    )

    metrics = {
        "admin_messages": records[0].admin_message_count,
        "admin_bytes": records[0].admin_bytes,
        "admin_message_min_bytes": min(
            size for _, size in records[0].admin_messages
        ),
        "admin_message_max_bytes": max(
            size for _, size in records[0].admin_messages
        ),
        "resident_bytes": records[0].segment_bytes["resident"],
        "swappable_bytes": records[0].segment_bytes["swappable"],
    }
    for size, record in zip(PROGRAM_SIZES, records):
        metrics[f"downtime_us_{size >> 10}kb"] = record.downtime
        metrics[f"chunks_{size >> 10}kb"] = record.datamove_chunks
    write_bench_artifact(
        "e1_migration_cost", metrics,
        meta={"paper": "9 admin msgs of 6-12B; resident ~250B; "
                       "swappable ~600B"},
    )

    for record in records:
        # "The current DEMOS/MP implementation uses 9 such messages,
        # each message being in the 6-12 byte range."
        assert record.admin_message_count == 9
        assert all(6 <= size <= 12 for _, size in record.admin_messages)
        # Three data moves with the paper's state sizes.
        assert record.segment_bytes["resident"] == 250
        assert record.segment_bytes["swappable"] == 600
        assert set(record.segment_bytes) == {
            "resident", "swappable", "program",
        }

    # Program bytes overshadow system information for non-trivial sizes.
    big = records[-1]
    assert big.segment_bytes["program"] > 100 * (
        big.segment_bytes["resident"] + big.segment_bytes["swappable"]
    )
    # Cost grows with process size (downtime monotone, within noise).
    assert records[-1].downtime > records[0].downtime
