"""E2 — Incremental cost of stale links (paper §6).

Paper claims reproduced here:

- "Each message that goes through a forwarding address generates two
  additional messages": the forwarded copy plus the link-update message
  back to the sender's kernel;
- "This will occur for each message sent on a given link until the update
  message reaches the sending process.  In current examples, the worst
  case observed was two messages sent over a link before it was updated.
  Typically, the link is updated after the first message."
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.ids import ProcessAddress


def run_client_server(gap: int, rounds: int = 8, migrate_at: int = 9_000):
    """A client pinging a server that migrates mid-stream.

    Returns (per-round transcript, network/kernel counters).
    """
    system = make_bare_system()
    transcript = []

    def server(ctx):
        while True:
            msg = yield ctx.receive()
            if msg.delivered_link_ids:
                reply = msg.delivered_link_ids[0]
                yield ctx.send(reply, op="r",
                              payload={"fwd": msg.forward_count})
                yield ctx.destroy_link(reply)

    def client(ctx):
        for i in range(rounds):
            reply_link = yield ctx.create_link()
            sent = ctx.now
            yield ctx.send(ctx.bootstrap["server"], op="q",
                          links=(reply_link,))
            msg = yield ctx.receive()
            transcript.append({
                "round": i,
                "latency": ctx.now - sent,
                "fwd": msg.payload["fwd"],
            })
            yield ctx.destroy_link(reply_link)
            yield ctx.sleep(gap)
        yield ctx.exit()

    server_pid = system.spawn(server, machine=0, name="server")
    system.kernel(2).spawn(
        client, name="client",
        extra_links={"server": ProcessAddress(server_pid, 0)},
    )
    system.loop.call_at(migrate_at, lambda: system.migrate(server_pid, 1))
    drain(system)
    counters = {
        "forwards": sum(k.stats.messages_forwarded for k in system.kernels),
        "updates_sent": sum(k.stats.link_updates_sent for k in system.kernels),
        "updates_applied": sum(
            k.stats.link_updates_applied for k in system.kernels
        ),
        "links_retargeted": sum(
            k.stats.links_retargeted for k in system.kernels
        ),
    }
    return transcript, counters


def test_e2_incremental_cost(bench_once):
    transcript, counters = bench_once(run_client_server, gap=5_000)

    rows = [
        [t["round"], t["latency"], t["fwd"],
         "forwarded" if t["fwd"] else "direct"]
        for t in transcript
    ]
    print_table(
        "E2: messages on a stale link across a migration (paper §6)",
        ["round", "latency us", "fwd hops", "path"],
        rows,
        notes=f"forwarding-address hits={counters['forwards']}, "
              f"updates sent={counters['updates_sent']}, "
              f"applied={counters['updates_applied']}; paper: 2 extra "
              f"messages per forward, link typically updated after 1 msg",
    )

    forwarded_round_count = sum(1 for t in transcript if t["fwd"] > 0)
    write_bench_artifact(
        "e2_incremental_cost",
        {
            "forwards": counters["forwards"],
            "updates_sent": counters["updates_sent"],
            "updates_applied": counters["updates_applied"],
            "links_retargeted": counters["links_retargeted"],
            "forwarded_rounds": forwarded_round_count,
            "final_round_forward_hops": transcript[-1]["fwd"],
        },
        meta={"paper": "2 extra messages per forward; link typically "
                       "updated after the first message"},
    )

    # Exactly two extra messages per forwarding-address hit: the
    # forwarded copy (counted as the hit itself) and one update message.
    assert counters["updates_sent"] == counters["forwards"]
    assert counters["forwards"] >= 1

    # Worst case observed: two messages over the link before it updates
    # (one may already be enroute while the update travels).
    forwarded_rounds = [t for t in transcript if t["fwd"] > 0]
    assert 1 <= len(forwarded_rounds) <= 2

    # Convergence: the tail of the stream is direct again.
    assert transcript[-1]["fwd"] == 0
    assert counters["links_retargeted"] >= 1


def run_pipelined_worst_case():
    """Two messages launched back-to-back on a stale link: both are
    enroute before the update from the first forward can land — the
    paper's observed worst case of two messages per link."""
    system = make_bare_system()
    fwd_flags = []

    def server(ctx):
        while True:
            msg = yield ctx.receive()
            if msg.delivered_link_ids:
                reply = msg.delivered_link_ids[0]
                yield ctx.send(reply, op="r",
                              payload={"fwd": msg.forward_count})
                yield ctx.destroy_link(reply)

    def client(ctx):
        # Pipelined burst of two, then synchronous rounds.
        links = []
        for _ in range(2):
            reply_link = yield ctx.create_link()
            yield ctx.send(ctx.bootstrap["server"], op="q",
                          links=(reply_link,))
            links.append(reply_link)
        for _ in range(2):
            msg = yield ctx.receive()
            fwd_flags.append(msg.payload["fwd"])
        for reply_link in links:
            yield ctx.destroy_link(reply_link)
        for _ in range(4):
            reply_link = yield ctx.create_link()
            yield ctx.send(ctx.bootstrap["server"], op="q",
                          links=(reply_link,))
            msg = yield ctx.receive()
            fwd_flags.append(msg.payload["fwd"])
            yield ctx.destroy_link(reply_link)
        yield ctx.exit()

    server_pid = system.spawn(server, machine=0, name="server")
    system.migrate(server_pid, 1)
    drain(system)  # migration fully settles; only the link is stale
    system.kernel(2).spawn(
        client, name="client",
        extra_links={"server": ProcessAddress(server_pid, 0)},
    )
    drain(system)
    return fwd_flags


def test_e2_back_to_back_messages_show_worst_case(bench_once):
    fwd_flags = bench_once(run_pipelined_worst_case)
    forwarded = [f for f in fwd_flags if f > 0]
    print_table(
        "E2b: pipelined back-to-back messages (worst case)",
        ["message", "forward hops"],
        [[i, f] for i, f in enumerate(fwd_flags)],
        notes="paper: worst case observed was two messages sent over a "
              "link before it was updated",
    )
    write_bench_artifact(
        "e2_pipelined_worst_case",
        {
            "forwarded_messages": len(forwarded),
            "total_messages": len(fwd_flags),
            "max_forward_hops": max(fwd_flags),
        },
        meta={"paper": "worst case observed was two messages sent over "
                       "a link before it was updated"},
    )
    # Both pipelined messages were already enroute: exactly the paper's
    # worst case of two forwarded messages on one link.
    assert len(forwarded) == 2
    # After the update lands, everything is direct.
    assert fwd_flags[-4:] == [0, 0, 0, 0]
