"""E3 — The eight-step migration protocol (paper Figure 3-1).

Regenerates the figure as a timeline: each step, the machine that drives
it, and its simulated timestamp; asserts the ordering and the division of
control the paper describes (steps 3-5 "will be controlled by the
destination processor kernel", step 6-7 by the source, step 8 by the
destination).
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

#: step trace event -> (paper step number, controlling side)
STEP_CONTROL = {
    "step1-freeze": (1, "source"),
    "step2-request": (2, "source"),
    "step3-allocate": (3, "destination"),
    "step4-state": (4, "destination"),
    "step5-program": (5, "destination"),
    "step6-forward-pending": (6, "source"),
    "step7-cleanup": (7, "source"),
    "step8-restart": (8, "destination"),
}


def run_migration():
    system = make_bare_system()

    def parked(ctx):
        while True:
            yield ctx.receive()

    pid = system.spawn(parked, machine=0)
    ticket = system.migrate(pid, 1)
    drain(system)
    assert ticket.success
    steps = [
        (r.time, r.event)
        for r in system.tracer.records("migrate")
        if r.event.startswith("step")
    ]
    return steps, ticket.record


def test_e3_step_timeline(bench_once):
    steps, record = bench_once(run_migration)

    rows = []
    for time, event in steps:
        number, side = STEP_CONTROL[event]
        rows.append([number, event, side, time])
    print_table(
        "E3: the 8-step migration protocol (Figure 3-1)",
        ["step", "event", "controlled by", "t (us)"],
        rows,
        notes=f"downtime={record.downtime}us "
              f"(freeze to restart), total={record.duration}us",
    )

    first_seen: dict[int, int] = {}
    for time, event in steps:
        first_seen.setdefault(STEP_CONTROL[event][0], time)
    metrics = {
        f"t_step{number}_us": time
        for number, time in sorted(first_seen.items())
    }
    metrics["downtime_us"] = record.downtime
    metrics["duration_us"] = record.duration
    write_bench_artifact(
        "e3_migration_steps", metrics,
        meta={"paper": "Figure 3-1: 8-step protocol, downtime spans "
                       "freeze to restart"},
    )

    # Step numbers never decrease (step 4 fires twice: resident +
    # swappable state are both part of "transfer the process state").
    numbers = [STEP_CONTROL[event][0] for _, event in steps]
    assert numbers == sorted(numbers)
    assert numbers[0] == 1 and numbers[-1] == 8

    # Timestamps are monotone.
    times = [time for time, _ in steps]
    assert times == sorted(times)

    # Control: 2 -> destination handoff -> back to source at 6 -> dest at 8.
    sides = [STEP_CONTROL[event][1] for _, event in steps]
    assert sides == [
        "source", "source",
        "destination", "destination", "destination", "destination",
        "source", "source",
        "destination",
    ][:len(sides)]

    # The process is unrunnable exactly from step 1 until step 8.
    assert record.downtime == times[-1] - times[0]
