"""E4 — Message forwarding through a forwarding address (Figure 4-1).

Regenerates the figure's behaviour: a message sent on an out-of-date link
arrives at the old home, hits the degenerate process state, is readdressed
and resubmitted, and reaches the process — at the cost of the extra hop.
The series reports one-way delivery latency versus forwarding-chain
length, plus the 8-byte residue per hop.

"Routing messages through another processor (with the forwarding address)
can defeat possible performance gains and, in many cases, degrade
performance" — the latency column quantifies exactly that degradation.
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind


def measure_chain(chain_length: int):
    """Move a process along a chain, then time a message sent with the
    original (now maximally stale) address."""
    system = make_bare_system(machines=5)
    arrival = {}

    def receiver(ctx):
        while True:
            msg = yield ctx.receive()
            if msg.op == "probe":
                arrival["at"] = ctx.now
                arrival["hops"] = msg.forward_count

    pid = system.spawn(receiver, machine=0)
    for dest in range(1, chain_length + 1):
        system.migrate(pid, dest)
        drain(system)

    sent_at = system.loop.now
    system.kernel(4).send_to_process(
        ProcessAddress(pid, 0), "probe", {}, kind=MessageKind.USER,
    )
    drain(system)
    residue = sum(k.forwarding.storage_bytes for k in system.kernels)
    return {
        "chain": chain_length,
        "latency": arrival["at"] - sent_at,
        "hops": arrival["hops"],
        "residue_bytes": residue,
    }


def run_series():
    return [measure_chain(n) for n in range(4)]


def test_e4_forwarding_latency(bench_once):
    series = bench_once(run_series)

    print_table(
        "E4: delivery through forwarding addresses (Figure 4-1)",
        ["chain length", "one-way latency us", "forward hops",
         "residual bytes"],
        [[s["chain"], s["latency"], s["hops"], s["residue_bytes"]]
         for s in series],
        notes="each hop re-routes the message and leaves an 8-byte "
              "forwarding address on the abandoned machine",
    )

    metrics = {}
    for s in series:
        metrics[f"latency_us_chain{s['chain']}"] = s["latency"]
        metrics[f"hops_chain{s['chain']}"] = s["hops"]
        metrics[f"residual_bytes_chain{s['chain']}"] = s["residue_bytes"]
    write_bench_artifact(
        "e4_forwarding_latency", metrics,
        meta={"paper": "Figure 4-1: each hop re-routes the message and "
                       "leaves an 8-byte forwarding address"},
    )

    # Direct delivery has zero hops; each migration adds one.
    for s in series:
        assert s["hops"] == s["chain"]
        assert s["residue_bytes"] == 8 * s["chain"]

    # Latency strictly degrades with chain length (the motivation for
    # link updating in §5).
    latencies = [s["latency"] for s in series]
    assert all(b > a for a, b in zip(latencies, latencies[1:]))

    # One forward roughly doubles the one-way cost on a uniform mesh.
    assert latencies[1] >= 1.5 * latencies[0]
