"""E5 — Link-update convergence (paper §5, Figure 5-1).

A server with N clients migrates.  Every client's next message goes
through the forwarding address once; the update message patches that
client's link table; after that its traffic is direct.  The series shows
total forwarded messages scaling with the number of *stale link holders*,
not with the amount of traffic — the whole point of lazy link updating.
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.ids import ProcessAddress

CLIENT_COUNTS = [1, 2, 4, 8, 16, 32, 64]
ROUNDS_PER_CLIENT = 6


def run_convergence(clients: int):
    system = make_bare_system(machines=4)
    finished = []

    def server(ctx):
        while True:
            msg = yield ctx.receive()
            if msg.delivered_link_ids:
                reply = msg.delivered_link_ids[0]
                yield ctx.send(reply, op="r")
                yield ctx.destroy_link(reply)

    def make_client(tag):
        def client(ctx):
            fwd_seen = 0
            for _ in range(ROUNDS_PER_CLIENT):
                reply_link = yield ctx.create_link()
                yield ctx.send(ctx.bootstrap["server"], op="q",
                              links=(reply_link,))
                yield ctx.receive()
                yield ctx.destroy_link(reply_link)
                yield ctx.sleep(4_000)
            finished.append(tag)
            yield ctx.exit()
        return client

    server_pid = system.spawn(server, machine=0, name="server")
    for tag in range(clients):
        system.kernel(2 + tag % 2).spawn(
            make_client(tag), name=f"client-{tag}",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
    system.loop.call_at(6_000, lambda: system.migrate(server_pid, 1))
    drain(system, max_events=20_000_000)
    assert len(finished) == clients

    return {
        "clients": clients,
        "forwards": sum(k.stats.messages_forwarded for k in system.kernels),
        "updates": sum(k.stats.link_updates_applied for k in system.kernels),
        "retargeted": sum(k.stats.links_retargeted for k in system.kernels),
        "messages": clients * ROUNDS_PER_CLIENT,
    }


def run_series():
    return [run_convergence(n) for n in CLIENT_COUNTS]


def test_e5_link_update_convergence(bench_once):
    series = bench_once(run_series)

    print_table(
        "E5: link-update convergence vs client count (Figure 5-1)",
        ["clients", "total requests", "forwarded", "updates applied",
         "links retargeted", "forwards/client"],
        [[s["clients"], s["messages"], s["forwards"], s["updates"],
          s["retargeted"], round(s["forwards"] / s["clients"], 2)]
         for s in series],
        notes="paper: typically one forward per stale link, worst case "
              "two; traffic after convergence is direct",
    )

    metrics = {}
    for s in series:
        metrics[f"forwards_clients{s['clients']}"] = s["forwards"]
        metrics[f"retargeted_clients{s['clients']}"] = s["retargeted"]
    write_bench_artifact(
        "e5_link_update_convergence", metrics,
        meta={"paper": "Figure 5-1: typically one forward per stale "
                       "link, worst case two"},
    )

    for s in series:
        # Forwards scale with stale-link holders, not with traffic:
        # between 1 and 2 per client (paper's typical/worst bounds).
        assert s["clients"] <= s["forwards"] <= 2 * s["clients"], s
        # Every client's link table got patched at least once.
        assert s["retargeted"] >= s["clients"]
        # Far fewer forwards than total messages once N is non-trivial.
        if s["clients"] >= 4:
            assert s["forwards"] < s["messages"] / 2
