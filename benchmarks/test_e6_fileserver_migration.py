"""E6 — Migrating the file server during live I/O (paper §2.3).

"One of our test examples of process migration runs the above processes.
It migrates a file system process while several user processes are
performing I/O.  This is more difficult than moving a user process would
be."

Reproduced: K clients run verified read-after-write streams; the file
server front end migrates mid-stream.  Every operation completes, nothing
is corrupted, and the throughput timeline shows the freeze window and the
recovery — the paper's transparency claim, quantified.
"""

from conftest import (
    drain,
    make_system,
    print_table,
    write_bench_artifact,
)

from repro.workloads.file_clients import file_io_client
from repro.workloads.results import ResultsBoard

CLIENTS = 4
OPERATIONS = 8
MIGRATE_AT = 60_000
WINDOW = 25_000


def run_scenario(migrate: bool):
    board = ResultsBoard()
    system = make_system()
    fs_pid = system.server_pids["file_system"]
    completions: list[int] = []

    def on_trace(record):
        if (record.category == "kernel" and record.event == "deliver"
                and record.fields.get("op") == "fs-read-reply"):
            completions.append(record.time)

    system.tracer.subscribe(on_trace)
    for tag in range(CLIENTS):
        system.spawn(
            lambda ctx, t=tag: file_io_client(
                ctx, tag=t, operations=OPERATIONS, gap=2_000,
                board=board, key="io",
            ),
            machine=tag % 4, name=f"client-{tag}",
        )
    if migrate:
        system.loop.call_at(
            MIGRATE_AT, lambda: system.migrate(fs_pid, 3),
        )
    drain(system, max_events=20_000_000)
    return board.get("io"), completions, system


def histogram(completions, until):
    buckets = {}
    for time in completions:
        buckets[time // WINDOW] = buckets.get(time // WINDOW, 0) + 1
    return [(w * WINDOW, buckets.get(w, 0))
            for w in range(until // WINDOW + 1)]


def test_e6_fileserver_migration_under_io(bench_once):
    results, completions, system = bench_once(run_scenario, migrate=True)

    until = max(completions)
    print_table(
        "E6: file-server migration during live I/O (paper §2.3 test)",
        ["window start us", "read completions"],
        histogram(completions, until),
        notes=f"file server migrated at t={MIGRATE_AT}us; "
              f"{CLIENTS} clients x {OPERATIONS} verified ops each",
    )

    write_bench_artifact(
        "e6_fileserver_migration",
        {
            "completions": len(completions),
            "clients": CLIENTS,
            "operations_per_client": OPERATIONS,
            "errors": sum(len(r["errors"]) for r in results),
            "last_completion_us": until,
        },
        meta={"paper": "§2.3: file system migrates while user processes "
                       "perform I/O; nothing is lost or corrupted"},
    )

    # The paper's transparency claim: no lost or corrupted operations.
    assert len(results) == CLIENTS
    for result in results:
        assert result["errors"] == [], result
        assert len(result["latencies"]) == OPERATIONS

    # The server really moved, and its sibling FS processes did not.
    assert system.where_is(system.server_pids["file_system"]) == 3
    assert system.where_is(system.server_pids["disk_driver"]) == 1

    # All operations completed.
    assert len(completions) == CLIENTS * OPERATIONS


def test_e6_latency_dip_and_recovery(bench_once):
    still_results, _, _ = bench_once(run_scenario, migrate=False)
    moved_results, _, _ = run_scenario(migrate=True)

    def mean_latency(results):
        lats = [l for r in results for l in r["latencies"]]
        return sum(lats) / len(lats)

    still = mean_latency(still_results)
    moved = mean_latency(moved_results)
    print_table(
        "E6b: mean verified-op latency, migrated vs not",
        ["scenario", "mean op latency us"],
        [["no migration", round(still)], ["fs migrated", round(moved)]],
        notes="migration costs a bounded latency perturbation, not "
              "correctness",
    )
    write_bench_artifact(
        "e6_latency_dip",
        {
            "mean_latency_us_still": round(still),
            "mean_latency_us_migrated": round(moved),
        },
        meta={"paper": "migration costs a bounded latency perturbation, "
                       "not correctness"},
    )
    # Migration may slow things, but boundedly (no retries/timeouts).
    assert moved < still * 3
    for result in moved_results:
        assert result["errors"] == []
