"""E7 — Forwarding vs the rejected return-to-sender alternative (§4).

"An alternative to message forwarding is to return messages to their
senders as not deliverable. ... The disadvantage of this scheme is that
... more of the system would be involved in message forwarding and would
have to be aware of process migration.  This method also violates the
transparency of communications fundamental to DEMOS/MP."

Both designs run the same stale-link workload; the table compares the
extra machinery each needs per stale message.
"""

from conftest import (
    drain,
    make_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.kernel import UndeliverablePolicy
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard

ROUNDS = 8


def run_policy(policy: str):
    kwargs = dict(notify_process_manager=True)
    if policy == "return-to-sender":
        kwargs.update(
            undeliverable_policy=UndeliverablePolicy.RETURN_TO_SENDER,
            leave_forwarding_address=False,
        )
    board = ResultsBoard()
    system = make_system(**kwargs)
    box = {}

    def server(ctx):
        box["pid"] = ctx.pid
        yield from echo_server(ctx)

    system.spawn(server, machine=0, name="echo")
    system.spawn(
        lambda ctx: pinger(ctx, rounds=ROUNDS, gap=6_000, board=board,
                           key="e7"),
        machine=3, name="pinger",
    )
    system.loop.call_at(10_000, lambda: system.migrate(box["pid"], 1))
    drain(system, max_events=20_000_000)

    transcript = board.only("e7-summary")["transcript"]
    sends = system.network.stats.sends_by_category
    return {
        "policy": policy,
        "rounds_ok": [t["round"] for t in transcript] == list(range(ROUNDS)),
        "latencies": [t["latency"] for t in transcript],
        "nacks": sends.get("nack", 0),
        "locates": sends.get("locate", 0),
        "linkupdates": sends.get("linkupdate", 0),
        "residual_bytes": sum(
            k.forwarding.storage_bytes for k in system.kernels
        ),
        "pm_involved": sends.get("locate", 0) > 0,
    }


def run_both():
    return [run_policy("forwarding"), run_policy("return-to-sender")]


def test_e7_forwarding_vs_return_to_sender(bench_once):
    forwarding, rts = bench_once(run_both)

    def worst(latencies):
        return max(latencies)

    print_table(
        "E7: forwarding vs return-to-sender (paper §4 alternative)",
        ["policy", "all rounds ok", "nacks", "PM lookups",
         "link updates", "residual B", "worst latency us"],
        [
            [forwarding["policy"], forwarding["rounds_ok"],
             forwarding["nacks"], forwarding["locates"],
             forwarding["linkupdates"], forwarding["residual_bytes"],
             worst(forwarding["latencies"])],
            [rts["policy"], rts["rounds_ok"], rts["nacks"],
             rts["locates"], rts["linkupdates"], rts["residual_bytes"],
             worst(rts["latencies"])],
        ],
        notes="paper: return-to-sender drags more of the system into "
              "migration awareness; forwarding costs 8B of residue",
    )

    write_bench_artifact(
        "e7_return_to_sender",
        {
            "fwd_nacks": forwarding["nacks"],
            "fwd_pm_lookups": forwarding["locates"],
            "fwd_link_updates": forwarding["linkupdates"],
            "fwd_residual_bytes": forwarding["residual_bytes"],
            "fwd_worst_latency_us": worst(forwarding["latencies"]),
            "rts_nacks": rts["nacks"],
            "rts_pm_lookups": rts["locates"],
            "rts_link_updates": rts["linkupdates"],
            "rts_residual_bytes": rts["residual_bytes"],
            "rts_worst_latency_us": worst(rts["latencies"]),
        },
        meta={"paper": "§4: return-to-sender drags more of the system "
                       "into migration awareness"},
    )

    # Both are *correct* (eventual delivery either way).
    assert forwarding["rounds_ok"] and rts["rounds_ok"]

    # Forwarding: no NACKs, no process-manager involvement, 8B residue.
    assert forwarding["nacks"] == 0
    assert not forwarding["pm_involved"]
    assert forwarding["residual_bytes"] == 8

    # Return-to-sender: kernel NACKs + PM lookups, but no residue.
    assert rts["nacks"] >= 1
    assert rts["pm_involved"]
    assert rts["residual_bytes"] == 0

    # The paper's "more of the system would be involved": per stale
    # message, RTS generates strictly more control traffic than the
    # forward+update pair.
    rts_overhead = rts["nacks"] + 2 * rts["locates"]
    fwd_overhead = forwarding["linkupdates"]
    assert rts_overhead > fwd_overhead
