"""E8 — Forwarding-address lifetime and chains (paper §4).

"The forwarding address is compact.  In the current implementation, it
uses 8 bytes of storage.  As a result of the negligible impact on system
resources, we have not found it necessary to remove forwarding addresses.
Given a long running system, however, some form of garbage collection
will eventually have to be used. ... An alternative is to remove the
forwarding address when the process dies.  This can be accomplished by
means of pointers backwards along the path of migration."

The series migrates a process M times, measures chain cost for stale
senders at every age of link, and then kills the process and verifies the
backward-pointer garbage collection reclaims every entry.
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind

MAX_HOPS = 5


def run_chain_experiment():
    system = make_bare_system(machines=MAX_HOPS + 2)
    probe_hops = {}

    def receiver(ctx):
        while True:
            msg = yield ctx.receive()
            if msg.op == "probe":
                probe_hops[msg.payload["stale_age"]] = msg.forward_count
            elif msg.op == "die":
                yield ctx.exit()

    pid = system.spawn(receiver, machine=0, name="nomad")
    rows = []
    sender = system.kernel(MAX_HOPS + 1)
    for hop in range(1, MAX_HOPS + 1):
        system.migrate(pid, hop)
        drain(system)
        # A probe with the *original* address crosses the whole chain.
        sender.send_to_process(
            ProcessAddress(pid, 0), "probe", {"stale_age": hop},
            kind=MessageKind.USER,
        )
        drain(system)
        rows.append({
            "migrations": hop,
            "hops": probe_hops[hop],
            "residual_bytes": sum(
                k.forwarding.storage_bytes for k in system.kernels
            ),
            "entries": system.total_forwarding_entries(),
        })

    # Death: backward pointers collect every forwarding address.
    sender.send_to_process(
        ProcessAddress(pid, MAX_HOPS), "die", {}, kind=MessageKind.USER,
    )
    drain(system)
    after_death = system.total_forwarding_entries()
    collected = sum(k.forwarding.collected for k in system.kernels)
    return rows, after_death, collected


def test_e8_chains_and_garbage_collection(bench_once):
    rows, after_death, collected = bench_once(run_chain_experiment)

    print_table(
        "E8: forwarding chains after repeated migration (paper §4)",
        ["migrations", "probe hops", "residual bytes", "fwd entries"],
        [[r["migrations"], r["hops"], r["residual_bytes"], r["entries"]]
         for r in rows],
        notes=f"after process death: entries={after_death} "
              f"(collected {collected} via backward pointers)",
    )

    metrics = {
        "entries_after_death": after_death,
        "entries_collected": collected,
    }
    for r in rows:
        metrics[f"hops_after_{r['migrations']}_migrations"] = r["hops"]
        metrics[f"residual_bytes_after_{r['migrations']}_migrations"] = (
            r["residual_bytes"]
        )
    write_bench_artifact(
        "e8_forwarding_chains", metrics,
        meta={"paper": "§4: 8-byte forwarding addresses, collected via "
                       "backward pointers when the process dies"},
    )

    for r in rows:
        # A maximally stale sender pays one hop per abandoned residence.
        assert r["hops"] == r["migrations"]
        # 8 bytes per abandoned machine, nothing more.
        assert r["residual_bytes"] == 8 * r["migrations"]
        assert r["entries"] == r["migrations"]

    # Garbage collection on death reclaims everything.
    assert after_death == 0
    assert collected == MAX_HOPS
