"""E9 — Load balancing via migration (paper §1 motivation, §7 future work).

"If it is possible to assess the system load dynamically and to
redistribute processes during their lifetimes, a system has the
opportunity to achieve better overall throughput, in spite of the
communication and computation involved in moving a process."

A burst of compute jobs lands on one machine of four.  Static placement
versus the threshold balancer (the paper's missing "strategy routine",
implemented per its own checklist: information collection, improvement
strategy, hysteresis).  The balanced run must win on makespan and mean
completion time by enough to cover migration costs.
"""

from conftest import (
    drain,
    make_bare_system,
    print_table,
    write_bench_artifact,
)

from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.workloads.compute import compute_bound
from repro.workloads.results import ResultsBoard

JOBS = 12
WORK = 80_000  # us of CPU each
MACHINES = 4


def run_load(balanced: bool):
    board = ResultsBoard()
    system = make_bare_system(machines=MACHINES)
    for i in range(JOBS):
        system.loop.call_at(
            100 * i,
            lambda i=i: system.spawn(
                lambda ctx: compute_bound(ctx, total=WORK, board=board),
                machine=0, name=f"job-{i}",
            ),
        )
    balancer = None
    if balanced:
        balancer = ThresholdLoadBalancer(
            system, interval=10_000, threshold=2, sustain=1,
            cooldown=50_000,
        )
        balancer.install()
    system.run(until=JOBS * WORK + 500_000)
    if balancer:
        balancer.stop()
    drain(system, max_events=50_000_000)
    records = board.get("compute")
    assert len(records) == JOBS
    makespan = max(r["finished"] for r in records)
    mean_completion = sum(r["finished"] for r in records) / JOBS
    moved = sum(1 for r in records if len(r["machines"]) > 1)
    migrations = len(system.migration_records())
    return {
        "makespan": makespan,
        "mean_completion": mean_completion,
        "jobs_moved": moved,
        "migrations": migrations,
    }


def run_both():
    return run_load(balanced=False), run_load(balanced=True)


def test_e9_load_balancing_beats_static(bench_once):
    static, balanced = bench_once(run_both)

    print_table(
        "E9: dynamic load balancing vs static placement (paper §1)",
        ["placement", "makespan us", "mean completion us",
         "jobs migrated", "migrations"],
        [
            ["static", static["makespan"],
             round(static["mean_completion"]), 0, static["migrations"]],
            ["balanced", balanced["makespan"],
             round(balanced["mean_completion"]),
             balanced["jobs_moved"], balanced["migrations"]],
        ],
        notes=f"{JOBS} x {WORK}us CPU jobs all arriving on machine 0 "
              f"of {MACHINES}",
    )

    write_bench_artifact(
        "e9_load_balancing",
        {
            "static_makespan_us": static["makespan"],
            "static_mean_completion_us": round(static["mean_completion"]),
            "balanced_makespan_us": balanced["makespan"],
            "balanced_mean_completion_us": round(
                balanced["mean_completion"]
            ),
            "balanced_jobs_moved": balanced["jobs_moved"],
            "balanced_migrations": balanced["migrations"],
        },
        meta={"paper": "§1: better overall throughput in spite of the "
                       "communication and computation of moving"},
    )

    # Static: everything serialises on machine 0.
    assert static["migrations"] == 0
    assert static["makespan"] >= JOBS * WORK

    # Balanced: real migrations happened and throughput improved
    # "in spite of the communication and computation involved".
    assert balanced["migrations"] >= 2
    assert balanced["jobs_moved"] >= 2
    assert balanced["makespan"] < 0.75 * static["makespan"]
    assert balanced["mean_completion"] < static["mean_completion"]
