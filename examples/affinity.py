#!/usr/bin/env python3
"""Communication-affinity migration (paper §1).

"Moving a process closer to the resource it is using most heavily may
reduce system-wide communication traffic, if the decreased cost of
accessing its favorite resource offsets the possible increased cost of
accessing its less favored ones."

Two tightly-coupled processes start on opposite ends of a *line* network
(every message crosses three hops).  The affinity policy watches the
communication matrix the tracer builds and migrates one of them next to
the other; the round-trip latency collapses.

Run:  python examples/affinity.py
"""

from repro import System, SystemConfig
from repro.policy.affinity import AffinityPolicy
from repro.sim.clock import format_time
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard


def main() -> None:
    board = ResultsBoard()
    system = System(SystemConfig(
        machines=4, topology="line", seed=11,
    ))
    system.spawn(lambda ctx: echo_server(ctx), machine=0, name="talker-a")
    system.spawn(
        lambda ctx: pinger(ctx, rounds=40, gap=4_000, board=board,
                           key="chat"),
        machine=3, name="talker-b",
    )
    policy = AffinityPolicy(
        system, interval=25_000, message_threshold=10,
    )
    policy.install()
    system.run(until=1_500_000)
    policy.stop()
    system.run()

    transcript = board.only("chat-summary")["transcript"]
    print("round-trip latency over time (line topology, 4 machines):")
    for t in transcript:
        if t["round"] % 4 == 0 or t["round"] in (
            len(transcript) - 1,
        ):
            marker = "#" * max(1, t["latency"] // 300)
            print(
                f"  round {t['round']:>2}: {format_time(t['latency']):>10} "
                f"(server on machine {t['server_machine']}) {marker}"
            )

    moves = policy.stats.moves
    print(f"\naffinity policy migrations: {moves}")
    early = [t["latency"] for t in transcript[:5]]
    late = [t["latency"] for t in transcript[-5:]]
    print(
        f"mean round-trip before co-location: "
        f"{format_time(sum(early) // len(early))}\n"
        f"mean round-trip after co-location:  "
        f"{format_time(sum(late) // len(late))}"
    )
    heaviest = policy.matrix.heaviest_pairs(1)
    if heaviest:
        (pair, count) = heaviest[0]
        print(f"busiest pair observed by the communication matrix: "
              f"{pair[0]} <-> {pair[1]} ({count} messages)")


if __name__ == "__main__":
    main()
