#!/usr/bin/env python3
"""Crash recovery: migrating processes *off a machine that already died*.

Paper §1: "If the information necessary to transport a process is saved
in stable storage, it may be possible to 'migrate' a process from a
processor that has crashed to a working one."  Paper §4 adds that the
same recovery works for forwarding addresses, leaning on published
communications for delivery.

This example protects two of three processes on machine 1, fail-stops the
machine without warning at t=20ms, and shows: the protected processes
finish on the executor, the unprotected one's clients get "link no longer
usable" notices, and a forwarding chain running through the dead machine
still resolves.

Run:  python examples/crash_recovery.py
"""

from repro import System, SystemConfig
from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind
from repro.policy.recovery import CrashRecoveryManager
from repro.sim.clock import format_time
from repro.workloads.compute import compute_bound
from repro.workloads.results import ResultsBoard


def main() -> None:
    board = ResultsBoard()
    system = System(SystemConfig(machines=4, boot_servers=False, seed=5))
    manager = CrashRecoveryManager(system)

    protected_a = system.spawn(
        lambda ctx: compute_bound(ctx, total=80_000, board=board,
                                  key="protected"),
        machine=1, name="protected-a",
    )
    protected_b = system.spawn(
        lambda ctx: compute_bound(ctx, total=80_000, board=board,
                                  key="protected"),
        machine=1, name="protected-b",
    )

    def doomed(ctx):  # no checkpoint: will be a casualty
        while True:
            yield ctx.receive()

    casualty = system.spawn(doomed, machine=1, name="doomed")
    manager.protect(protected_a)
    manager.protect(protected_b)

    # Build a forwarding chain through the doomed machine: a nomad that
    # lived on machine 1 and moved on, leaving a forwarding address there.
    def nomad(ctx):
        while True:
            msg = yield ctx.receive()
            board.post("nomad", {"op": msg.op, "hops": msg.forward_count,
                                 "machine": ctx.machine})

    nomad_pid = system.spawn(nomad, machine=1, name="nomad")
    system.migrate(nomad_pid, 2)
    system.run(until=15_000)

    def crash() -> None:
        print(f"t={format_time(system.loop.now)}: machine 1 fail-stops "
              f"(no warning)")
        report = manager.crash(1, executor=3)
        print(f"  recovered on machine 3: "
              f"{[str(p) for p in report.recovered]}")
        print(f"  casualties: {[str(p) for p in report.casualties]}")
        print(f"  forwarding addresses recovered: "
              f"{report.forwarding_recovered}")

    system.loop.call_at(20_000, crash)

    # After the crash: a stale probe to the nomad (through the dead hop)
    # and a doomed message to the casualty.
    def post_crash_traffic() -> None:
        system.kernel(0).send_to_process(
            ProcessAddress(nomad_pid, 1), "chase-through-the-grave", {},
            kind=MessageKind.USER,
        )

    system.loop.call_at(30_000, post_crash_traffic)
    system.run()

    print("\nprotected compute jobs:")
    for record in board.get("protected"):
        print(f"  {record['pid']}: finished on machine "
              f"{record['machines'][-1]} at "
              f"{format_time(record['finished'])}, path "
              f"{record['machines']}")
    (probe,) = board.get("nomad")
    print(f"\nprobe through the dead machine's forwarding address: "
          f"op={probe['op']!r} reached machine {probe['machine']} "
          f"after {probe['hops']} forward hop(s)")
    print(f"network quiescent: {system.network.quiescent()}")


if __name__ == "__main__":
    main()
