#!/usr/bin/env python3
"""The paper's own showcase (§2.3): migrate the file server during I/O.

"One of our test examples of process migration ... migrates a file system
process while several user processes are performing I/O.  This is more
difficult than moving a user process would be."

Four clients run verified read-after-write streams against the
four-process file system.  Mid-stream, the request-interpreter front end
is migrated across the machine park — twice.  The example prints each
client's verification verdict and the traffic that flowed through the
forwarding address while stale links converged.

Run:  python examples/fileserver_migration.py
"""

from repro import System, SystemConfig
from repro.sim.clock import format_time
from repro.workloads.file_clients import file_io_client
from repro.workloads.results import ResultsBoard


def main() -> None:
    board = ResultsBoard()
    system = System(SystemConfig(machines=4, seed=7))
    fs_pid = system.server_pids["file_system"]
    print(f"file system front end is {fs_pid} on machine "
          f"{system.where_is(fs_pid)} (disk driver, buffer manager and "
          f"directory manager are its siblings)")

    for tag in range(4):
        system.spawn(
            lambda ctx, t=tag: file_io_client(
                ctx, tag=t, operations=8, write_size=700, gap=2_000,
                board=board, key="io",
            ),
            machine=tag, name=f"client-{tag}",
        )

    system.loop.call_at(40_000, lambda: system.migrate(fs_pid, 3))
    system.loop.call_at(150_000, lambda: system.migrate(fs_pid, 0))
    system.run()

    print(f"\nfile server finished on machine {system.where_is(fs_pid)} "
          f"after 2 migrations\n")
    print("per-client verification (read-after-write on every op):")
    for result in sorted(board.get("io"), key=lambda r: r["tag"]):
        latencies = result["latencies"]
        verdict = "OK" if not result["errors"] else result["errors"]
        print(
            f"  client {result['tag']}: {result['operations']} ops, "
            f"mean {format_time(sum(latencies) // len(latencies))}, "
            f"max {format_time(max(latencies))}, verdict: {verdict}"
        )

    forwards = sum(k.stats.messages_forwarded for k in system.kernels)
    updates = sum(k.stats.link_updates_applied for k in system.kernels)
    print(
        f"\nmessages redirected by forwarding addresses: {forwards}\n"
        f"link-update messages applied: {updates}\n"
        f"residual forwarding state: "
        f"{sum(k.forwarding.storage_bytes for k in system.kernels)} bytes"
    )


if __name__ == "__main__":
    main()
