#!/usr/bin/env python3
"""Dynamic load balancing via migration (paper §1 motivation, §7 future work).

Twelve CPU-bound jobs all arrive on machine 0 of a four-machine system —
the "creation of a new process with unexpected resource requirements"
scenario.  The run is executed twice: once with static placement, once
with the threshold load balancer (the paper's missing "strategy routine",
complete with its requested hysteresis).  The example prints both
timelines and the speedup.

Run:  python examples/load_balancing.py
"""

from repro import System, SystemConfig
from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.sim.clock import format_time
from repro.workloads.compute import compute_bound
from repro.workloads.results import ResultsBoard

JOBS = 12
WORK = 60_000  # microseconds of CPU per job


def run(balanced: bool) -> dict:
    board = ResultsBoard()
    system = System(SystemConfig(machines=4, boot_servers=False, seed=3))
    for i in range(JOBS):
        system.loop.call_at(
            200 * i,
            lambda i=i: system.spawn(
                lambda ctx: compute_bound(ctx, total=WORK, board=board),
                machine=0, name=f"job-{i}",
            ),
        )
    balancer = None
    if balanced:
        balancer = ThresholdLoadBalancer(
            system, interval=10_000, threshold=2, sustain=1,
            cooldown=40_000,
        )
        balancer.install()
    system.run(until=JOBS * WORK + 300_000)
    if balancer is not None:
        balancer.stop()
    system.run()

    records = board.get("compute")
    per_machine: dict[int, int] = {}
    for record in records:
        final = record["machines"][-1]
        per_machine[final] = per_machine.get(final, 0) + 1
    return {
        "makespan": max(r["finished"] for r in records),
        "mean": sum(r["finished"] for r in records) / len(records),
        "migrations": len(system.migration_records()),
        "finished_on": per_machine,
    }


def main() -> None:
    static = run(balanced=False)
    balanced = run(balanced=True)

    print(f"{JOBS} jobs x {format_time(WORK)} CPU, all arriving on "
          f"machine 0 of 4:\n")
    for name, result in (("static placement", static),
                         ("threshold balancer", balanced)):
        print(f"  {name}:")
        print(f"    makespan        {format_time(result['makespan'])}")
        print(f"    mean completion {format_time(int(result['mean']))}")
        print(f"    migrations      {result['migrations']}")
        print(f"    jobs finished on machines: "
              f"{dict(sorted(result['finished_on'].items()))}")

    speedup = static["makespan"] / balanced["makespan"]
    print(f"\n  makespan speedup from migration: {speedup:.2f}x")
    print("  (the paper's §1 claim: redistribution during process "
          "lifetimes improves throughput despite migration costs)")


if __name__ == "__main__":
    main()
