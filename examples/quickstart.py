#!/usr/bin/env python3
"""Quickstart: migrate a process mid-computation and watch it not notice.

Builds a three-machine DEMOS/MP system, starts a worker that computes and
chats with an echo server, migrates the worker twice while it runs, and
prints the worker's own view of events plus the kernel-level cost ledger.

Run:  python examples/quickstart.py
"""

from repro import System, SystemConfig
from repro.sim.clock import format_time
from repro.workloads.pingpong import echo_server
from repro.servers.common import lookup_service, rpc


def main() -> None:
    system = System(SystemConfig(machines=3, seed=42))
    diary: list[str] = []

    def worker(ctx):
        echo = yield from lookup_service(ctx, "echo")
        for step in range(6):
            yield ctx.compute(5_000)
            reply = yield from rpc(ctx, echo, "echo",
                                   {"step": step})
            diary.append(
                f"t={format_time(ctx.now):>9}  step {step}: "
                f"I'm on machine {ctx.machine}, echo server answered "
                f"from machine {reply.payload['machine']}"
                + ("  (request was forwarded)"
                   if reply.payload["forwarded"] else "")
            )
        yield ctx.exit()

    system.spawn(lambda ctx: echo_server(ctx), machine=1, name="echo")
    worker_pid = system.spawn(worker, machine=0, name="worker")

    # Move the worker while it runs; it keeps its pid, links, and state.
    system.loop.call_at(12_000, lambda: system.migrate(worker_pid, 2))
    system.loop.call_at(30_000, lambda: system.migrate(worker_pid, 1))

    system.run()

    print("Worker's diary:")
    for line in diary:
        print(" ", line)

    print("\nMigration cost ledger (paper §6):")
    for record in system.migration_records():
        summary = record.summary()
        print(
            f"  {summary['pid']} {summary['source']}->{summary['dest']}: "
            f"{summary['admin_messages']} admin messages "
            f"({summary['admin_bytes']}B), state moved = "
            f"{summary['resident_bytes']}B resident + "
            f"{summary['swappable_bytes']}B swappable + "
            f"{summary['program_bytes']}B program, "
            f"downtime {format_time(summary['downtime_us'])}"
        )

    print(f"\nForwarding addresses left behind: "
          f"{system.total_forwarding_entries()} "
          f"(8 bytes each, per the paper)")


if __name__ == "__main__":
    main()
