#!/usr/bin/env python3
"""Drive DEMOS/MP through its command interpreter (paper §2.3).

"The command interpreter allows interactive access to DEMOS/MP programs."
This example scripts a session — start jobs, list them, migrate one by
pid, ask where it is — exactly the operator's-eye view of migration.

Run:  python examples/shell_session.py
"""

from repro import System, SystemConfig
from repro.servers.common import rpc

SESSION = [
    "help",
    "run compute on 1 total=80000 name=cruncher",
    "run pinger on 2 rounds=1000 gap=50000 name=chatty",
    "ps",
    "{migrate_chatty}",  # filled in once we know chatty's pid
    "{where_chatty}",
    "ps",
]


def main() -> None:
    system = System(SystemConfig(machines=4, seed=1,
                                 notify_process_manager=True))
    printed: list[tuple[str, str]] = []
    pids: dict[str, object] = {}

    def operator(ctx):
        for template in SESSION:
            if template == "{migrate_chatty}":
                pid = pids["chatty"]
                line = f"migrate {pid.creating_machine}.{pid.local_id} 3"
            elif template == "{where_chatty}":
                pid = pids["chatty"]
                line = f"where {pid.creating_machine}.{pid.local_id}"
            else:
                line = template
            reply = yield from rpc(
                ctx, ctx.bootstrap["command_interpreter"], "command",
                {"line": line}, payload_bytes=16 + len(line),
            )
            body = reply.payload
            printed.append((line, body.get("text", "")))
            if body.get("ok") and "pid" in body and "name=chatty" in line:
                pids["chatty"] = body["pid"]
            yield ctx.sleep(5_000)
        yield ctx.exit()

    system.spawn(operator, machine=0, name="operator")
    system.run(until=2_000_000)

    for line, text in printed:
        print(f"demos$ {line}")
        for row in text.splitlines():
            print(f"  {row}")
        print()


if __name__ == "__main__":
    main()
