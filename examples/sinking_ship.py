#!/usr/bin/env python3
"""Fault recovery: "like rats leaving a sinking ship" (paper §1).

"In failure modes that manifest themselves as gradual degradation of the
processor ... working processes may be migrated from a dying processor
before it completely fails."

Machine 2 hosts an echo service and three long-running workers.  At
t=50ms the operator notices the machine degrading (we model it as rising
wire fault rates) and evacuates every process to healthy machines; at
t=120ms the machine "dies" (its wires drop everything).  The workloads —
including a client that keeps calling the echo service by its old links —
finish correctly.

Run:  python examples/sinking_ship.py
"""

from repro import FaultPlan, System, SystemConfig
from repro.policy.metrics import migratable_processes
from repro.sim.clock import format_time
from repro.workloads.compute import compute_bound
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard

DYING = 2  #: the machine that will fail
HEALTHY = [0, 1, 3]


def main() -> None:
    board = ResultsBoard()
    system = System(SystemConfig(machines=4, seed=9))

    system.spawn(lambda ctx: echo_server(ctx), machine=DYING, name="echo")
    for i in range(3):
        system.spawn(
            lambda ctx: compute_bound(
                ctx, total=150_000, board=board, key="worker",
            ),
            machine=DYING, name=f"worker-{i}",
        )
    system.spawn(
        lambda ctx: pinger(ctx, rounds=10, gap=15_000, board=board,
                           key="client"),
        machine=0, name="client",
    )

    def degrade() -> None:
        print(f"t={format_time(system.loop.now)}: machine {DYING} is "
              f"degrading (drops rising) — evacuating")
        for peer in HEALTHY:
            system.network.set_faults(
                FaultPlan(drop_probability=0.2), DYING, peer,
            )
        evacuees = migratable_processes(system, DYING)
        for index, pid in enumerate(evacuees):
            dest = HEALTHY[index % len(HEALTHY)]
            name = system.process_state(pid).name
            print(f"  migrating {pid} ({name}) -> machine {dest}")
            system.kernel(DYING).migration.start(pid, dest)

    def die() -> None:
        survivors = list(system.kernel(DYING).processes)
        print(f"t={format_time(system.loop.now)}: machine {DYING} dies "
              f"(processes still aboard: {survivors or 'none'})")
        for peer in HEALTHY:
            system.network.set_faults(
                FaultPlan(drop_probability=1.0), DYING, peer,
            )

    system.loop.call_at(50_000, degrade)
    system.loop.call_at(120_000, die)
    system.run(until=1_000_000)

    print("\nworkers (all started on the dying machine):")
    for record in board.get("worker"):
        print(f"  {record['pid']}: finished on machine "
              f"{record['machines'][-1]} at "
              f"{format_time(record['finished'])}, path "
              f"{record['machines']}")
    transcript = board.get("client")
    answered_by = sorted({t["server_machine"] for t in transcript})
    print(f"\nclient completed {len(transcript)}/10 echo rounds; the "
          f"echo service answered from machines {answered_by}")
    lost = [t for t in transcript if t["server_machine"] == DYING
            and t["round"] > 5]
    print("no round was served by the dead machine after evacuation"
          if not lost else f"UNEXPECTED: {lost}")


if __name__ == "__main__":
    main()
