#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts against committed baselines.

Every benchmark writes a ``repro-bench/v1`` artifact (see
``benchmarks/conftest.py:write_bench_artifact``) with a flat mapping of
metric name to number.  This script diffs a results directory against
``benchmarks/baselines/`` and fails (exit 1) when any metric drifts by
more than the tolerance.  The simulation is deterministic, so on an
unchanged tree every diff is exactly zero; the tolerance only absorbs
intentional small shifts (e.g. a cost-model tweak) without masking real
regressions.

Usage:

    python scripts/check_bench_regression.py \
        [--results benchmarks/results] \
        [--baselines benchmarks/baselines] \
        [--tolerance 0.2] \
        [--only 'BENCH_e11_*.json']

``--only`` restricts the gate to artifacts whose file name matches the
glob, for CI jobs that run a subset of the benchmark suite (the other
baselines would otherwise fail as "artifact missing").

A results artifact with no committed baseline also fails the gate: a
new benchmark must land together with its baseline, otherwise its
counters are silently ungated until someone notices.

Wall-clock timings (``*wall*``, ``*seconds*``, ``*speedup*``, ...) are
host-dependent and may only appear under ``meta``, never as gated
metrics.  And a committed baseline whose meta claims a parallel speedup
above 1x while ``meta.cpu_count`` is 1 (or absent) is rejected outright
— the curve could not have been measured on that host.

Exit codes: 0 ok, 1 regression or malformed artifact, 2 usage error
(e.g. no artifacts found where they were expected).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path

SCHEMA = "repro-bench/v1"
DEFAULT_TOLERANCE = 0.2

REPO_ROOT = Path(__file__).resolve().parent.parent


#: substrings that mark a field as a timing measurement — host-dependent
#: and nondeterministic, so it belongs in ``meta`` (informational), never
#: in ``metrics`` (gated with a drift tolerance)
WALL_CLOCK_MARKERS = ("wall", "elapsed", "seconds", "speedup")


def load_artifact(path: Path) -> dict:
    """Read one artifact, validating the schema tag and metric types."""
    document = json.loads(path.read_text())
    if document.get("schema") != SCHEMA:
        raise ValueError(
            f"{path.name}: expected schema {SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    metrics = document.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path.name}: missing or empty 'metrics'")
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"{path.name}: metric {key!r} is not a number: {value!r}"
            )
        lowered = key.lower()
        for marker in WALL_CLOCK_MARKERS:
            if marker in lowered:
                raise ValueError(
                    f"{path.name}: metric {key!r} looks like a "
                    f"wall-clock measurement ({marker!r}) — timing is "
                    f"host-dependent and belongs in 'meta', not in the "
                    f"gated 'metrics'"
                )
    return document


def check_speedup_honesty(name: str, meta: dict) -> list[str]:
    """Refuse a committed baseline whose speedup claim cannot be real.

    A ``speedup`` > 1 recorded on a host with one CPU is by definition
    measurement noise or a copy-paste from another machine — parallel
    shards cannot beat serial without parallel hardware.  Requiring
    ``cpu_count`` alongside any speedup claim keeps the committed
    curves honest about what actually ran.
    """
    problems = []
    claims = {
        key: value
        for key, value in meta.items()
        if "speedup" in key.lower()
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }
    for key, value in sorted(claims.items()):
        if value <= 1:
            continue
        cpu_count = meta.get("cpu_count")
        if cpu_count is None:
            problems.append(
                f"{name}: baseline claims meta.{key} = {value} but "
                f"records no meta.cpu_count — a speedup claim must say "
                f"what hardware measured it"
            )
        elif cpu_count == 1:
            problems.append(
                f"{name}: baseline claims meta.{key} = {value} with "
                f"meta.cpu_count = 1 — a single-core host cannot show "
                f"parallel speedup; regenerate on a multi-core runner"
            )
    return problems


#: meta keys that parameterise a run — a mismatch means the result came
#: from a *different experiment* than the one the baseline gates, and
#: any metric diff would be comparing apples to oranges
IDENTITY_META_KEYS = ("machines", "seed")


def compare_meta(
    name: str,
    current: dict,
    baseline: dict,
) -> list[str]:
    """Check the run-identity meta keys match before any metric diff.

    A mis-parameterised rerun (wrong machine count, wrong seed) must
    fail loudly as such, not surface as a pile of baffling metric
    drifts.  Keys absent from the baseline are noted but not failed, so
    pre-meta baselines keep working until they are regenerated.
    """
    problems = []
    for key in IDENTITY_META_KEYS:
        if key not in baseline:
            print(
                f"note: {name}: baseline meta lacks {key!r} "
                f"(regenerate the baseline to gate run identity)"
            )
            continue
        if key not in current:
            problems.append(
                f"{name}: result meta lacks {key!r} "
                f"(baseline pins {baseline[key]!r})"
            )
            continue
        if current[key] != baseline[key]:
            problems.append(
                f"{name}: meta.{key} mismatch — baseline ran with "
                f"{baseline[key]!r}, this result with {current[key]!r}; "
                f"refusing to diff metrics of different experiments"
            )
    return problems


def compare_metrics(
    name: str,
    current: dict[str, float],
    baseline: dict[str, float],
    tolerance: float,
) -> list[str]:
    """Return a list of human-readable problems (empty when clean)."""
    problems = []
    for key in sorted(baseline):
        if key not in current:
            problems.append(f"{name}: metric {key!r} disappeared")
            continue
        base, now = baseline[key], current[key]
        if base == 0:
            # No scale to be relative to: require an exact match.
            if now != 0:
                problems.append(
                    f"{name}: {key} was 0, now {now} (exact match "
                    f"required for zero baselines)"
                )
            continue
        drift = abs(now - base) / abs(base)
        if drift > tolerance:
            problems.append(
                f"{name}: {key} drifted {drift:+.1%} "
                f"({base} -> {now}, tolerance {tolerance:.0%})"
            )
    for key in sorted(set(current) - set(baseline)):
        # New metrics are fine (a new benchmark facet), just worth noting.
        print(f"note: {name}: new metric {key!r} has no baseline")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=Path,
        default=REPO_ROOT / "benchmarks" / "results",
        help="directory holding freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--baselines", type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory holding committed baseline BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="max allowed relative drift per metric (default 0.2)",
    )
    parser.add_argument(
        "--only", metavar="GLOB", default=None,
        help="check only baselines whose file name matches this glob",
    )
    args = parser.parse_args(argv)

    if args.tolerance < 0:
        parser.error("tolerance must be non-negative")

    baseline_paths = sorted(args.baselines.glob("BENCH_*.json"))
    if args.only is not None:
        baseline_paths = [
            p for p in baseline_paths if fnmatch.fnmatch(p.name, args.only)
        ]
        if not baseline_paths:
            print(
                f"error: no baselines in {args.baselines} match "
                f"{args.only!r}",
                file=sys.stderr,
            )
            return 2
    if not baseline_paths:
        print(f"error: no baselines in {args.baselines}", file=sys.stderr)
        return 2
    if not args.results.is_dir():
        print(f"error: no results directory {args.results}",
              file=sys.stderr)
        return 2

    problems: list[str] = []
    compared = 0
    for baseline_path in baseline_paths:
        result_path = args.results / baseline_path.name
        if not result_path.exists():
            problems.append(
                f"{baseline_path.name}: artifact missing from "
                f"{args.results} (benchmark not run?)"
            )
            continue
        try:
            baseline = load_artifact(baseline_path)
            current = load_artifact(result_path)
        except (ValueError, json.JSONDecodeError) as exc:
            problems.append(str(exc))
            continue
        honesty_problems = check_speedup_honesty(
            baseline["name"], baseline.get("meta", {}),
        )
        if honesty_problems:
            problems.extend(honesty_problems)
            continue
        meta_problems = compare_meta(
            baseline["name"],
            current.get("meta", {}),
            baseline.get("meta", {}),
        )
        if meta_problems:
            problems.extend(meta_problems)
            continue
        problems.extend(compare_metrics(
            baseline["name"], current["metrics"], baseline["metrics"],
            args.tolerance,
        ))
        compared += 1

    baseline_names = {p.name for p in baseline_paths}
    unbaselined = sorted(
        p.name
        for p in args.results.glob("BENCH_*.json")
        if p.name not in baseline_names
        and (args.only is None or fnmatch.fnmatch(p.name, args.only))
    )
    for name in unbaselined:
        problems.append(
            f"{name}: no committed baseline — copy the artifact to "
            f"{args.baselines}/{name} (after checking its metrics are "
            f"deterministic across two runs)"
        )

    if problems:
        print(f"FAIL: {len(problems)} problem(s) across "
              f"{len(baseline_paths)} baseline(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"OK: {compared} artifact(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
