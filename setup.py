"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks PEP 660 editable-wheel
support (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Process Migration in DEMOS/MP' "
        "(Powell & Miller, SOSP 1983)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
