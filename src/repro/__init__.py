"""demos-mp-repro: a reproduction of "Process Migration in DEMOS/MP"
(Powell & Miller, SOSP 1983).

A deterministic discrete-event simulation of the DEMOS/MP operating
system — kernels, links, message delivery, system servers — carrying the
paper's contribution: transparent process migration with forwarding
addresses and lazy link updating.

Quickstart::

    from repro import System, SystemConfig

    system = System(SystemConfig(machines=3))

    def worker(ctx):
        yield ctx.compute(10_000)
        yield ctx.exit()

    pid = system.spawn(worker, machine=0, name="worker")
    ticket = system.migrate(pid, dest=2)
    system.run()
    assert ticket.success
"""

from repro.core.config import SystemConfig
from repro.core.registry import register_program
from repro.core.system import MigrationTicket, System
from repro.errors import ReproError
from repro.kernel.context import ProcessContext
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.kernel import KernelConfig, UndeliverablePolicy
from repro.kernel.links import DataArea, Link, LinkAttribute
from repro.kernel.memory import MemoryImage
from repro.kernel.process_state import ProcessStatus
from repro.net.channel import FaultPlan
from repro.servers.filesystem import FileClient
from repro.stats.migration_cost import MigrationCostRecord
from repro.workloads.results import ResultsBoard

__version__ = "1.0.0"

__all__ = [
    "DataArea",
    "FaultPlan",
    "FileClient",
    "KernelConfig",
    "Link",
    "LinkAttribute",
    "MemoryImage",
    "MigrationCostRecord",
    "MigrationTicket",
    "ProcessAddress",
    "ProcessContext",
    "ProcessId",
    "ProcessStatus",
    "ReproError",
    "ResultsBoard",
    "System",
    "SystemConfig",
    "UndeliverablePolicy",
    "register_program",
    "__version__",
]
