"""Command-line front door: ``python -m repro <command>``.

Commands:

- ``demo``        — run the quickstart scenario and print the narrative;
- ``migrate``     — migrate one process and print the §6 cost ledger;
- ``shell "..."`` — execute command-interpreter lines against a fresh
                    system (e.g. ``python -m repro shell "run compute" ps``);
- ``report``      — run a mixed workload and print the system report.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import SystemConfig
from repro.core.system import System
from repro.servers.common import rpc
from repro.stats.collector import collect_report


def _cmd_demo(args: argparse.Namespace) -> int:
    from examples import quickstart  # pragma: no cover - optional path

    quickstart.main()
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    system = System(SystemConfig(machines=args.machines))

    def worker(ctx):
        while True:
            yield ctx.compute(5_000)

    pid = system.spawn(worker, machine=args.source, name="subject")
    ticket = system.migrate(pid, args.dest)
    system.run(until=5_000_000)
    if not ticket.done or not ticket.success:
        print("migration did not complete", file=sys.stderr)
        return 1
    for key, value in ticket.record.summary().items():
        print(f"{key:>20}: {value}")
    from repro.stats.timeline import migration_timeline, render_timeline

    print("\nprotocol timeline (Figure 3-1):")
    print(render_timeline(migration_timeline(system.tracer)))
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    system = System(SystemConfig(machines=args.machines,
                                 notify_process_manager=True))
    outputs: list[tuple[str, str]] = []

    def operator(ctx):
        for line in args.lines:
            reply = yield from rpc(
                ctx, ctx.bootstrap["command_interpreter"], "command",
                {"line": line}, payload_bytes=16 + len(line),
            )
            outputs.append((line, reply.payload.get("text", "")))
            yield ctx.sleep(5_000)
        yield ctx.exit()

    system.spawn(operator, machine=0, name="operator")
    system.run(until=10_000_000)
    for line, text in outputs:
        print(f"demos$ {line}")
        for row in text.splitlines():
            print(f"  {row}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.workloads.compute import compute_bound
    from repro.workloads.pingpong import echo_server, pinger

    system = System(SystemConfig(machines=args.machines))
    system.spawn(lambda ctx: echo_server(ctx), machine=1, name="echo")
    system.spawn(lambda ctx: pinger(ctx, rounds=5), machine=2, name="ping")
    jobs = [
        system.spawn(lambda ctx: compute_bound(ctx, total=30_000),
                     machine=0, name=f"job-{i}")
        for i in range(3)
    ]
    system.loop.call_at(10_000, lambda: system.migrate(jobs[0], 3))
    system.run(until=2_000_000)
    for line in collect_report(system).lines():
        print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DEMOS/MP process-migration reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    migrate = sub.add_parser("migrate", help="migrate one process")
    migrate.add_argument("--machines", type=int, default=4)
    migrate.add_argument("--source", type=int, default=0)
    migrate.add_argument("--dest", type=int, default=2)
    migrate.set_defaults(func=_cmd_migrate)

    shell = sub.add_parser("shell", help="run command-interpreter lines")
    shell.add_argument("lines", nargs="+")
    shell.add_argument("--machines", type=int, default=4)
    shell.set_defaults(func=_cmd_shell)

    report = sub.add_parser("report", help="run a workload, print a report")
    report.add_argument("--machines", type=int, default=4)
    report.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
