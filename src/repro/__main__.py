"""Command-line front door: ``python -m repro <command>``.

Commands:

- ``demo``        — run the quickstart scenario and print the narrative;
- ``migrate``     — migrate one process and print the §6 cost ledger;
- ``shell "..."`` — execute command-interpreter lines against a fresh
                    system (e.g. ``python -m repro shell "run compute" ps``);
- ``report``      — run a mixed workload and print the system report
                    (``--json`` for a machine-readable metrics snapshot);
- ``chaos``       — run the chaos campaign (scripted crashes,
                    partitions, evacuations, migration storms) and gate
                    the survivor invariants; non-zero exit on violation;
- ``fuzz``        — draw seeded random chaos schedules, run each under
                    live traffic (sharded draws engine-parity checked),
                    shrink violations to replayable repro files
                    (``--out``); ``--replay`` re-runs a repro file;
                    non-zero exit on violation;
- ``slo``         — run the queue-depth vs latency-aware balancer
                    head-to-head under an open-loop burst and print
                    each policy's tail latency (``--json`` for the raw
                    numbers);
- ``trace``       — run a migration scenario and export a Chrome
                    trace-event JSON (``--out``) loadable in Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.config import SystemConfig
from repro.core.system import System
from repro.obs.exporters import metrics_snapshot_dict, write_chrome_trace
from repro.servers.common import rpc
from repro.stats.collector import collect_report


def _cmd_demo(args: argparse.Namespace) -> int:
    from examples import quickstart  # pragma: no cover - optional path

    quickstart.main()
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    system = System(SystemConfig(machines=args.machines))

    def worker(ctx):
        while True:
            yield ctx.compute(5_000)

    pid = system.spawn(worker, machine=args.source, name="subject")
    ticket = system.migrate(pid, args.dest)
    system.run(until=5_000_000)
    if not ticket.done or not ticket.success:
        print("migration did not complete", file=sys.stderr)
        return 1
    for key, value in ticket.record.summary().items():
        print(f"{key:>20}: {value}")
    from repro.stats.timeline import migration_timeline, render_timeline

    print("\nprotocol timeline (Figure 3-1):")
    print(render_timeline(migration_timeline(system.tracer)))
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    system = System(SystemConfig(machines=args.machines,
                                 notify_process_manager=True))
    outputs: list[tuple[str, str]] = []

    def operator(ctx):
        for line in args.lines:
            reply = yield from rpc(
                ctx, ctx.bootstrap["command_interpreter"], "command",
                {"line": line}, payload_bytes=16 + len(line),
            )
            outputs.append((line, reply.payload.get("text", "")))
            yield ctx.sleep(5_000)
        yield ctx.exit()

    system.spawn(operator, machine=0, name="operator")
    system.run(until=10_000_000)
    for line, text in outputs:
        print(f"demos$ {line}")
        for row in text.splitlines():
            print(f"  {row}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a closed-loop workload against a migrating server and report.

    The scenario is deliberately user-facing: N simulated users in a
    request/wait/think loop, with the server they talk to force-migrated
    mid-conversation, so the report's request-latency percentiles carry
    the cost of migration and forwarding — not just the counter totals.
    """
    from repro.workloads.closed_loop import ClientPool, ClosedLoopConfig
    from repro.workloads.compute import compute_bound
    from repro.workloads.pingpong import echo_server

    if args.shards > 1:
        return _report_sharded(args)
    system = System(SystemConfig(machines=args.machines))
    server = system.spawn(lambda ctx: echo_server(ctx), machine=1,
                          name="echo")
    pool = ClientPool(
        system,
        ClosedLoopConfig(clients=args.clients,
                         requests_per_client=args.requests),
    )
    pool.install()
    jobs = [
        system.spawn(lambda ctx: compute_bound(ctx, total=30_000),
                     machine=0, name=f"job-{i}")
        for i in range(3)
    ]
    system.loop.call_at(10_000, lambda: system.migrate(jobs[0], 3))
    # Move the server while the pool is mid-conversation: the latency
    # tail in the report is the §6 migration cost as a user sees it.
    system.loop.call_at(
        30_000, lambda: system.migrate(server, args.machines - 1),
    )
    system.run(until=2_000_000)
    report = collect_report(system)
    if args.json:
        document = metrics_snapshot_dict(
            system.metrics.snapshot(),
            now=system.loop.now,
            extra={"report": report.to_dict()},
        )
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    for line in report.lines():
        print(line)
    return 0


def _report_sharded(args: argparse.Namespace) -> int:
    """The ``report`` scenario on the sharded engine (``--shards N``).

    Machines pair up as echo servers and pingers on a torus; the
    cluster executes in conservative windows across N shards and the
    printed report is the merged per-shard snapshot — identical numbers
    for every shard count.
    """
    from repro.sim.shard import ShardedSystem
    from repro.stats.collector import collect_sharded_report
    from repro.workloads.pingpong import echo_server, pinger
    from repro.workloads.results import ResultsBoard

    system = ShardedSystem(SystemConfig(
        machines=args.machines, topology="torus", shards=args.shards,
        barrier_elision=args.elide,
        backbone_latency=args.backbone_latency,
    ))
    boards = [ResultsBoard() for _ in system.shards]
    count = args.machines
    for m in system.topology.machines:
        system.spawn(
            lambda ctx, _m=m: echo_server(ctx, service_name=f"echo-{_m}"),
            machine=m, name=f"echo-{m}",
        )
        client = (m + 3) % count
        board = boards[system.plan.shard_of(client)]
        system.schedule_spawn(
            30_000 + 500 * m, client,
            lambda ctx, _m=m, _b=board: pinger(
                ctx, service_name=f"echo-{_m}", rounds=args.requests,
                board=_b, key=f"pinger-{_m}",
            ),
            name=f"pinger-{m}",
        )
    system.run(until=2_000_000)
    system.drain()
    report = collect_sharded_report(system)
    if args.json:
        document = metrics_snapshot_dict(
            system.snapshot(),
            now=system.now(),
            extra={"report": report.to_dict(),
                   "shards": len(system.shards)},
        )
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"sharded execution: {len(system.shards)} shards, "
          f"lookahead {system.plan.lookahead}us"
          + (", barrier elision on" if args.elide else ""))
    for line in report.lines():
        print(line)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Queue-depth vs latency-aware migration under an open-loop burst.

    Two hot echo services share machine 3; an arrival-rate burst pushes
    their combined demand past one machine's capacity while the backlog
    queues in their *mailboxes* — invisible to run-queue spread.  The
    same scenario runs once per policy and the printed comparison is the
    paper's open question made concrete: when should the process manager
    move a process, queue depth or user-visible latency?
    """
    from repro.policy.load_balancer import DomainLoadBalancer, SloPolicy
    from repro.workloads.closed_loop import (
        ClientPool,
        LoadShape,
        OpenLoopConfig,
    )
    from repro.workloads.pingpong import echo_server

    def run(latency_aware: bool) -> dict:
        system = System(SystemConfig(machines=4, seed=args.seed))
        for name in ("svc-0", "svc-1"):
            system.spawn(
                lambda ctx, _n=name: echo_server(
                    ctx, service_name=_n, compute_per_request=500
                ),
                machine=3, name=name,
            )
        pool = ClientPool(
            system,
            OpenLoopConfig(
                clients=args.clients,
                mean_interarrival_us=20_000,
                duration=400_000,
                deadline_us=args.slo_us,
                drain_grace_us=150_000,
                shape=LoadShape(
                    kind="burst", burst_start=120_000, burst_end=280_000,
                    burst_factor=3.0, hot_services=2, hot_share=1.0,
                ),
            ),
            services=("svc-0", "svc-1"),
            domains={"svc-0": "all", "svc-1": "all"},
            machines=(0, 1, 2),
            key="slo",
        )
        pool.install()
        slo = None
        if latency_aware:
            slo = SloPolicy(p99_slo_us=args.slo_us, sustain=2,
                            cooldown=100_000, min_window_count=5)
        balancer = DomainLoadBalancer(
            system.domain_view([0, 1, 2, 3]),
            domain="all", interval=25_000, threshold=3, sustain=2,
            cooldown=100_000, victim_strategy="hungriest", slo=slo,
        )
        balancer.install()
        system.loop.call_at(450_000, balancer.stop)
        system.run(max_events=20_000_000)
        digest = collect_report(system).request_latency or {}
        moves = [
            r.time for r in system.tracer
            if r.event in ("balance", "slo_balance")
        ]
        return {
            "policy": "latency-aware" if latency_aware else "queue-depth",
            "migrations": balancer.stats.migrations_started,
            "first_move_at_us": moves[0] if moves else None,
            "p50_us": digest.get("p50_us"),
            "p99_us": digest.get("p99_us"),
            "requests": digest.get("count", 0),
            "replies_in_slo": pool.in_slo,
            "replies_late": pool.late,
            "slo_breach_samples": balancer.stats.slo_breach_samples,
        }

    arms = [run(latency_aware=False), run(latency_aware=True)]
    if args.json:
        print(json.dumps(
            {"slo_us": args.slo_us, "policies": arms},
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"open-loop burst, p99 SLO {args.slo_us}us, "
          f"{args.clients} clients:")
    for arm in arms:
        first = (
            f"first move t={arm['first_move_at_us']}us"
            if arm["first_move_at_us"] is not None
            else "never moved"
        )
        print(
            f"  {arm['policy']:>13}: p99 {arm['p99_us']:>9.0f}us, "
            f"in-SLO {arm['replies_in_slo']}/{arm['requests']}, "
            f"{arm['migrations']} migrations ({first})"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos campaign and gate the survivor invariants."""
    from repro.chaos import SCENARIOS, run_campaign

    result = run_campaign(args.scale, scenarios=args.scenario or None)
    if args.json:
        document = {
            "scale": result.scale,
            "scenarios": (
                args.scenario if args.scenario else list(SCENARIOS)
            ),
            "counters": result.counters,
            "problems": result.problems,
            "ok": result.ok,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for outcome in result.outcomes:
            verdict = "ok" if outcome.ok else "FAILED"
            print(f"[{outcome.name}] {verdict}")
            for event in outcome.ledger:
                print(f"  t={event.at}us {event.kind}: {event.detail}")
            for key, value in sorted(outcome.counters.items()):
                print(f"  {key} = {value}")
        if result.problems:
            print("survivor invariant violations:")
            for problem in result.problems:
                print(f"  {problem}")
        else:
            print("all survivor invariants hold")
    return 0 if result.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Fuzz random chaos schedules; replay repro files."""
    from repro.chaos import replay, run_fuzz

    if args.replay is not None:
        outcome = replay(args.replay, budget=args.budget)
        schedule = outcome.schedule
        if args.json:
            print(json.dumps({
                "replay": args.replay,
                "seed": schedule.seed,
                "index": schedule.index,
                "counters": outcome.counters,
                "problems": outcome.problems,
                "ok": outcome.ok,
            }, indent=2, sort_keys=True))
        else:
            verdict = "ok" if outcome.ok else "VIOLATION"
            print(f"[replay {args.replay}] {verdict} "
                  f"(seed {schedule.seed}, index {schedule.index})")
            for problem in outcome.problems:
                print(f"  {problem}")
        return 0 if outcome.ok else 1

    report = run_fuzz(
        seed=args.seed, runs=args.runs, budget=args.budget,
        out_dir=args.out,
    )
    if args.json:
        print(json.dumps({
            "seed": report.seed,
            "runs": report.runs,
            "digests": report.digests,
            "violations": [
                {
                    "index": outcome.schedule.index,
                    "problems": outcome.problems,
                }
                for outcome in report.violations
            ],
            "repro_paths": report.repro_paths,
            "ok": report.ok,
        }, indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(f"fuzz: seed {report.seed}, {report.runs} schedules, "
          f"{len(report.violations)} violation(s)")
    for outcome in report.violations:
        print(f"  schedule {outcome.schedule.index}:")
        for problem in outcome.problems:
            print(f"    {problem}")
    for path in report.repro_paths:
        print(f"  repro written: {path}")
    if report.ok:
        print("all schedules held the survivor invariants")
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one migration (plus a stale-link probe) and export the trace."""
    from repro.kernel.ids import ProcessAddress
    from repro.kernel.messages import MessageKind

    system = System(SystemConfig(machines=args.machines,
                                 boot_servers=False))

    def parked(ctx):
        while True:
            yield ctx.receive()

    pid = system.spawn(parked, machine=args.source, name="subject")
    ticket = system.migrate(pid, args.dest)
    system.run(max_events=1_000_000)
    if not ticket.done or not ticket.success:
        print("migration did not complete", file=sys.stderr)
        return 1
    # A probe on the stale address exercises the forwarding path, so the
    # exported span carries FORWARD_HOP child events (Figure 4-1).
    probe_from = next(
        (m for m in range(args.machines)
         if m not in (args.source, args.dest)),
        None,
    )
    if probe_from is not None:
        system.kernel(probe_from).send_to_process(
            ProcessAddress(pid, args.source), "probe", {},
            kind=MessageKind.USER,
        )
        system.run(max_events=1_000_000)

    span_records = ("migrate", "forward", "linkupd")
    path = write_chrome_trace(
        args.out,
        system.spans.all_spans(),
        records=(
            r for r in system.tracer if r.category not in span_records
        ),
        metadata={"machines": args.machines, "pid": str(pid)},
        metrics=system.metrics.snapshot(),
    )
    for span in system.spans.all_spans():
        print(
            f"{span.name}: {span.status}, steps {span.steps()}, "
            f"{len(span.child_events())} child events, "
            f"duration {span.duration}us"
        )
    print(f"wrote Chrome trace to {path} "
          f"(load it at https://ui.perfetto.dev)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DEMOS/MP process-migration reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    migrate = sub.add_parser("migrate", help="migrate one process")
    migrate.add_argument("--machines", type=int, default=4)
    migrate.add_argument("--source", type=int, default=0)
    migrate.add_argument("--dest", type=int, default=2)
    migrate.set_defaults(func=_cmd_migrate)

    shell = sub.add_parser("shell", help="run command-interpreter lines")
    shell.add_argument("lines", nargs="+")
    shell.add_argument("--machines", type=int, default=4)
    shell.set_defaults(func=_cmd_shell)

    report = sub.add_parser("report", help="run a workload, print a report")
    report.add_argument("--machines", type=int, default=4)
    report.add_argument(
        "--clients", type=int, default=4,
        help="closed-loop clients driving the echo server (default: 4)",
    )
    report.add_argument(
        "--requests", type=int, default=10,
        help="requests each client completes (default: 10)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable metrics snapshot instead of text",
    )
    report.add_argument(
        "--shards", type=int, default=1,
        help="run the cluster across N parallel execution shards "
             "(>1 selects the sharded engine on a torus; default: 1)",
    )
    report.add_argument(
        "--elide", action="store_true",
        help="with --shards: decouple barrier cadence from the window "
             "grid (pairs rendezvous only every min-pair-latency)",
    )
    report.add_argument(
        "--backbone-latency", type=int, default=None,
        help="with --shards: slower latency (us) for torus backbone "
             "wires, widening cross-shard rendezvous periods",
    )
    report.set_defaults(func=_cmd_report)

    slo = sub.add_parser(
        "slo", help="queue-depth vs latency-aware balancing head-to-head",
    )
    slo.add_argument(
        "--clients", type=int, default=24,
        help="open-loop clients driving the hot services (default: 24)",
    )
    slo.add_argument(
        "--slo-us", type=int, default=10_000,
        help="p99 objective in microseconds (default: 10000)",
    )
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument(
        "--json", action="store_true",
        help="emit both policies' numbers as JSON",
    )
    slo.set_defaults(func=_cmd_slo)

    chaos = sub.add_parser(
        "chaos", help="run the chaos campaign, gate survivor invariants",
    )
    chaos.add_argument(
        "--scale", choices=("smoke", "full"), default="smoke",
        help="campaign size (default: smoke, the CI tier)",
    )
    chaos.add_argument(
        "--scenario", action="append",
        choices=("crash", "partition", "evacuate", "fileserver_crash",
                 "storm_parity", "crash_parity"),
        help="run only this scenario (repeatable; default: all)",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="emit counters, ledger sizes and problems as JSON",
    )
    chaos.set_defaults(func=_cmd_chaos)

    fuzz = sub.add_parser(
        "fuzz", help="fuzz random chaos schedules, gate every invariant",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="root seed; schedule i under a seed is stable forever "
             "(default: 0)",
    )
    fuzz.add_argument(
        "--runs", type=int, default=10,
        help="number of schedules to draw and run (default: 10)",
    )
    fuzz.add_argument(
        "--budget", type=int, default=2_000_000,
        help="event budget per classic run; exhausting it is itself a "
             "violation (default: 2000000)",
    )
    fuzz.add_argument(
        "--out", default=None,
        help="directory for shrunk repro files of violating schedules",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="REPRO",
        help="re-run one repro file instead of fuzzing",
    )
    fuzz.add_argument(
        "--json", action="store_true",
        help="emit digests, violations and repro paths as JSON",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    trace = sub.add_parser(
        "trace", help="run a migration, export Chrome trace-event JSON",
    )
    trace.add_argument("--machines", type=int, default=4)
    trace.add_argument("--source", type=int, default=0)
    trace.add_argument("--dest", type=int, default=2)
    trace.add_argument(
        "--out", default="trace.json",
        help="path for the trace-event JSON (default: trace.json)",
    )
    trace.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
