"""Chaos campaign engine: scripted failure scenarios with deterministic
survivor-invariant gates.

The paper's hardest demo is migrating a live file server mid-I/O; the
literature on process migration singles out *failure transparency* —
message delivery and state integrity across crashes and partitions — as
the property separating toy migration from deployable migration.  This
package composes the repo's failure primitives (fail-stop crashes via
:class:`~repro.policy.recovery.CrashRecoveryManager`, lossy wires via
:class:`~repro.net.channel.FaultPlan`, network partitions via
:meth:`~repro.net.network.Network.partition`, forced migration storms,
machine evacuation) into declarative, seeded, fully deterministic
campaigns, runs a live workload throughout, and gates survivor
invariants at quiescence instead of merely logging them.

See ``docs/CHAOS.md`` for the scenario format and the invariant list.
"""

from repro.chaos.campaign import (
    SCENARIOS,
    CampaignResult,
    ScenarioOutcome,
    ledger_digest,
    run_campaign,
)
from repro.chaos.engine import ChaosEngine, FaultEvent
from repro.chaos.fuzz import (
    ActionSpec,
    FuzzOutcome,
    FuzzReport,
    FuzzSchedule,
    generate_schedule,
    load_repro,
    replay,
    run_fuzz,
    run_schedule,
    shrink,
    validate_schedule,
    write_repro,
)
from repro.chaos.invariants import (
    check_chain_collapse,
    check_exactly_once,
    check_memory_accounting,
    check_no_stranded_forwarding,
    check_quiescence,
    check_recovery_state,
    survivor_invariants,
)
from repro.chaos.scenario import (
    ChaosScenario,
    CrashMachine,
    Evacuation,
    FlakyLinks,
    MigrationStorm,
    Move,
    Partition,
)

__all__ = [
    "SCENARIOS",
    "ActionSpec",
    "CampaignResult",
    "ChaosEngine",
    "ChaosScenario",
    "CrashMachine",
    "Evacuation",
    "FaultEvent",
    "FlakyLinks",
    "FuzzOutcome",
    "FuzzReport",
    "FuzzSchedule",
    "MigrationStorm",
    "Move",
    "Partition",
    "ScenarioOutcome",
    "check_chain_collapse",
    "check_exactly_once",
    "check_memory_accounting",
    "check_no_stranded_forwarding",
    "check_quiescence",
    "check_recovery_state",
    "generate_schedule",
    "ledger_digest",
    "load_repro",
    "replay",
    "run_campaign",
    "run_fuzz",
    "run_schedule",
    "shrink",
    "survivor_invariants",
    "validate_schedule",
    "write_repro",
]
