"""Chaos campaigns: scripted failure scenarios with live workloads.

A campaign is a fixed set of scenarios, each run on its own freshly
built system with a closed-loop workload alive throughout, gated at
quiescence by the survivor invariants (:mod:`repro.chaos.invariants`).
Everything is seeded and simulated-time based, so a campaign's gated
counters are byte-identical run to run — the property the e12 benchmark
asserts by literally running the smoke campaign twice.

Scenarios:

- ``crash`` — a migration storm relocates the echo servers, then two
  scripted fail-stop crashes hit machines the storm just moved servers
  onto; everything is protected, so the crashes have survivors that
  keep answering from the executor machines.
- ``partition`` — the mesh splits into two halves mid-workload and
  heals; a lossy/jittery window follows.  The reliable transport's
  retransmissions carry every request across the cut exactly once.
- ``evacuate`` — a machine is drained (maintenance): its residents
  migrate off, inbound migrations are refused, and the scheduled kill
  finds the machine empty — zero casualties, zero recoveries.
- ``fileserver_crash`` — the paper's hardest demo inverted: instead of
  migrating the file server mid-I/O, its machine fail-stops mid-request
  under a mixed echo + verified file workload; stable storage recovers
  it on the executor and every read-after-write stream finishes with
  zero corruption.
- ``storm_parity`` — a forced migration storm over a lossy torus, run
  under ``shards=1`` and ``shards=N`` on the serial executor; every
  merged counter and the fault ledger must be byte-identical.
- ``crash_parity`` — storms plus grid-aligned fail-stop crashes, run
  three ways (classic engine, ``shards=1``, ``shards=2``; the full
  scale adds ``shards=4``): barrier-aligned crash recovery must leave
  every merged counter and the fault ledger byte-identical across all
  engines.

Each scenario ends the same way: drain to quiescence, one forwarding
GC sweep, a two-round probe pinger per service (the behavioral §4
chain-collapse gate: the probe's *second* request forwards at most
once), then the survivor invariants.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.chaos.engine import ChaosEngine, FaultEvent
from repro.chaos.invariants import survivor_invariants
from repro.chaos.scenario import (
    ChaosScenario,
    CrashMachine,
    Evacuation,
    FlakyLinks,
    MigrationStorm,
    Move,
    Partition,
)
from repro.core.config import SystemConfig
from repro.core.system import System
from repro.errors import ConfigError
from repro.net.channel import FaultPlan
from repro.policy.gc import ForwardingSweeper
from repro.policy.recovery import CrashRecoveryManager
from repro.sim.shard import ShardedSystem
from repro.workloads.closed_loop import ClientPool, ClosedLoopConfig
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard

#: campaign scales (the smoke tier is the CI gate)
SCALES = ("smoke", "full")

#: events a drain is allowed to fire before we call it a hang
MAX_EVENTS = 50_000_000


@dataclass
class ScenarioOutcome:
    """One scenario's deterministic results."""

    name: str
    counters: dict[str, int] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)
    ledger: list[FaultEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    scale: str
    outcomes: list[ScenarioOutcome]

    @property
    def counters(self) -> dict[str, int]:
        """Every gated counter, flattened as ``<scenario>.<name>``."""
        flat: dict[str, int] = {}
        for outcome in self.outcomes:
            for key, value in sorted(outcome.counters.items()):
                flat[f"{outcome.name}.{key}"] = value
        return flat

    @property
    def problems(self) -> list[str]:
        """Every invariant violation, prefixed by scenario."""
        return [
            f"[{outcome.name}] {problem}"
            for outcome in self.outcomes
            for problem in outcome.problems
        ]

    @property
    def ok(self) -> bool:
        return not self.problems


def ledger_digest(ledger: list[FaultEvent]) -> int:
    """A stable 32-bit digest of a fault ledger (gateable as a counter)."""
    text = "\n".join(
        f"{event.at} {event.kind} {event.detail}" for event in ledger
    )
    return int(hashlib.sha256(text.encode()).hexdigest()[:8], 16)


# ---------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------


def _drain(system: System) -> None:
    fired = system.run(max_events=MAX_EVENTS)
    if fired >= MAX_EVENTS:
        raise RuntimeError("chaos scenario did not quiesce")


def _spawn_servers(
    system: System | ShardedSystem,
    placements: list[int],
    prefix: str,
) -> dict[str, Any]:
    """One echo server per placement; returns service name -> pid."""
    pids = {}
    for index, machine in enumerate(placements):
        name = f"{prefix}-{index}"
        pids[name] = system.spawn(
            lambda ctx, _n=name: echo_server(ctx, service_name=_n),
            machine=machine,
            name=name,
        )
    return pids


def _probe_chain_collapse(
    system: System,
    services: list[str],
    outcome: ScenarioOutcome,
    machine: int = 0,
) -> None:
    """The behavioral §4 gate, run after quiescence.

    A fresh client's switchboard lookup returns the service's original
    registered address, so its *first* request may chase the whole
    forwarding chain; the reply patches the link, and the *second*
    request must forward at most once.
    """
    board = ResultsBoard()
    for service in services:
        system.spawn(
            lambda ctx, _s=service: pinger(
                ctx, service_name=_s, rounds=2, board=board, key=_s,
            ),
            machine=machine,
            name=f"probe-{service}",
        )
    _drain(system)
    round2_forwards = 0
    for service in services:
        transcript = board.only(f"{service}-summary")["transcript"]
        hops = transcript[1]["request_forwarded"]
        round2_forwards += hops
        if hops > 1:
            outcome.problems.append(
                f"probe of {service}: second request forwarded {hops} "
                f"times (chain did not collapse)"
            )
    outcome.counters["probe_round2_forwards"] = round2_forwards


def _finish_classic(
    system: System,
    engine: ChaosEngine,
    pool: ClientPool,
    services: list[str],
    outcome: ScenarioOutcome,
) -> None:
    """Drain, sweep, probe, gate — the common scenario epilogue."""
    _drain(system)
    ForwardingSweeper(system).sweep_now()
    _probe_chain_collapse(system, services, outcome)
    outcome.ledger = engine.ledger()
    outcome.problems += survivor_invariants(
        system, pool=pool, recovery=engine.recovery,
    )

    snapshot = system.metrics.snapshot()
    counters = outcome.counters
    counters["requests_completed"] = int(
        snapshot.total("workload.requests_completed")
    )
    counters["replies_forwarded"] = int(
        snapshot.total("workload.replies_forwarded")
    )
    counters["reply_mismatches"] = int(
        snapshot.total("workload.reply_mismatches")
    )
    counters["chaos_faults"] = int(snapshot.total("chaos.faults"))
    for kind, count in sorted(engine.counts.items()):
        counters[f"faults.{kind}"] = count
    counters["recovered"] = sum(
        len(r.recovered) for r in engine.crash_reports
    )
    counters["casualties"] = sum(
        len(r.casualties) for r in engine.crash_reports
    )
    counters["migrations_aborted"] = sum(
        r.migrations_aborted for r in engine.crash_reports
    )
    counters["forwarding_entries"] = sum(
        len(k.forwarding) for k in system.kernels if not k.crashed
    )
    counters["messages_forwarded"] = sum(
        k.stats.messages_forwarded for k in system.kernels
    )
    counters["link_updates_applied"] = sum(
        k.stats.link_updates_applied for k in system.kernels
    )
    counters["ledger_events"] = len(outcome.ledger)
    counters["ledger_digest"] = ledger_digest(outcome.ledger)


# ---------------------------------------------------------------------
# Scenario: crash (migration storm + scripted fail-stop crashes)
# ---------------------------------------------------------------------


def run_crash_scenario(scale: str = "smoke") -> ScenarioOutcome:
    """Servers migrate under load, then the machines they landed on
    fail; stable storage recovers everything onto executors."""
    outcome = ScenarioOutcome("crash")
    if scale == "full":
        machines, placements = 12, [2, 3, 6, 7]
        clients, requests = 24, 10
        storm_at, crashes = 45_000, (
            CrashMachine(at=60_000, machine=5, executor=4),
            CrashMachine(at=90_000, machine=9, executor=8),
        )
        dests = [5, 9, 10, 11]
    else:
        machines, placements = 8, [2, 3]
        clients, requests = 8, 6
        storm_at, crashes = 15_000, (
            CrashMachine(at=25_000, machine=5, executor=4),
        )
        dests = [5, 6]
    system = System(SystemConfig(machines=machines, seed=1983))
    pids = _spawn_servers(system, placements, "chaos-echo")
    services = list(pids)
    pool = ClientPool(
        system,
        ClosedLoopConfig(
            clients=clients,
            requests_per_client=requests,
            mean_think_us=8_000,
            start_at=2_000,
        ),
        services=services,
    )
    pool.install()
    moves = tuple(
        Move(pid=pids[name], home=placements[i], dest=dests[i])
        for i, name in enumerate(services)
    )
    scenario = ChaosScenario(
        "crash", (MigrationStorm(at=storm_at, moves=moves),) + crashes,
    )
    engine = ChaosEngine(system, scenario)
    engine.install()
    _finish_classic(system, engine, pool, services, outcome)
    if outcome.counters["recovered"] < 1:
        outcome.problems.append("crashes recovered nothing — the "
                                "scenario missed the workload")
    if outcome.counters["replies_forwarded"] < 1:
        outcome.problems.append("no reply crossed a forwarding chain — "
                                "the storm missed the workload")
    return outcome


# ---------------------------------------------------------------------
# Scenario: partition (split brain that heals, then flaky links)
# ---------------------------------------------------------------------


def run_partition_scenario(scale: str = "smoke") -> ScenarioOutcome:
    """The mesh splits in half mid-workload, heals, then rides out a
    lossy window; retransmission carries every request exactly once."""
    outcome = ScenarioOutcome("partition")
    machines = 8
    clients, requests = (16, 8) if scale == "full" else (8, 4)
    system = System(SystemConfig(machines=machines, seed=1984))
    pids = _spawn_servers(system, [2, 3], "part-echo")
    services = list(pids)
    pool = ClientPool(
        system,
        ClosedLoopConfig(
            clients=clients,
            requests_per_client=requests,
            mean_think_us=8_000,
            start_at=2_000,
        ),
        services=services,
    )
    pool.install()
    scenario = ChaosScenario(
        "partition",
        (
            Partition(
                at=20_000, heal_at=45_000,
                group_a=(0, 1, 2, 3), group_b=(4, 5, 6, 7),
            ),
            FlakyLinks(
                at=50_000, until=90_000,
                faults=FaultPlan(drop_probability=0.05, max_jitter=300),
            ),
        ),
    )
    engine = ChaosEngine(system, scenario)
    engine.install()
    _finish_classic(system, engine, pool, services, outcome)
    if outcome.counters["casualties"] or outcome.counters["recovered"]:
        outcome.problems.append(
            "a pure partition scenario triggered crash recovery"
        )
    return outcome


# ---------------------------------------------------------------------
# Scenario: evacuate (drain via migration, then maintenance kill)
# ---------------------------------------------------------------------


def run_evacuation_scenario(scale: str = "smoke") -> ScenarioOutcome:
    """Scheduled maintenance: drain the machine through migration
    first, refuse inbound moves while draining, then kill it.  A clean
    evacuation has zero casualties and zero recoveries."""
    outcome = ScenarioOutcome("evacuate")
    machines = 8
    clients, requests = (16, 8) if scale == "full" else (6, 4)
    system = System(SystemConfig(machines=machines, seed=1985))
    pids = _spawn_servers(system, [3, 4], "evac-echo")
    services = list(pids)
    pool = ClientPool(
        system,
        ClosedLoopConfig(
            clients=clients,
            requests_per_client=requests,
            mean_think_us=8_000,
            start_at=2_000,
        ),
        services=services,
    )
    pool.install()
    scenario = ChaosScenario(
        "evacuate",
        (
            Evacuation(
                drain_at=30_000, machine=3, kill_at=120_000,
                executor=2, dests=(2, 4, 5),
            ),
            # A forced move INTO the draining machine: must be refused.
            MigrationStorm(
                at=40_000,
                moves=(Move(pid=pids[services[1]], home=4, dest=3),),
            ),
        ),
    )
    engine = ChaosEngine(system, scenario)
    engine.install()
    _finish_classic(system, engine, pool, services, outcome)
    refusals = len(
        system.tracer.records("migrate", "refuse-draining")
    )
    outcome.counters["draining_refusals"] = refusals
    if refusals < 1:
        outcome.problems.append(
            "no migration was refused while draining — the maintenance "
            "flag never engaged"
        )
    if outcome.counters["casualties"]:
        outcome.problems.append(
            f"evacuation kill had "
            f"{outcome.counters['casualties']} casualt(y/ies)"
        )
    if outcome.counters["recovered"]:
        outcome.problems.append(
            f"evacuation kill still recovered "
            f"{outcome.counters['recovered']} process(es) — the drain "
            f"left residents behind"
        )
    return outcome


# ---------------------------------------------------------------------
# Scenario: fileserver_crash (fail-stop the file server mid-request)
# ---------------------------------------------------------------------


def run_fileserver_crash_scenario(scale: str = "smoke") -> ScenarioOutcome:
    """The file server's machine fail-stops while clients are mid-I/O.

    An echo pool and verified read-after-write file streams run
    together; the crash lands inside the file streams, so requests in
    flight to the file server cross the failure.  Stable storage
    recovers the server (files and open handles are process state) on
    the executor, the transport redirect carries the streams there, and
    the gate is the paper's: zero corruption, zero lost operations.
    """
    from repro.workloads.file_clients import file_io_client

    outcome = ScenarioOutcome("fileserver_crash")
    machines = 8
    if scale == "full":
        clients, requests = 12, 8
        file_clients, operations = 4, 8
    else:
        clients, requests = 6, 4
        file_clients, operations = 3, 6
    system = System(SystemConfig(machines=machines, seed=1987))
    fs_machine = system.config.file_system_machine
    pids = _spawn_servers(system, [3, 4], "fsx-echo")
    services = list(pids)
    # No workload client may live on the crash victim: fail-stop
    # abandons the dead machine's unacked sends, so a recovered mid-RPC
    # client could wait forever on a request that died with the machine.
    pool = ClientPool(
        system,
        ClosedLoopConfig(
            clients=clients,
            requests_per_client=requests,
            mean_think_us=8_000,
            start_at=2_000,
        ),
        services=services,
        machines=tuple(
            m for m in range(machines) if m != fs_machine
        ),
    )
    pool.install()
    fboard = ResultsBoard()
    for tag in range(file_clients):
        system.loop.call_at(
            4_000 + 1_000 * tag,
            lambda _t=tag: system.spawn(
                lambda ctx, _g=_t: file_io_client(
                    ctx, tag=_g, operations=operations,
                    gap=2_000, board=fboard, key=f"file-{_g}",
                ),
                machine=5 + (_t % (machines - 5)),
                name=f"file-client-{_t}",
            ),
        )
    scenario = ChaosScenario(
        "fileserver_crash",
        (CrashMachine(at=20_000, machine=fs_machine, executor=2),),
    )
    engine = ChaosEngine(system, scenario)
    engine.install()
    _finish_classic(system, engine, pool, services, outcome)

    streams_done = 0
    file_errors = 0
    for tag in range(file_clients):
        for summary in fboard.get(f"file-{tag}"):
            streams_done += 1
            file_errors += len(summary["errors"])
            if summary["errors"]:
                outcome.problems.append(
                    f"file client {tag} saw errors: "
                    f"{summary['errors']}"
                )
            if len(summary["latencies"]) != operations:
                outcome.problems.append(
                    f"file client {tag} lost operations: "
                    f"{len(summary['latencies'])}/{operations}"
                )
    outcome.counters["file_streams_done"] = streams_done
    outcome.counters["file_errors"] = file_errors
    if streams_done != file_clients:
        outcome.problems.append(
            f"{streams_done}/{file_clients} file streams completed"
        )
    if outcome.counters["recovered"] < 1:
        outcome.problems.append(
            "the file server was not recovered — the crash missed it"
        )
    return outcome


# ---------------------------------------------------------------------
# Scenario: storm parity (sharded vs serial, byte-identical)
# ---------------------------------------------------------------------


def _run_storm_once(
    scale: str, shards: int
) -> tuple[dict[str, int], list[FaultEvent], list[str], Any]:
    # Wave spacing: moving a process image over a 1,000 bytes/ms wire
    # takes tens of milliseconds, so consecutive waves must be farther
    # apart than one migration or the next wave finds its victim still
    # IN_MIGRATION and (deterministically) skips it.
    if scale == "full":
        machines = 16
        pingers_per_server, rounds = 2, 10
        storm_times = (18_000, 85_000, 152_000, 219_000)
    else:
        machines = 8
        pingers_per_server, rounds = 1, 8
        storm_times = (18_000, 100_000)
    system = ShardedSystem(SystemConfig(
        machines=machines,
        topology="torus",
        latency=1_000,
        shards=shards,
        seed=1986,
        faults=FaultPlan(drop_probability=0.02, max_jitter=300),
        trace_categories=(),
        metrics_enabled=False,
    ))
    boards = [ResultsBoard() for _ in system.shards]
    pids = {}
    for m in range(machines):
        name = f"storm-echo-{m}"
        pids[m] = system.spawn(
            lambda ctx, _n=name: echo_server(ctx, service_name=_n),
            machine=m, name=name,
        )
    expected_pings = 0
    for m in range(machines):
        for k in range(pingers_per_server):
            client = (m + 1 + 3 * k) % machines
            board = boards[system.plan.shard_of(client)]
            system.schedule_spawn(
                10_000 + 500 * (m * pingers_per_server + k),
                client,
                lambda ctx, _m=m, _b=board: pinger(
                    ctx, service_name=f"storm-echo-{_m}", rounds=rounds,
                    gap=8_000, board=_b, key=f"ping-{_m}",
                ),
                name="pinger",
            )
            expected_pings += 1
    # Each storm wave pushes every server half the torus away — always
    # across a shard boundary when shards > 1.
    half = machines // 2
    storms = tuple(
        MigrationStorm(
            at=at,
            moves=tuple(
                Move(pid=pids[m], home=(m + wave * half) % machines,
                     dest=(m + (wave + 1) * half) % machines)
                for m in range(machines)
            ),
        )
        for wave, at in enumerate(storm_times)
    )
    scenario = ChaosScenario("storm_parity", storms)
    engine = ChaosEngine(system, scenario)
    engine.install()
    system.drain()

    kernels = system.kernels_in_machine_order()
    counters = {
        "processes_spawned": sum(
            k.stats.processes_spawned for k in kernels
        ),
        "messages_delivered": sum(
            k.stats.messages_delivered for k in kernels
        ),
        "messages_forwarded": sum(
            k.stats.messages_forwarded for k in kernels
        ),
        "link_updates_applied": sum(
            k.stats.link_updates_applied for k in kernels
        ),
        "forwarding_entries": sum(len(k.forwarding) for k in kernels),
        "packets_sent": sum(
            shard.network.stats.packets_sent for shard in system.shards
        ),
    }
    for kind, count in sorted(engine.counts.items()):
        counters[f"faults.{kind}"] = count
    ledger = engine.ledger()
    counters["ledger_events"] = len(ledger)
    counters["ledger_digest"] = ledger_digest(ledger)

    problems = survivor_invariants(system)
    completed = 0
    for board in boards:
        for m in range(machines):
            for summary in board.get(f"ping-{m}-summary"):
                transcript = summary["transcript"]
                completed += 1
                echoes = [t["echo"] for t in transcript]
                if echoes != [{"round": r} for r in range(rounds)]:
                    problems.append(
                        f"pinger of storm-echo-{m} saw replies "
                        f"{echoes} — not exactly-once in order"
                    )
    counters["pingers_done"] = completed
    if completed != expected_pings:
        problems.append(
            f"{completed}/{expected_pings} pingers completed"
        )
    return counters, ledger, problems, system


def run_storm_parity_scenario(scale: str = "smoke") -> ScenarioOutcome:
    """The shard-safe storm, run with shards=1 and shards=N on the
    serial executor: gated counters and fault ledger must match byte
    for byte."""
    outcome = ScenarioOutcome("storm_parity")
    shards = 4 if scale == "full" else 2
    reference, ref_ledger, ref_problems, _ = _run_storm_once(scale, 1)
    sharded, sh_ledger, sh_problems, _ = _run_storm_once(scale, shards)
    outcome.counters = dict(reference)
    outcome.counters["shards"] = shards
    outcome.ledger = ref_ledger
    outcome.problems += ref_problems
    outcome.problems += [f"(shards={shards}) {p}" for p in sh_problems]
    if sharded != reference:
        diverged = {
            key: (reference.get(key), sharded.get(key))
            for key in set(reference) | set(sharded)
            if reference.get(key) != sharded.get(key)
        }
        outcome.problems.append(
            f"shards=1 vs shards={shards} counters diverged: {diverged}"
        )
    if sh_ledger != ref_ledger:
        outcome.problems.append(
            f"shards=1 vs shards={shards} fault ledgers diverged"
        )
    if reference["messages_forwarded"] < 1:
        outcome.problems.append(
            "no message crossed a forwarding address — the storm "
            "missed the live traffic"
        )
    return outcome


# ---------------------------------------------------------------------
# Scenario: crash parity (fail-stop crashes, classic vs sharded)
# ---------------------------------------------------------------------


def _run_crash_parity_once(
    scale: str, shards: int
) -> tuple[dict[str, int], list[FaultEvent], list[str]]:
    """One engine variant of the crash-parity scenario.

    ``shards=0`` builds the classic single-loop :class:`System`;
    anything else builds a :class:`ShardedSystem`.  The schedule is a
    storm that pushes servers onto doomed machines, then grid-aligned
    fail-stop crashes of those machines — the barrier-action path on
    the sharded engine, the ``loop.call_at`` path on the classic one.
    """
    # The storm's migrations take ~27ms each (process image over a
    # 1,000 bytes/ms wire); the crashes wait until the servers have
    # demonstrably landed on the doomed machines.
    if scale == "full":
        machines, rounds = 16, 10
        placements = [2, 3, 6, 7]
        dests = [5, 9, 10, 11]
        crashes = ((56_000, 5, 4), (72_000, 9, 8))
    else:
        machines, rounds = 8, 8
        placements = [2, 3]
        dests = [5, 6]
        crashes = ((56_000, 5, 4),)
    config = SystemConfig(
        machines=machines,
        topology="torus",
        latency=1_000,
        shards=shards or 1,
        seed=1988,
        trace_categories=(),
        metrics_enabled=False,
    )
    system: Any = ShardedSystem(config) if shards else System(config)
    pids = _spawn_servers(system, placements, "cpar-echo")
    services = list(pids)
    engine = ChaosEngine(system, ChaosScenario("crash_parity", (
        MigrationStorm(at=18_037, moves=tuple(
            Move(pid=pids[name], home=placements[i], dest=dests[i])
            for i, name in enumerate(services)
        )),
    ) + tuple(
        CrashMachine(at=at, machine=machine, executor=executor)
        for at, machine, executor in crashes
    )))
    engine.install()

    boards = (
        [ResultsBoard() for _ in system.shards]
        if shards else [ResultsBoard()]
    )
    # Pinger clients live on the low machines — never on a crash victim
    # (fail-stop abandons the victim's unacked sends; see the fuzzer's
    # generator for the same rule).
    for j, service in enumerate(services):
        client = j % 4
        at = 10_037 + 500 * j
        if shards:
            board = boards[system.plan.shard_of(client)]
        else:
            board = boards[0]

        def spawn(_s=service, _j=j, _c=client, _b=board):
            system.spawn(
                lambda ctx: pinger(
                    ctx, service_name=_s, rounds=rounds, gap=8_000,
                    board=_b, key=f"ping-{_j}",
                ),
                machine=_c, name=f"pinger-{_j}",
            )

        if shards:
            system.call_at(at, client, spawn)
        else:
            system.loop.call_at(at, spawn)

    problems: list[str] = []
    if shards:
        system.drain()
        kernels = system.kernels_in_machine_order()
        packets = sum(
            shard.network.stats.packets_sent for shard in system.shards
        )
    else:
        fired = system.run(max_events=MAX_EVENTS)
        if fired >= MAX_EVENTS:
            raise RuntimeError("crash-parity run did not quiesce")
        kernels = list(system.kernels)
        packets = system.network.stats.packets_sent

    counters = {
        "processes_spawned": sum(
            k.stats.processes_spawned for k in kernels
        ),
        "messages_delivered": sum(
            k.stats.messages_delivered for k in kernels
        ),
        "messages_forwarded": sum(
            k.stats.messages_forwarded for k in kernels
        ),
        "link_updates_applied": sum(
            k.stats.link_updates_applied for k in kernels
        ),
        "forwarding_entries": sum(
            len(k.forwarding) for k in kernels if not k.crashed
        ),
        "packets_sent": packets,
        "recovered": sum(
            len(r.recovered) for r in engine.crash_reports
        ),
        "casualties": sum(
            len(r.casualties) for r in engine.crash_reports
        ),
    }
    for kind, count in sorted(engine.counts.items()):
        counters[f"faults.{kind}"] = count
    ledger = engine.ledger()
    counters["ledger_events"] = len(ledger)
    counters["ledger_digest"] = ledger_digest(ledger)

    problems += survivor_invariants(system, recovery=engine.recovery)
    completed = 0
    for board in boards:
        for j in range(len(services)):
            for summary in board.get(f"ping-{j}-summary"):
                completed += 1
                echoes = [t["echo"] for t in summary["transcript"]]
                if echoes != [{"round": r} for r in range(rounds)]:
                    problems.append(
                        f"pinger {j} saw replies {echoes} — not "
                        f"exactly-once in order"
                    )
    counters["pingers_done"] = completed
    if completed != len(services):
        problems.append(f"{completed}/{len(services)} pingers completed")
    return counters, ledger, problems


def run_crash_parity_scenario(scale: str = "smoke") -> ScenarioOutcome:
    """Fail-stop crashes under traffic, byte-identical on every engine.

    The classic engine interprets crash times with ``loop.call_at``;
    the sharded engine fires them as barrier actions between windows.
    Both must produce the same counters and the same fault ledger for
    every shard count — the sharded-crash parity argument, gated.
    """
    outcome = ScenarioOutcome("crash_parity")
    variants = (0, 1, 2, 4) if scale == "full" else (0, 1, 2)
    reference: dict[str, int] = {}
    ref_ledger: list[FaultEvent] = []
    for shards in variants:
        label = f"shards={shards}" if shards else "classic"
        counters, ledger, problems = _run_crash_parity_once(scale, shards)
        outcome.problems += [f"({label}) {p}" for p in problems]
        if not shards:
            reference, ref_ledger = counters, ledger
            outcome.counters = dict(counters)
            outcome.counters["variants"] = len(variants)
            outcome.ledger = ledger
            continue
        if counters != reference:
            diverged = {
                key: (reference.get(key), counters.get(key))
                for key in set(reference) | set(counters)
                if reference.get(key) != counters.get(key)
            }
            outcome.problems.append(
                f"classic vs {label} counters diverged: {diverged}"
            )
        if ledger != ref_ledger:
            outcome.problems.append(
                f"classic vs {label} fault ledgers diverged"
            )
    if outcome.counters.get("recovered", 0) < 1:
        outcome.problems.append(
            "crashes recovered nothing — the storm missed the victims"
        )
    return outcome


# ---------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------

SCENARIOS = {
    "crash": run_crash_scenario,
    "partition": run_partition_scenario,
    "evacuate": run_evacuation_scenario,
    "fileserver_crash": run_fileserver_crash_scenario,
    "storm_parity": run_storm_parity_scenario,
    "crash_parity": run_crash_parity_scenario,
}


def run_campaign(
    scale: str = "smoke",
    scenarios: list[str] | None = None,
) -> CampaignResult:
    """Run the selected scenarios (default: all) at *scale*."""
    if scale not in SCALES:
        raise ConfigError(
            f"unknown campaign scale {scale!r}; choose from {SCALES}"
        )
    names = list(SCENARIOS) if scenarios is None else scenarios
    outcomes = []
    for name in names:
        try:
            runner = SCENARIOS[name]
        except KeyError:
            raise ConfigError(
                f"unknown scenario {name!r}; choose from "
                f"{tuple(SCENARIOS)}"
            ) from None
        outcomes.append(runner(scale))
    return CampaignResult(scale=scale, outcomes=outcomes)
