"""Scenario interpreter: schedules scripted faults into a live system.

The engine owns nothing clever — every decision (what fails, when,
where the survivors go) was pinned when the scenario was built.  Its
job is to schedule the actions on the simulation clock, drive the
repo's failure primitives when they fire, and keep a deterministic
ledger of what actually happened (:class:`FaultEvent`).  Identical
scenario + identical system config ⇒ identical ledger, byte for byte —
the property the campaign gates and the Hypothesis suite fuzzes.

Sharded systems get the shard-safe subset (storms, fail-stop crashes,
evacuations).  Crashes and maintenance kills are *global* actions — the
recovery sequence mutates several shards at once — so the engine
schedules them through
:meth:`~repro.sim.shard.ShardedSystem.call_at_barrier`: they become
barrier-aligned records, fired between windows in pure-data key order
(kind, machine, executor), with every shard clock frozen at the crash
instant.  That requires their times to sit on the window grid and to be
unique among the scenario's action times — the classic engine runs a
crash first at its tick because it is scheduled at install time (lowest
sequence number), and the barrier engine runs it before the window that
contains it; distinct times keep the two orderings identical, which the
crash-parity gates check byte for byte.  Partitions and flaky windows
stay classic-only (they rewrite wire fault plans retroactively, which
:class:`~repro.net.network.ShardNetwork` refuses by design).  The
ledger is kept in the driving process, so sharded scenarios must run
under the serial executor (the same constraint as cross-shard live
migration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.chaos.scenario import (
    ChaosScenario,
    CrashMachine,
    Evacuation,
    FlakyLinks,
    MigrationStorm,
    Partition,
)
from repro.errors import SimulationError
from repro.net.channel import FaultPlan
from repro.net.topology import MachineId
from repro.policy.metrics import migratable_processes
from repro.policy.recovery import CrashRecoveryManager, CrashReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System
    from repro.sim.shard import ShardedSystem


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One fault the engine actually injected."""

    at: int
    kind: str
    detail: str


class ChaosEngine:
    """Runs one :class:`ChaosScenario` against one system.

    Usage::

        engine = ChaosEngine(system, scenario)
        engine.install()        # before (or alongside) the workload
        system.run(...)         # faults fire on the simulation clock
        engine.ledger()         # sorted FaultEvents, deterministic
    """

    def __init__(
        self,
        system: "System | ShardedSystem",
        scenario: ChaosScenario,
        recovery: CrashRecoveryManager | None = None,
    ) -> None:
        self.system = system
        self.scenario = scenario
        self.sharded = hasattr(system, "shards")
        scenario.validate(len(system.topology.machines))
        if self.sharded and not scenario.shard_safe:
            raise SimulationError(
                f"scenario {scenario.name!r} uses actions that rewrite "
                f"wire fault plans (partition/flaky links), which the "
                f"sharded network refuses; storms, crashes and "
                f"evacuations run under sharding"
            )
        if self.sharded:
            self._check_sharded_schedule()
        if recovery is None:
            recovery = CrashRecoveryManager(system)
        self.recovery = recovery
        self.events: list[FaultEvent] = []
        self.counts: dict[str, int] = {}
        self.crash_reports: list[CrashReport] = []
        self.installed = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _check_sharded_schedule(self) -> None:
        """Validate barrier-action times (see the module docstring)."""
        grid = self.system.plan.lookahead
        loop_times: set[int] = set()
        barrier_times: list[tuple[int, str]] = []
        for action in self.scenario.actions:
            if isinstance(action, CrashMachine):
                barrier_times.append(
                    (action.at, f"crash of machine {action.machine}")
                )
            elif isinstance(action, Evacuation):
                barrier_times.append((
                    action.kill_at,
                    f"maintenance kill of machine {action.machine}",
                ))
                loop_times.add(action.drain_at)
            elif isinstance(action, MigrationStorm):
                loop_times.add(action.at)
        seen: set[int] = set()
        for at, what in barrier_times:
            if at % grid:
                raise SimulationError(
                    f"{what} at t={at} is off the {grid}us window grid; "
                    f"sharded crashes fire at barriers, so their times "
                    f"must be multiples of the lookahead"
                )
            if at in seen or at in loop_times:
                raise SimulationError(
                    f"{what} at t={at} collides with another action's "
                    f"time; sharded crash times must be unique so the "
                    f"classic and barrier engines order same-tick work "
                    f"identically"
                )
            seen.add(at)

    def install(self) -> None:
        """Schedule every scenario action on the simulation clock."""
        if self.installed:
            raise SimulationError("engine already installed")
        self.installed = True
        for action in self.scenario.actions:
            if isinstance(action, CrashMachine):
                if self.sharded:
                    self._at_barrier(
                        action.at,
                        ("crash", action.machine, action.executor),
                        self._crash, action,
                    )
                else:
                    self._at(
                        action.at, action.machine, self._crash, action
                    )
            elif isinstance(action, Partition):
                self._at(action.at, 0, self._partition, action)
                self._at(action.heal_at, 0, self._heal, action)
            elif isinstance(action, FlakyLinks):
                self._at(action.at, 0, self._flaky_start, action)
                self._at(action.until, 0, self._flaky_end, action)
            elif isinstance(action, MigrationStorm):
                for move in action.moves:
                    self._at(
                        action.at, move.home, self._storm_move,
                        action.at, move,
                    )
            elif isinstance(action, Evacuation):
                self._at(action.drain_at, action.machine, self._drain,
                         action)
                if self.sharded:
                    self._at_barrier(
                        action.kill_at,
                        (
                            "maintenance-kill", action.machine,
                            action.executor,
                        ),
                        self._kill, action,
                    )
                else:
                    self._at(action.kill_at, action.executor, self._kill,
                             action)

    def _at(
        self, time: int, machine: MachineId, callback, *args: Any
    ) -> None:
        """Schedule *callback* at *time*, anchored to *machine*'s loop."""
        if self.sharded:
            self.system.call_at(time, machine, callback, *args)
        else:
            self.system.loop.call_at(time, callback, *args)

    def _at_barrier(
        self, time: int, key: tuple, callback, *args: Any
    ) -> None:
        """Schedule a global action at a window barrier (sharded only)."""
        self.system.call_at_barrier(time, key, callback, *args)

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------

    def ledger(self) -> list[FaultEvent]:
        """Every injected fault, sorted canonically.

        The sort makes the ledger independent of same-tick callback
        interleaving, so it can be compared byte-for-byte across runs
        and across shard layouts.
        """
        return sorted(self.events)

    def _record(self, at: int, kind: str, detail: str) -> None:
        self.events.append(FaultEvent(at, kind, detail))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._metrics_for_record().counter(
            "chaos.faults", kind=kind, scenario=self.scenario.name,
        ).inc()

    def _metrics_for_record(self):
        if self.sharded:
            # Charge shard 0 so merged counters are shard-layout
            # independent (the ledger, not the charge site, carries
            # the machine information).
            return self.system.shards[0].metrics
        return self.system.metrics

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _crash(self, action: CrashMachine) -> None:
        if action.protect:
            self.recovery.protect_all(action.machine)
        report = self.recovery.crash(action.machine, action.executor)
        self.crash_reports.append(report)
        self._record(
            action.at, "crash",
            f"machine {action.machine} -> executor {action.executor}"
            + ("" if action.protect else " (unprotected)"),
        )

    def _partition(self, action: Partition) -> None:
        self.system.network.partition(action.group_a, action.group_b)
        self._record(
            action.at, "partition",
            f"{sorted(action.group_a)} | {sorted(action.group_b)}",
        )

    def _heal(self, action: Partition) -> None:
        self.system.network.heal(action.group_a, action.group_b)
        self._record(
            action.heal_at, "heal",
            f"{sorted(action.group_a)} | {sorted(action.group_b)}",
        )

    def _flaky_start(self, action: FlakyLinks) -> None:
        network = self.system.network
        if action.pairs is None:
            self._flaky_baseline = network._default_faults
            network.set_faults(action.faults)
            where = "all wires"
        else:
            self._flaky_baseline = network._default_faults
            for a, b in action.pairs:
                network.set_faults(action.faults, a, b)
            where = f"{len(action.pairs)} wire pair(s)"
        self._record(action.at, "flaky", where)

    def _flaky_end(self, action: FlakyLinks) -> None:
        network = self.system.network
        baseline = getattr(self, "_flaky_baseline", None) or FaultPlan()
        if action.pairs is None:
            network.set_faults(baseline)
            where = "all wires"
        else:
            for a, b in action.pairs:
                network.set_faults(baseline, a, b)
            where = f"{len(action.pairs)} wire pair(s)"
        self._record(action.until, "flaky-end", where)

    def _storm_move(self, at: int, move) -> None:
        kernel = self.system.kernel(move.home)
        started = (
            move.pid in kernel.processes
            and not kernel.crashed
            and kernel.migration.start(move.pid, move.dest)
        )
        detail = f"{move.pid} {move.home} -> {move.dest}"
        if started:
            self._record(at, "storm-move", detail)
        else:
            self._record(at, "storm-skip", detail)

    def _drain(self, action: Evacuation) -> None:
        """Evacuate: refuse inbound migrations, push residents out."""
        kernel = self.system.kernel(action.machine)
        kernel.draining = True
        moved = 0
        for index, pid in enumerate(
            migratable_processes(self.system, action.machine)
        ):
            dest = action.dests[index % len(action.dests)]
            if kernel.migration.start(pid, dest):
                moved += 1
        self.counts["drain-migrations"] = (
            self.counts.get("drain-migrations", 0) + moved
        )
        self._record(
            action.drain_at, "drain",
            f"machine {action.machine} -> {list(action.dests)}",
        )

    def _kill(self, action: Evacuation) -> None:
        # A clean evacuation leaves the machine empty; protect whatever
        # straggled so the maintenance kill still has no casualties.
        self.recovery.protect_all(action.machine)
        report = self.recovery.crash(action.machine, action.executor)
        self.crash_reports.append(report)
        self._record(
            action.kill_at, "maintenance-kill",
            f"machine {action.machine} -> executor {action.executor}",
        )
