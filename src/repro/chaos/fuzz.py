"""Seeded chaos fuzzing: random valid scenario schedules + shrinking.

The campaign (:mod:`repro.chaos.campaign`) gates a handful of scripted
scenarios; this module *searches* the scenario space.  A
:class:`FuzzSchedule` is a pure-data description of one randomized
experiment — system shape, echo servers, pingers, and a schedule of
chaos actions — drawn from one named RNG stream
(``fuzz/schedule/<index>``), so schedule *i* under root seed *s* is the
same schedule forever, regardless of how many runs came before it.

Running a schedule (:func:`run_schedule`) builds a fresh system per
engine variant, lets the :class:`~repro.chaos.engine.ChaosEngine`
interpret the materialized scenario under live pinger traffic, and
gates the survivor invariants at quiescence.  Schedules drawn as
*sharded* carry only shard-safe actions on grid-aligned times and run
three ways — classic :class:`~repro.core.system.System`,
``ShardedSystem(shards=1)`` and ``shards=2`` — with every merged
counter and the fault ledger compared byte-for-byte: the conservative-
PDES parity argument is an oracle the fuzzer checks on every draw, not
just on the scripted parity scenarios.

A violating schedule is minimized by :func:`shrink` (greedy delta
debugging over the schedule's pure data: drop actions, drop storm
moves, drop pingers, halve rounds — every candidate re-validated before
it is tried) and written as a replayable JSON repro file.  Confirmed
repros are promoted into ``tests/chaos/regressions/``, where a loader
test replays every file and asserts the violation stays fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.chaos.campaign import ledger_digest
from repro.chaos.engine import ChaosEngine, FaultEvent
from repro.chaos.invariants import survivor_invariants
from repro.chaos.scenario import (
    ChaosScenario,
    CrashMachine,
    Evacuation,
    FlakyLinks,
    MigrationStorm,
    Move,
    Partition,
)
from repro.core.config import SystemConfig
from repro.core.system import System
from repro.errors import ConfigError, SimulationError
from repro.kernel.ids import ProcessId
from repro.net.channel import FaultPlan
from repro.sim.rng import RandomStreams
from repro.sim.shard import ShardedSystem
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard

#: every fuzzed system uses this wire latency — it is the sharded
#: window grid, so the action-time slot scheme below is grid-aware by
#: construction.
LATENCY = 1_000

#: first action slot and slot spacing (one action per slot; spacing is
#: generous so storms finish their migrations before the next fault).
SLOT_BASE = 20_000
SLOT_SPACING = 15_000

#: loop-scheduled actions (storms, drains) sit off the window grid so
#: they can never collide with a barrier action's time.
OFFGRID = 37

#: pinger spawn times: off-grid, unique, before the first action slot.
PINGER_BASE = 10_000

#: simulated-time bound for sharded drains (the sharded runner has no
#: event budget; a wire livelock advances time, so a horizon bounds it).
HORIZON = 5_000_000

#: file format version stamped into repro files.
REPRO_VERSION = 1


# ---------------------------------------------------------------------
# Schedule data model
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class ActionSpec:
    """One chaos action, described over server *indices* and machines.

    Pure data (no pids, no objects): the same spec materializes against
    any freshly built system, which is what makes schedules replayable
    and shrinkable.  Unused fields keep their defaults, so specs of
    every kind share one JSON shape.
    """

    kind: str                      # crash|storm|evacuate|partition|flaky
    at: int
    machine: int = -1              # crash victim / evacuated machine
    executor: int = -1
    until: int = -1                # heal_at / flaky end / kill_at
    group_a: tuple[int, ...] = ()
    group_b: tuple[int, ...] = ()
    moves: tuple[tuple[int, int], ...] = ()   # (server index, dest)
    dests: tuple[int, ...] = ()    # evacuation destinations
    drop_permille: int = 0         # flaky drop probability * 1000
    jitter: int = 0                # flaky max jitter


@dataclass(frozen=True)
class FuzzSchedule:
    """One randomized experiment, drawn from ``fuzz/schedule/<index>``."""

    seed: int                      # fuzzer root seed
    index: int                     # draw number under that seed
    system_seed: int
    machines: int
    topology: str
    sharded: bool                  # run the 3-way engine parity oracle
    servers: tuple[int, ...]       # echo server home machines
    pingers: tuple[tuple[int, int], ...]   # (server index, client machine)
    rounds: int
    actions: tuple[ActionSpec, ...]


@dataclass
class FuzzOutcome:
    """What one schedule's run produced."""

    schedule: FuzzSchedule
    counters: dict[str, int] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)
    ledger: list[FaultEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class FuzzReport:
    """One fuzzing session: *runs* schedules under one root seed."""

    seed: int
    runs: int
    digests: list[int] = field(default_factory=list)
    violations: list[FuzzOutcome] = field(default_factory=list)
    repro_paths: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ---------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------


def generate_schedule(seed: int, index: int) -> FuzzSchedule:
    """Draw schedule *index* under root *seed*.

    Only the stream ``fuzz/schedule/<index>`` is consumed, so the draw
    is independent of every other schedule — schedule 7 is the same
    whether you ran 8 schedules or 8,000.
    """
    rng = RandomStreams(seed).stream(f"fuzz/schedule/{index}")
    sharded = rng.random() < 0.5
    machines = rng.choice((4, 6, 8))
    topology = "torus" if sharded else rng.choice(("mesh", "torus"))
    server_count = rng.randint(1, min(3, machines - 2))
    servers = tuple(
        rng.randrange(machines) for _ in range(server_count)
    )
    pingers = tuple(
        (s, rng.randrange(machines))
        for s in range(server_count)
        for _ in range(rng.randint(1, 2))
    )
    rounds = rng.randint(2, 5)

    # Machines 0 (control servers) and 1 (file server) never die, so
    # they are always legal executors; further executors are reserved
    # out of the victim pool as they are drawn.  Pinger homes never die
    # either: fail-stop abandons the dead machine's unacked sends (see
    # ReliableTransport.abandon_sends), so a recovered mid-RPC client
    # may wait forever for a reply to a request that died in the dead
    # machine's send buffer — legal under the model, but it makes the
    # completion gate vacuous, so the generator avoids it.
    victims_allowed = set(range(2, machines)) - {
        client for _, client in pingers
    }
    dead: set[int] = set()
    homes = list(servers)
    kinds = ("storm", "crash", "evacuate")
    if not sharded:
        kinds += ("partition", "flaky")
    specs: list[ActionSpec] = []
    for slot in range(rng.randint(1, 4)):
        base = SLOT_BASE + SLOT_SPACING * slot
        kind = rng.choice(kinds)
        alive = [m for m in range(machines) if m not in dead]
        if kind in ("crash", "evacuate"):
            pool = sorted(victims_allowed - dead)
            if not pool:
                continue
            machine = rng.choice(pool)
            executor = rng.choice(
                [m for m in alive if m != machine]
            )
            victims_allowed.discard(executor)
            dead.add(machine)
            if kind == "crash":
                specs.append(ActionSpec(
                    kind="crash", at=base, machine=machine,
                    executor=executor,
                ))
                takeover = executor
            else:
                # The pool can be a single machine (small system, prior
                # deaths), so the draw is clamped to what is available.
                dest_pool = [
                    m for m in alive
                    if m != machine and m != executor
                ]
                dests = tuple(sorted(rng.sample(
                    dest_pool,
                    min(rng.randint(1, 2), len(dest_pool)),
                ))) or (executor,)
                specs.append(ActionSpec(
                    kind="evacuate", at=base + OFFGRID,
                    machine=machine, executor=executor,
                    until=base + 10_000, dests=dests,
                ))
                # Drained residents round-robin onto dests; track the
                # first destination (materialization uses the same rule).
                takeover = dests[0]
            homes = [takeover if h == machine else h for h in homes]
        elif kind == "storm":
            indices = rng.sample(
                range(server_count), rng.randint(1, server_count)
            )
            moves = []
            for sidx in sorted(indices):
                choices = [
                    m for m in alive if m != homes[sidx]
                ]
                if not choices:
                    continue
                dest = rng.choice(choices)
                moves.append((sidx, dest))
                homes[sidx] = dest
            if not moves:
                continue
            specs.append(ActionSpec(
                kind="storm", at=base + OFFGRID, moves=tuple(moves),
            ))
        elif kind == "partition":
            split = rng.sample(alive, len(alive))
            cut = rng.randint(1, len(split) - 1)
            specs.append(ActionSpec(
                kind="partition", at=base + OFFGRID,
                until=base + 8_000,
                group_a=tuple(sorted(split[:cut])),
                group_b=tuple(sorted(split[cut:])),
            ))
        else:  # flaky
            specs.append(ActionSpec(
                kind="flaky", at=base + OFFGRID, until=base + 9_000,
                drop_permille=rng.choice((20, 50)),
                jitter=rng.choice((0, 300)),
            ))
    return FuzzSchedule(
        seed=seed,
        index=index,
        system_seed=rng.randrange(2**32),
        machines=machines,
        topology=topology,
        sharded=sharded,
        servers=servers,
        pingers=pingers,
        rounds=rounds,
        actions=tuple(specs),
    )


# ---------------------------------------------------------------------
# Materialization + validation
# ---------------------------------------------------------------------


def _materialize(
    schedule: FuzzSchedule, pids: list[ProcessId]
) -> ChaosScenario:
    """Turn pure-data specs into a scenario against concrete pids.

    Server homes are tracked through the action sequence with the same
    rules the generator used (storm moves relocate, crash recovery and
    evacuation takeovers relocate), so each storm ``Move`` is anchored
    where the server actually is — and the tracking stays correct after
    the shrinker drops earlier actions, because it is recomputed here
    from whatever actions remain.
    """
    homes = list(schedule.servers)
    actions: list[Any] = []
    for spec in schedule.actions:
        if spec.kind == "crash":
            actions.append(CrashMachine(
                at=spec.at, machine=spec.machine, executor=spec.executor,
            ))
            homes = [
                spec.executor if h == spec.machine else h for h in homes
            ]
        elif spec.kind == "evacuate":
            actions.append(Evacuation(
                drain_at=spec.at, machine=spec.machine,
                kill_at=spec.until, executor=spec.executor,
                dests=spec.dests,
            ))
            homes = [
                spec.dests[0] if h == spec.machine else h for h in homes
            ]
        elif spec.kind == "storm":
            moves = []
            for sidx, dest in spec.moves:
                moves.append(Move(
                    pid=pids[sidx], home=homes[sidx], dest=dest,
                ))
                homes[sidx] = dest
            actions.append(MigrationStorm(at=spec.at, moves=tuple(moves)))
        elif spec.kind == "partition":
            actions.append(Partition(
                at=spec.at, heal_at=spec.until,
                group_a=spec.group_a, group_b=spec.group_b,
            ))
        elif spec.kind == "flaky":
            actions.append(FlakyLinks(
                at=spec.at, until=spec.until,
                faults=FaultPlan(
                    drop_probability=spec.drop_permille / 1000,
                    max_jitter=spec.jitter,
                ),
            ))
        else:
            raise ConfigError(f"unknown action kind {spec.kind!r}")
    return ChaosScenario(
        f"fuzz-{schedule.seed}-{schedule.index}", tuple(actions),
    )


def validate_schedule(schedule: FuzzSchedule) -> None:
    """Raise :class:`ConfigError` if *schedule* is not runnable.

    Applies every static check its run would hit: scenario validation,
    server/pinger machine ranges, and (for sharded schedules) the
    barrier grid and uniqueness rules the engine enforces.
    """
    fake_pids = [
        ProcessId(creating_machine=0, local_id=i + 1)
        for i in range(len(schedule.servers))
    ]
    scenario = _materialize(schedule, fake_pids)
    scenario.validate(schedule.machines)
    for home in schedule.servers:
        if not 0 <= home < schedule.machines:
            raise ConfigError(f"server home {home} out of range")
    for sidx, client in schedule.pingers:
        if not 0 <= sidx < len(schedule.servers):
            raise ConfigError(f"pinger server index {sidx} out of range")
        if not 0 <= client < schedule.machines:
            raise ConfigError(f"pinger machine {client} out of range")
    if schedule.rounds < 1:
        raise ConfigError("a schedule needs at least one pinger round")
    if not schedule.sharded:
        return
    if schedule.machines % 2:
        raise ConfigError("sharded schedules need an even machine count")
    if not scenario.shard_safe:
        raise ConfigError("sharded schedule contains wire-surgery actions")
    loop_times = set()
    barrier_times = []
    for action in scenario.actions:
        if isinstance(action, CrashMachine):
            barrier_times.append(action.at)
        elif isinstance(action, Evacuation):
            barrier_times.append(action.kill_at)
            loop_times.add(action.drain_at)
        elif isinstance(action, MigrationStorm):
            loop_times.add(action.at)
    seen: set[int] = set()
    for at in barrier_times:
        if at % LATENCY:
            raise ConfigError(
                f"barrier action at t={at} is off the {LATENCY}us grid"
            )
        if at in seen or at in loop_times:
            raise ConfigError(f"barrier action time t={at} collides")
        seen.add(at)


# ---------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------


def _run_once(
    schedule: FuzzSchedule, shards: int, budget: int
) -> tuple[dict[str, int], list[FaultEvent], list[str]]:
    """Run *schedule* on one engine variant (``shards=0`` = classic)."""
    config = SystemConfig(
        machines=schedule.machines,
        topology=schedule.topology,
        latency=LATENCY,
        seed=schedule.system_seed,
        shards=shards or 1,
        trace_categories=(),
        metrics_enabled=False,
    )
    system: Any = ShardedSystem(config) if shards else System(config)
    pids = []
    for sidx, home in enumerate(schedule.servers):
        name = f"fuzz-echo-{sidx}"
        pids.append(system.spawn(
            lambda ctx, _n=name: echo_server(ctx, service_name=_n),
            machine=home, name=name,
        ))
    engine = ChaosEngine(system, _materialize(schedule, pids))
    engine.install()

    if shards:
        boards = [ResultsBoard() for _ in system.shards]
    else:
        boards = [ResultsBoard()]
    for j, (sidx, client) in enumerate(schedule.pingers):
        at = PINGER_BASE + OFFGRID + 500 * j
        if shards:
            board = boards[system.plan.shard_of(client)]
        else:
            board = boards[0]

        def spawn(_j=j, _s=sidx, _c=client, _b=board):
            system.spawn(
                lambda ctx: pinger(
                    ctx, service_name=f"fuzz-echo-{_s}",
                    rounds=schedule.rounds, gap=8_000,
                    board=_b, key=f"ping-{_j}",
                ),
                machine=_c, name=f"pinger-{_j}",
            )

        if shards:
            system.call_at(at, client, spawn)
        else:
            system.loop.call_at(at, spawn)

    problems: list[str] = []
    if shards:
        system.run(until=HORIZON)
        if not system.quiescent():
            problems.append(
                f"system not quiescent at the {HORIZON}us horizon"
            )
        kernels = system.kernels_in_machine_order()
        packets = sum(
            shard.network.stats.packets_sent for shard in system.shards
        )
    else:
        fired = system.run(max_events=budget)
        if fired >= budget:
            problems.append(
                f"simulation did not quiesce within {budget} events"
            )
        kernels = list(system.kernels)
        packets = system.network.stats.packets_sent

    counters = {
        "processes_spawned": sum(
            k.stats.processes_spawned for k in kernels
        ),
        "messages_delivered": sum(
            k.stats.messages_delivered for k in kernels
        ),
        "messages_forwarded": sum(
            k.stats.messages_forwarded for k in kernels
        ),
        "link_updates_applied": sum(
            k.stats.link_updates_applied for k in kernels
        ),
        "forwarding_entries": sum(
            len(k.forwarding) for k in kernels if not k.crashed
        ),
        "packets_sent": packets,
    }
    for kind, count in sorted(engine.counts.items()):
        counters[f"faults.{kind}"] = count
    ledger = engine.ledger()
    counters["ledger_events"] = len(ledger)
    counters["ledger_digest"] = ledger_digest(ledger)

    if not problems:
        problems += survivor_invariants(system, recovery=engine.recovery)
    completed = 0
    for board in boards:
        for j in range(len(schedule.pingers)):
            for summary in board.get(f"ping-{j}-summary"):
                completed += 1
                echoes = [
                    t["echo"] for t in summary["transcript"]
                ]
                expected = [
                    {"round": r} for r in range(schedule.rounds)
                ]
                if echoes != expected:
                    problems.append(
                        f"pinger {j} saw replies {echoes} — not "
                        f"exactly-once in order"
                    )
    counters["pingers_done"] = completed
    if completed != len(schedule.pingers):
        problems.append(
            f"{completed}/{len(schedule.pingers)} pingers completed"
        )
    return counters, ledger, problems


def run_schedule(
    schedule: FuzzSchedule, budget: int = 2_000_000
) -> FuzzOutcome:
    """Run *schedule* on every engine variant it selects and gate it.

    Classic-only schedules run once.  Sharded schedules run classic,
    ``shards=1`` and ``shards=2``, and any divergence in the merged
    counters or the fault ledger is itself a violation — the parity
    oracle.  An exception anywhere (the middle-hop forwarding cycle
    manifested as a ``RecursionError``) is converted into a violation
    so the shrinker can minimize crash-inducing schedules too.
    """
    outcome = FuzzOutcome(schedule)
    variants = (0, 1, 2) if schedule.sharded else (0,)
    results: dict[int, tuple[dict[str, int], list[FaultEvent]]] = {}
    for shards in variants:
        label = f"shards={shards}" if shards else "classic"
        try:
            counters, ledger, problems = _run_once(
                schedule, shards, budget
            )
        except Exception as error:  # noqa: BLE001 — fuzzing boundary
            outcome.problems.append(
                f"({label}) exception: "
                f"{type(error).__name__}: {error}"
            )
            continue
        results[shards] = (counters, ledger)
        outcome.problems += [f"({label}) {p}" for p in problems]
    if 0 in results:
        outcome.counters, outcome.ledger = results[0]
    for shards in variants[1:]:
        if 0 not in results or shards not in results:
            continue
        counters, ledger = results[shards]
        reference = results[0][0]
        if counters != reference:
            diverged = {
                key: (reference.get(key), counters.get(key))
                for key in set(reference) | set(counters)
                if reference.get(key) != counters.get(key)
            }
            outcome.problems.append(
                f"classic vs shards={shards} counters diverged: "
                f"{diverged}"
            )
        if ledger != results[0][1]:
            outcome.problems.append(
                f"classic vs shards={shards} fault ledgers diverged"
            )
    return outcome


# ---------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------


def _candidates(schedule: FuzzSchedule) -> Iterator[FuzzSchedule]:
    """Strictly smaller schedules, biggest cuts first."""
    from dataclasses import replace

    for i in range(len(schedule.actions)):
        yield replace(schedule, actions=(
            schedule.actions[:i] + schedule.actions[i + 1:]
        ))
    for i, spec in enumerate(schedule.actions):
        if spec.kind != "storm" or len(spec.moves) < 2:
            continue
        for j in range(len(spec.moves)):
            smaller = replace(
                spec, moves=spec.moves[:j] + spec.moves[j + 1:],
            )
            yield replace(schedule, actions=(
                schedule.actions[:i] + (smaller,)
                + schedule.actions[i + 1:]
            ))
    for i in range(len(schedule.pingers)):
        yield replace(schedule, pingers=(
            schedule.pingers[:i] + schedule.pingers[i + 1:]
        ))
    if schedule.rounds > 1:
        yield replace(schedule, rounds=schedule.rounds // 2)


def shrink(
    schedule: FuzzSchedule,
    still_fails: Callable[[FuzzSchedule], bool],
    max_attempts: int = 64,
) -> FuzzSchedule:
    """Greedy delta debugging: keep the smallest still-failing schedule.

    Each candidate drops one component (action, storm move, pinger) or
    halves the pinger rounds; invalid candidates are skipped without
    spending an attempt.  *still_fails* is the caller's violation
    predicate (typically ``lambda s: not run_schedule(s).ok``).
    """
    current = schedule
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            try:
                validate_schedule(candidate)
            except (ConfigError, SimulationError):
                continue
            attempts += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current


# ---------------------------------------------------------------------
# Repro files
# ---------------------------------------------------------------------


def schedule_to_json(schedule: FuzzSchedule) -> dict[str, Any]:
    """A JSON-safe dict; :func:`schedule_from_json` inverts it exactly."""
    return {
        "seed": schedule.seed,
        "index": schedule.index,
        "system_seed": schedule.system_seed,
        "machines": schedule.machines,
        "topology": schedule.topology,
        "sharded": schedule.sharded,
        "servers": list(schedule.servers),
        "pingers": [list(p) for p in schedule.pingers],
        "rounds": schedule.rounds,
        "actions": [
            {
                "kind": spec.kind,
                "at": spec.at,
                "machine": spec.machine,
                "executor": spec.executor,
                "until": spec.until,
                "group_a": list(spec.group_a),
                "group_b": list(spec.group_b),
                "moves": [list(m) for m in spec.moves],
                "dests": list(spec.dests),
                "drop_permille": spec.drop_permille,
                "jitter": spec.jitter,
            }
            for spec in schedule.actions
        ],
    }


def schedule_from_json(data: dict[str, Any]) -> FuzzSchedule:
    """Rebuild a :class:`FuzzSchedule` from its JSON dict."""
    return FuzzSchedule(
        seed=data["seed"],
        index=data["index"],
        system_seed=data["system_seed"],
        machines=data["machines"],
        topology=data["topology"],
        sharded=data["sharded"],
        servers=tuple(data["servers"]),
        pingers=tuple(tuple(p) for p in data["pingers"]),
        rounds=data["rounds"],
        actions=tuple(
            ActionSpec(
                kind=spec["kind"],
                at=spec["at"],
                machine=spec["machine"],
                executor=spec["executor"],
                until=spec["until"],
                group_a=tuple(spec["group_a"]),
                group_b=tuple(spec["group_b"]),
                moves=tuple(tuple(m) for m in spec["moves"]),
                dests=tuple(spec["dests"]),
                drop_permille=spec["drop_permille"],
                jitter=spec["jitter"],
            )
            for spec in data["actions"]
        ),
    )


def write_repro(
    path: str | Path,
    schedule: FuzzSchedule,
    problems: list[str],
    note: str = "",
) -> Path:
    """Write a replayable repro file for a violating schedule."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": REPRO_VERSION,
        "note": note,
        "violations": problems,
        "schedule": schedule_to_json(schedule),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: str | Path) -> FuzzSchedule:
    """Load the schedule out of a repro file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != REPRO_VERSION:
        raise ConfigError(
            f"repro file {path} has version "
            f"{payload.get('version')!r}; expected {REPRO_VERSION}"
        )
    return schedule_from_json(payload["schedule"])


def replay(path: str | Path, budget: int = 2_000_000) -> FuzzOutcome:
    """Re-run a repro file's schedule and return the fresh outcome."""
    return run_schedule(load_repro(path), budget=budget)


# ---------------------------------------------------------------------
# The fuzzing session
# ---------------------------------------------------------------------


def run_fuzz(
    seed: int = 0,
    runs: int = 10,
    budget: int = 2_000_000,
    out_dir: str | Path | None = None,
    shrink_violations: bool = True,
) -> FuzzReport:
    """Draw and run *runs* schedules under *seed*.

    Violating schedules are shrunk (unless disabled) and written as
    repro files under *out_dir* (``fuzz-<seed>-<index>.json``).  The
    report's digest list is the determinism witness: the same seed and
    runs always reproduce the same digests.
    """
    report = FuzzReport(seed=seed, runs=runs)
    for index in range(runs):
        schedule = generate_schedule(seed, index)
        validate_schedule(schedule)
        outcome = run_schedule(schedule, budget=budget)
        report.digests.append(
            outcome.counters.get("ledger_digest", 0)
        )
        if outcome.ok:
            continue
        if shrink_violations:
            smallest = shrink(
                schedule,
                lambda s: not run_schedule(s, budget=budget).ok,
            )
            if smallest is not schedule:
                outcome = run_schedule(smallest, budget=budget)
                outcome.problems = (
                    outcome.problems
                    or [f"shrunk from schedule {index}"]
                )
        report.violations.append(outcome)
        if out_dir is not None:
            path = write_repro(
                Path(out_dir) / f"fuzz-{seed}-{index}.json",
                outcome.schedule,
                outcome.problems,
                note=f"found by run_fuzz(seed={seed}) at index {index}",
            )
            report.repro_paths.append(str(path))
    return report
