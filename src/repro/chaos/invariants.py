"""Survivor invariants: what must hold at quiescence after a campaign.

Each check returns a list of human-readable problems (empty = clean),
so a gate is ``assert not survivor_invariants(...)`` and a failure
message names every violated property at once.  All checks duck-type
over :class:`~repro.core.system.System` and
:class:`~repro.sim.shard.ShardedSystem` (serial executor).

The gated properties, mapped to the paper:

1. **exactly-once replies** — each closed-loop client's request quota
   completed with the reply that answers *its* request (§2's reliable
   delivery surviving §4's crashes and forwarding);
2. **chains collapse** — every forwarding chain reaches the process's
   current home without cycling or dangling, and (behaviorally, gated
   by the campaign's probe) a second message forwards at most once
   after the lazy link update (§4, Figure 4-1);
3. **no stranded forwarding addresses** — after GC, entries exist only
   for processes still alive somewhere (§4's backward-pointer
   collection);
4. **no orphaned recovery state** — the crash manager's bookkeeping
   matches reality (§1/§4 stable-storage recovery);
5. **conservation** — the transport holds no lost or duplicated
   traffic and memory accounting balances on every surviving machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.topology import MachineId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System
    from repro.policy.recovery import CrashRecoveryManager
    from repro.sim.shard import ShardedSystem
    from repro.workloads.closed_loop import ClientPool

    AnySystem = System | ShardedSystem


def _kernels(system: "AnySystem"):
    if hasattr(system, "shards"):
        return system.kernels_in_machine_order()
    return list(system.kernels)


def _effective(system: "AnySystem", machine: MachineId) -> MachineId:
    if hasattr(system, "shards"):
        # crash_transport replicates redirects onto every shard's
        # routing view, so any shard answers for the whole system.
        return system.shards[0].network.effective_destination(machine)
    return system.network.effective_destination(machine)


def check_exactly_once(pool: "ClientPool") -> list[str]:
    """Every client completed its quota, and every reply echoed the
    request that was waiting for it — no lost, duplicated, or
    cross-wired replies."""
    problems: list[str] = []
    quota = pool.config.requests_per_client
    for client, count in enumerate(pool.request_counts):
        if count != quota:
            problems.append(
                f"client {client} completed {count}/{quota} requests"
            )
    if pool.mismatches:
        problems.append(
            f"{pool.mismatches} repl(y/ies) did not echo the request "
            f"awaiting them"
        )
    snapshot = pool.system.metrics.snapshot()
    histogram = snapshot.histogram(pool.config.metric)
    expected = pool.config.clients * quota
    observed = histogram.count if histogram is not None else 0
    if observed != expected:
        problems.append(
            f"latency histogram holds {observed} observations for "
            f"{expected} requests"
        )
    return problems


def check_chain_collapse(system: "AnySystem") -> list[str]:
    """Every forwarding chain reaches its process (or its death notice)
    without cycling, dangling, or dead-ending on a crashed machine."""
    problems: list[str] = []
    for kernel in _kernels(system):
        if kernel.crashed:
            continue
        for entry in kernel.forwarding.entries():
            pid = entry.pid
            seen = {kernel.machine}
            current: MachineId = entry.machine
            while True:
                current = _effective(system, current)
                target = system.kernel(current)
                if target.crashed:
                    problems.append(
                        f"forwarding chain for {pid} dead-ends on "
                        f"crashed machine {current}"
                    )
                    break
                # Residency ends the walk before the cycle check: a
                # delivering kernel consults its process table first,
                # so an entry pointing (back) at the process's own
                # machine is moot, not a routing loop.
                if pid in target.processes or pid in target.dead:
                    break
                if current in seen:
                    problems.append(
                        f"forwarding chain for {pid} (from machine "
                        f"{kernel.machine}) cycles at machine {current}"
                    )
                    break
                seen.add(current)
                nxt = target.forwarding.lookup(pid)
                if nxt is None:
                    problems.append(
                        f"forwarding chain for {pid} (from machine "
                        f"{kernel.machine}) dangles at machine {current}"
                    )
                    break
                current = nxt.machine
    return problems


def check_no_stranded_forwarding(system: "AnySystem") -> list[str]:
    """After GC, forwarding addresses exist only for live processes."""
    problems: list[str] = []
    for kernel in _kernels(system):
        if kernel.crashed:
            continue
        for entry in kernel.forwarding.entries():
            if not system.is_alive(entry.pid):
                problems.append(
                    f"machine {kernel.machine} holds a forwarding "
                    f"address for dead {entry.pid}"
                )
    return problems


def check_recovery_state(
    recovery: "CrashRecoveryManager | None",
) -> list[str]:
    """No orphaned process state in the crash-recovery bookkeeping."""
    if recovery is None:
        return []
    return recovery.audit()


def check_quiescence(system: "AnySystem") -> list[str]:
    """The transport holds nothing: no packets in flight, no unacked
    sends waiting to retransmit."""
    problems: list[str] = []
    if hasattr(system, "shards"):
        for shard in system.shards:
            in_flight = shard.network.in_flight()
            unacked = shard.network.unacked()
            if in_flight or unacked:
                problems.append(
                    f"shard {shard.index} transport not quiescent: "
                    f"{in_flight} in flight, {unacked} unacked"
                )
    elif not system.network.quiescent():
        problems.append(
            f"transport not quiescent: {system.network.in_flight()} "
            f"in flight, {system.network.unacked()} unacked"
        )
    return problems


def check_memory_accounting(system: "AnySystem") -> list[str]:
    """Used bytes on each surviving machine equal the sum of its
    residents' images (nothing leaked, nothing double-freed)."""
    problems: list[str] = []
    for kernel in _kernels(system):
        if kernel.crashed:
            continue
        expected = sum(
            state.memory.resident_bytes
            for state in kernel.processes.values()
        )
        if kernel.memory.used_bytes != expected:
            problems.append(
                f"machine {kernel.machine} memory accounting is off: "
                f"{kernel.memory.used_bytes} used vs {expected} resident"
            )
    return problems


def survivor_invariants(
    system: "AnySystem",
    *,
    pool: "ClientPool | None" = None,
    recovery: "CrashRecoveryManager | None" = None,
) -> list[str]:
    """All applicable survivor invariants, combined.

    Returns every violation found (empty = all invariants hold), so a
    single assert surfaces the full damage report::

        problems = survivor_invariants(system, pool=pool, recovery=rec)
        assert not problems, "\\n".join(problems)
    """
    problems: list[str] = []
    if pool is not None:
        problems += check_exactly_once(pool)
    problems += check_chain_collapse(system)
    problems += check_no_stranded_forwarding(system)
    problems += check_recovery_state(recovery)
    problems += check_quiescence(system)
    problems += check_memory_accounting(system)
    return problems
