"""Declarative chaos scenarios.

A :class:`ChaosScenario` is a named, validated schedule of failure
actions against one simulated system.  Scenarios are *data*: everything
is pinned at build time (absolute simulated times, explicit machines,
explicit victims), so the fault schedule is a pure function of the
scenario — the determinism property the Hypothesis suite gates.  The
:class:`~repro.chaos.engine.ChaosEngine` interprets a scenario against a
live :class:`~repro.core.system.System` (all actions) or a
:class:`~repro.sim.shard.ShardedSystem` (the shard-safe subset).

Action vocabulary:

- :class:`CrashMachine` — fail-stop one machine; protected contents are
  recovered on the executor (paper §1/§4 stable-storage recovery);
- :class:`Partition` — sever every wire between two machine groups,
  healing at a later time (the reliable transport retransmits across
  the cut, so delivery resumes exactly-once);
- :class:`FlakyLinks` — a window of lossy/duplicating/jittery wires,
  on specific pairs or the whole network;
- :class:`MigrationStorm` — many simultaneous forced migrations, each
  anchored at the victim's home machine (skip-or-start is a per-machine
  decision, which keeps storms shard-layout independent);
- :class:`Evacuation` — drain a machine by migrating everything off it
  (the kernel refuses inbound migrations while draining), then fail it
  at a scheduled "maintenance" kill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import ConfigError
from repro.kernel.ids import ProcessId
from repro.net.channel import FaultPlan
from repro.net.topology import MachineId


@dataclass(frozen=True)
class CrashMachine:
    """Fail-stop *machine* at *at*; recover onto *executor*.

    With ``protect`` (the default) every process resident on the
    machine at the crash instant is saved to stable storage first, so
    the crash has survivors instead of casualties.
    """

    at: int
    machine: MachineId
    executor: MachineId
    protect: bool = True

    def check(self, machines: int) -> None:
        if not 0 <= self.machine < machines:
            raise ConfigError(f"crash machine {self.machine} out of range")
        if not 0 <= self.executor < machines:
            raise ConfigError(f"executor {self.executor} out of range")
        if self.machine == self.executor:
            raise ConfigError(
                f"machine {self.machine} cannot be its own crash executor"
            )
        if self.at < 0:
            raise ConfigError("crash time must be non-negative")


@dataclass(frozen=True)
class Partition:
    """Sever all wires between *group_a* and *group_b* from *at* until
    *heal_at* (drop probability 1.0 on every cut wire)."""

    at: int
    heal_at: int
    group_a: tuple[MachineId, ...]
    group_b: tuple[MachineId, ...]

    def check(self, machines: int) -> None:
        if not self.group_a or not self.group_b:
            raise ConfigError("a partition needs two non-empty groups")
        overlap = set(self.group_a) & set(self.group_b)
        if overlap:
            raise ConfigError(
                f"partition groups overlap on machines {sorted(overlap)}"
            )
        for m in (*self.group_a, *self.group_b):
            if not 0 <= m < machines:
                raise ConfigError(f"partition machine {m} out of range")
        if not 0 <= self.at < self.heal_at:
            raise ConfigError(
                f"partition window [{self.at}, {self.heal_at}) is empty "
                f"or negative"
            )


@dataclass(frozen=True)
class FlakyLinks:
    """Inject *faults* on wires from *at* until *until*.

    ``pairs`` names specific (adjacent) wire pairs; ``None`` applies the
    plan to every wire in the network for the window.
    """

    at: int
    until: int
    faults: FaultPlan = field(default_factory=FaultPlan)
    pairs: tuple[tuple[MachineId, MachineId], ...] | None = None

    def check(self, machines: int) -> None:
        if not 0 <= self.at < self.until:
            raise ConfigError(
                f"flaky window [{self.at}, {self.until}) is empty "
                f"or negative"
            )
        for a, b in self.pairs or ():
            if not 0 <= a < machines or not 0 <= b < machines:
                raise ConfigError(f"flaky pair ({a}, {b}) out of range")
            if a == b:
                raise ConfigError(f"machine {a} has no wire to itself")


@dataclass(frozen=True)
class Move:
    """One storm victim: migrate *pid* from *home* to *dest*.

    The move is anchored at *home*: if the process is no longer there
    when the storm fires (it exited, or a policy moved it first), the
    move is skipped — a per-machine decision, identical for every shard
    layout.
    """

    pid: ProcessId
    home: MachineId
    dest: MachineId

    def check(self, machines: int) -> None:
        if not 0 <= self.home < machines:
            raise ConfigError(f"storm home {self.home} out of range")
        if not 0 <= self.dest < machines:
            raise ConfigError(f"storm dest {self.dest} out of range")
        if self.home == self.dest:
            raise ConfigError(
                f"storm move for {self.pid} goes nowhere "
                f"(home == dest == {self.home})"
            )


@dataclass(frozen=True)
class MigrationStorm:
    """Fire every move simultaneously at *at* (forced migration burst)."""

    at: int
    moves: tuple[Move, ...]

    def check(self, machines: int) -> None:
        if self.at < 0:
            raise ConfigError("storm time must be non-negative")
        if not self.moves:
            raise ConfigError("a migration storm needs at least one move")
        for move in self.moves:
            move.check(machines)


@dataclass(frozen=True)
class Evacuation:
    """Drain *machine* at *drain_at*, then fail it at *kill_at*.

    Draining sets the kernel's maintenance flag (inbound migrations are
    refused) and migrates every resident process round-robin onto
    *dests*.  The kill is a protected crash onto *executor*; a clean
    evacuation leaves nothing to recover.
    """

    drain_at: int
    machine: MachineId
    kill_at: int
    executor: MachineId
    dests: tuple[MachineId, ...]

    def check(self, machines: int) -> None:
        if not 0 <= self.drain_at < self.kill_at:
            raise ConfigError(
                f"evacuation window [{self.drain_at}, {self.kill_at}) "
                f"is empty or negative"
            )
        if not 0 <= self.machine < machines:
            raise ConfigError(
                f"evacuated machine {self.machine} out of range"
            )
        if not 0 <= self.executor < machines:
            raise ConfigError(f"executor {self.executor} out of range")
        if self.machine == self.executor:
            raise ConfigError(
                f"machine {self.machine} cannot execute its own kill"
            )
        if not self.dests:
            raise ConfigError("evacuation needs at least one destination")
        for dest in self.dests:
            if not 0 <= dest < machines:
                raise ConfigError(f"evacuation dest {dest} out of range")
            if dest == self.machine:
                raise ConfigError(
                    f"evacuation dest {dest} is the machine being drained"
                )


Action = Union[CrashMachine, Partition, FlakyLinks, MigrationStorm,
               Evacuation]

#: actions safe under sharded execution.  Storms are per-machine
#: anchored loop events; crashes and evacuation kills run as
#: barrier-aligned global actions (grid-aligned times, key-ordered —
#: see :meth:`~repro.sim.shard.ShardedSystem.call_at_barrier`).
#: Partitions and flaky windows stay classic-only: they rewrite wire
#: fault plans retroactively, which the sharded network refuses.
SHARD_SAFE_ACTIONS = (MigrationStorm, CrashMachine, Evacuation)


@dataclass(frozen=True)
class ChaosScenario:
    """A named, validated schedule of failure actions."""

    name: str
    actions: tuple[Action, ...]

    def validate(self, machines: int) -> None:
        """Raise :class:`ConfigError` on an inconsistent schedule."""
        if not self.name:
            raise ConfigError("a scenario needs a name")
        crashed: dict[MachineId, int] = {}
        for action in self.actions:
            action.check(machines)
            if isinstance(action, CrashMachine):
                if action.machine in crashed:
                    raise ConfigError(
                        f"machine {action.machine} is crashed twice "
                        f"(at {crashed[action.machine]} and {action.at})"
                    )
                crashed[action.machine] = action.at
            if isinstance(action, Evacuation):
                if action.machine in crashed:
                    raise ConfigError(
                        f"machine {action.machine} is crashed twice "
                        f"(at {crashed[action.machine]} and "
                        f"{action.kill_at})"
                    )
                crashed[action.machine] = action.kill_at
        # A machine that is dead by time T cannot execute a crash at T.
        for action in self.actions:
            if isinstance(action, CrashMachine):
                executor, at = action.executor, action.at
            elif isinstance(action, Evacuation):
                executor, at = action.executor, action.kill_at
            else:
                continue
            died_at = crashed.get(executor)
            if died_at is not None and died_at <= at:
                raise ConfigError(
                    f"executor {executor} is already dead "
                    f"(crashed at {died_at}) when needed at {at}"
                )

    @property
    def shard_safe(self) -> bool:
        """Whether every action can run on a sharded system."""
        return all(
            isinstance(action, SHARD_SAFE_ACTIONS)
            for action in self.actions
        )

    def fault_schedule(self) -> list[tuple[int, str, str]]:
        """The static ``(time, kind, detail)`` schedule this scenario
        will inject, sorted canonically.

        A pure function of the scenario — the determinism reference the
        property suite compares engine ledgers against.
        """
        return sorted(self._schedule_entries())

    def _schedule_entries(self) -> Iterator[tuple[int, str, str]]:
        for action in self.actions:
            if isinstance(action, CrashMachine):
                yield (
                    action.at, "crash",
                    f"machine {action.machine} -> executor "
                    f"{action.executor}"
                    + ("" if action.protect else " (unprotected)"),
                )
            elif isinstance(action, Partition):
                cut = (f"{sorted(action.group_a)} | "
                       f"{sorted(action.group_b)}")
                yield action.at, "partition", cut
                yield action.heal_at, "heal", cut
            elif isinstance(action, FlakyLinks):
                where = (
                    "all wires" if action.pairs is None
                    else f"{len(action.pairs)} wire pair(s)"
                )
                yield action.at, "flaky", where
                yield action.until, "flaky-end", where
            elif isinstance(action, MigrationStorm):
                for move in action.moves:
                    yield (
                        action.at, "storm-move",
                        f"{move.pid} {move.home} -> {move.dest}",
                    )
            elif isinstance(action, Evacuation):
                yield (
                    action.drain_at, "drain",
                    f"machine {action.machine} -> {list(action.dests)}",
                )
                yield (
                    action.kill_at, "maintenance-kill",
                    f"machine {action.machine} -> executor "
                    f"{action.executor}",
                )
