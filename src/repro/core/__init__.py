"""Public API of the DEMOS/MP reproduction."""

from repro.core.config import SystemConfig
from repro.core.registry import (
    lookup_program,
    register_program,
    registered_programs,
)
from repro.core.system import MigrationTicket, System

__all__ = [
    "MigrationTicket",
    "System",
    "SystemConfig",
    "lookup_program",
    "register_program",
    "registered_programs",
]
