"""System-wide configuration.

One :class:`SystemConfig` describes a whole simulated DEMOS/MP
installation: the machine park, network characteristics, kernel tunables,
and which system processes to boot.  Everything the benchmarks sweep is a
field here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.kernel.kernel import KernelConfig, UndeliverablePolicy
from repro.net.channel import FaultPlan
from repro.net.topology import Topology

#: Topology shapes :func:`repro.core.system.System` knows how to build.
TOPOLOGY_SHAPES = (
    "mesh", "line", "ring", "star", "torus", "hypercube", "cliques",
)


@dataclass
class SystemConfig:
    """All the knobs for one simulated system."""

    # --- machines and network -----------------------------------------
    machines: int = 4
    topology: str = "mesh"
    latency: int = 100  #: per-wire propagation delay, microseconds
    bandwidth: int = 1_000  #: per-wire bandwidth, bytes per millisecond
    faults: FaultPlan = field(default_factory=FaultPlan)
    rto: int = 5_000  #: transport retransmission timeout, microseconds
    #: number of parallel execution shards the machine set is split into
    #: (1 = the classic single event loop; >1 selects the sharded engine,
    #: :class:`repro.sim.shard.ShardedSystem`)
    shards: int = 1
    #: decouple the injection grid from the communication cadence: shard
    #: pairs exchange hop records only every pair-minimum-latency ticks
    #: instead of at every global window, with batched pipe transport
    #: (see :mod:`repro.sim.barrier`).  Off by default — the classic
    #: per-window schedule stays available and is the reference.
    barrier_elision: bool = False
    #: latency of the topology's backbone wires (torus inter-row wires
    #: and column wraps; the clique gateway ring).  None keeps every
    #: wire at ``latency``.  A backbone slower than the local wires is
    #: what gives shard pairs a coarser exchange cadence than the
    #: global window grid.
    backbone_latency: int | None = None

    # --- kernels --------------------------------------------------------
    quantum: int = 1_000
    syscall_cpu_cost: int = 10
    memory_capacity: int = 1 << 22
    max_data_packet: int = 1_024
    undeliverable_policy: UndeliverablePolicy = UndeliverablePolicy.FORWARD
    leave_forwarding_address: bool = True
    send_link_updates: bool = True
    notify_process_manager: bool = False
    #: interval for kernels to push load/memory reports to the process
    #: manager and memory scheduler (0 disables reporting)
    load_report_interval: int = 0

    # --- system processes ------------------------------------------------
    boot_servers: bool = True
    #: machine hosting the switchboard / process manager / memory scheduler
    control_machine: int = 0
    #: machine hosting the four file-system processes
    file_system_machine: int = 1

    # --- bookkeeping ------------------------------------------------------
    seed: int = 0
    trace_categories: tuple[str, ...] | None = None
    max_trace_records: int | None = 200_000
    #: when False, the metrics registry hands out no-op instruments and
    #: snapshots come back empty — for throughput benchmarks that only
    #: read the kernels' plain integer counters
    metrics_enabled: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.machines < 1:
            raise ConfigError(
                f"need at least one machine, got {self.machines}"
            )
        if self.topology not in TOPOLOGY_SHAPES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGY_SHAPES}"
            )
        if self.topology == "hypercube" and (
            self.machines & (self.machines - 1)
        ):
            raise ConfigError(
                f"hypercube needs a power-of-two machine count, "
                f"got {self.machines}"
            )
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigError("latency must be >= 0 and bandwidth > 0")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.shards > self.machines:
            raise ConfigError(
                f"cannot split {self.machines} machines into "
                f"{self.shards} shards"
            )
        if self.shards > 1 and self.latency < 1:
            raise ConfigError(
                "sharded execution needs latency >= 1: the minimum wire "
                "latency is the conservative lookahead, and a zero "
                "lookahead admits no parallel window"
            )
        if self.backbone_latency is not None:
            if self.topology not in ("torus", "cliques"):
                raise ConfigError(
                    "backbone_latency applies only to topologies with a "
                    "backbone tier (torus, cliques); "
                    f"got {self.topology!r}"
                )
            if self.backbone_latency < self.latency:
                raise ConfigError(
                    "backbone_latency must be >= latency (the backbone "
                    "is the slow tier; a faster backbone would shrink "
                    "the conservative lookahead instead)"
                )
        if self.barrier_elision and self.latency < 1:
            raise ConfigError(
                "barrier elision needs latency >= 1: the minimum wire "
                "latency is the window grid the record keys are "
                "computed against"
            )
        if self.quantum <= 0 or self.syscall_cpu_cost <= 0:
            raise ConfigError("quantum and syscall cost must be positive")
        if self.max_data_packet <= 0:
            raise ConfigError("max_data_packet must be positive")
        if not 0 <= self.control_machine < self.machines:
            raise ConfigError("control_machine out of range")
        if (
            self.boot_servers
            and not 0 <= self.file_system_machine < self.machines
        ):
            raise ConfigError("file_system_machine out of range")
        if (
            self.undeliverable_policy is UndeliverablePolicy.RETURN_TO_SENDER
            and self.leave_forwarding_address
        ):
            raise ConfigError(
                "return-to-sender mode requires leave_forwarding_address="
                "False (the whole point of the ablation is no residual "
                "forwarding state)"
            )

    def build_topology(self) -> Topology:
        """Construct the machine topology this config describes.

        Shared by :class:`~repro.core.system.System` and the sharded
        engine, so both simulate exactly the same network.
        """
        shape = self.topology
        n = self.machines
        latency = self.latency
        bandwidth = self.bandwidth
        if shape == "torus":
            rows = near_square_factor(n)
            return Topology.torus2d(
                rows, n // rows, latency, bandwidth,
                backbone_latency=self.backbone_latency,
            )
        if shape == "hypercube":
            # validate() guarantees n is a power of two
            return Topology.hypercube(n.bit_length() - 1, latency, bandwidth)
        if shape == "cliques":
            size = near_square_factor(n)
            return Topology.ring_of_cliques(
                n // size, size, latency, bandwidth,
                backbone_latency=self.backbone_latency,
            )
        builder = {
            "mesh": Topology.full_mesh,
            "line": Topology.line,
            "ring": Topology.ring,
            "star": Topology.star,
        }[shape]
        return builder(n, latency, bandwidth)

    def kernel_config(self) -> KernelConfig:
        """The per-kernel slice of this system config."""
        return KernelConfig(
            quantum=self.quantum,
            syscall_cpu_cost=self.syscall_cpu_cost,
            memory_capacity=self.memory_capacity,
            max_data_packet=self.max_data_packet,
            undeliverable_policy=self.undeliverable_policy,
            leave_forwarding_address=self.leave_forwarding_address,
            send_link_updates=self.send_link_updates,
            notify_process_manager=self.notify_process_manager,
        )


def near_square_factor(n: int) -> int:
    """The largest divisor of *n* that is <= sqrt(n).

    Shapes a machine count into the most-square grid (torus) or pod
    layout (cliques) it divides into; for a prime count this degenerates
    to 1 x n, which is still a valid (ring-like) arrangement.
    """
    factor = 1
    d = 2
    while d * d <= n:
        if n % d == 0:
            factor = d
        d += 1
    return factor
