"""System-wide configuration.

One :class:`SystemConfig` describes a whole simulated DEMOS/MP
installation: the machine park, network characteristics, kernel tunables,
and which system processes to boot.  Everything the benchmarks sweep is a
field here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.kernel.kernel import UndeliverablePolicy
from repro.net.channel import FaultPlan

#: Topology shapes :func:`repro.core.system.System` knows how to build.
TOPOLOGY_SHAPES = (
    "mesh", "line", "ring", "star", "torus", "hypercube", "cliques",
)


@dataclass
class SystemConfig:
    """All the knobs for one simulated system."""

    # --- machines and network -----------------------------------------
    machines: int = 4
    topology: str = "mesh"
    latency: int = 100  #: per-wire propagation delay, microseconds
    bandwidth: int = 1_000  #: per-wire bandwidth, bytes per millisecond
    faults: FaultPlan = field(default_factory=FaultPlan)
    rto: int = 5_000  #: transport retransmission timeout, microseconds

    # --- kernels --------------------------------------------------------
    quantum: int = 1_000
    syscall_cpu_cost: int = 10
    memory_capacity: int = 1 << 22
    max_data_packet: int = 1_024
    undeliverable_policy: UndeliverablePolicy = UndeliverablePolicy.FORWARD
    leave_forwarding_address: bool = True
    send_link_updates: bool = True
    notify_process_manager: bool = False
    #: interval for kernels to push load/memory reports to the process
    #: manager and memory scheduler (0 disables reporting)
    load_report_interval: int = 0

    # --- system processes ------------------------------------------------
    boot_servers: bool = True
    #: machine hosting the switchboard / process manager / memory scheduler
    control_machine: int = 0
    #: machine hosting the four file-system processes
    file_system_machine: int = 1

    # --- bookkeeping ------------------------------------------------------
    seed: int = 0
    trace_categories: tuple[str, ...] | None = None
    max_trace_records: int | None = 200_000
    #: when False, the metrics registry hands out no-op instruments and
    #: snapshots come back empty — for throughput benchmarks that only
    #: read the kernels' plain integer counters
    metrics_enabled: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        if self.machines < 1:
            raise ConfigError(f"need at least one machine, got {self.machines}")
        if self.topology not in TOPOLOGY_SHAPES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGY_SHAPES}"
            )
        if self.topology == "hypercube" and (
            self.machines & (self.machines - 1)
        ):
            raise ConfigError(
                f"hypercube needs a power-of-two machine count, "
                f"got {self.machines}"
            )
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigError("latency must be >= 0 and bandwidth > 0")
        if self.quantum <= 0 or self.syscall_cpu_cost <= 0:
            raise ConfigError("quantum and syscall cost must be positive")
        if self.max_data_packet <= 0:
            raise ConfigError("max_data_packet must be positive")
        if not 0 <= self.control_machine < self.machines:
            raise ConfigError("control_machine out of range")
        if self.boot_servers and not 0 <= self.file_system_machine < self.machines:
            raise ConfigError("file_system_machine out of range")
        if (
            self.undeliverable_policy is UndeliverablePolicy.RETURN_TO_SENDER
            and self.leave_forwarding_address
        ):
            raise ConfigError(
                "return-to-sender mode requires leave_forwarding_address="
                "False (the whole point of the ablation is no residual "
                "forwarding state)"
            )
