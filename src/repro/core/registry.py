"""A global registry of named, spawnable programs.

The process manager creates processes by name (OP_SPAWN requests carry a
program name, not code), so workloads and servers register their program
factories here.  ``System`` copies the registry into every kernel at boot.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.errors import ConfigError

F = TypeVar("F", bound=Callable)

_PROGRAMS: dict[str, Callable] = {}


def register_program(name: str) -> Callable[[F], F]:
    """Class/function decorator registering a program factory by name.

    The factory is called as ``factory(ctx, **params)`` and must return a
    generator (the program).
    """

    def decorator(factory: F) -> F:
        if name in _PROGRAMS and _PROGRAMS[name] is not factory:
            raise ConfigError(f"program {name!r} registered twice")
        _PROGRAMS[name] = factory
        return factory

    return decorator


def lookup_program(name: str) -> Callable:
    """The factory registered under *name*."""
    try:
        return _PROGRAMS[name]
    except KeyError:
        raise ConfigError(f"no program registered as {name!r}") from None


def registered_programs() -> dict[str, Callable]:
    """A copy of the whole registry (name -> factory)."""
    return dict(_PROGRAMS)
