"""The top-level System object: build, boot, run, migrate, inspect.

This is the library's public entry point::

    from repro import System, SystemConfig

    system = System(SystemConfig(machines=4))
    pid = system.spawn(my_program, machine=2, name="worker")
    ticket = system.migrate(pid, dest=3)
    system.run()
    assert ticket.success

A ``System`` owns one event loop, one network, and one kernel per machine,
and (by default) boots the paper's system processes: switchboard, process
manager, memory scheduler, the four-process file system, and the command
interpreter (Figure 2-3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.config import SystemConfig
from repro.core.registry import registered_programs
from repro.errors import ConfigError, UnknownProcessError
from repro.kernel.context import ProcessContext
from repro.kernel.ids import ProcessAddress, ProcessId, kernel_address
from repro.kernel.kernel import Kernel
from repro.kernel.memory import MemoryImage
from repro.kernel.process_state import ProcessState
from repro.net.network import Network
from repro.net.topology import MachineId
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector
from repro.sim.loop import EventLoop
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.stats.migration_cost import MigrationCostRecord

Program = Callable[[ProcessContext], Any]


def boot_standard_servers(system: Any) -> None:
    """Spawn the Figure 2-3 system processes in dependency order.

    *system* is duck-typed: it needs ``config``, ``topology``,
    ``kernel()``, ``well_known`` and ``server_pids``.  Shared by
    :class:`System` and :class:`repro.sim.shard.ShardedSystem`, so both
    boot bit-identical server populations.
    """
    from repro.servers.command_interpreter import command_interpreter_program
    from repro.servers.filesystem import boot_file_system
    from repro.servers.memory_scheduler import memory_scheduler_program
    from repro.servers.process_manager import process_manager_program
    from repro.servers.switchboard import switchboard_program

    control = system.config.control_machine
    machine_count = system.config.machines
    boot_server(system, "switchboard", switchboard_program, control)
    boot_server(
        system,
        "memory_scheduler",
        lambda ctx: memory_scheduler_program(ctx, machines=machine_count),
        control,
    )
    # The process manager holds a link to every kernel ("they control
    # processes by sending messages to kernels").
    kernel_links = {
        f"kernel:{m}": kernel_address(m) for m in system.topology.machines
    }
    boot_server(
        system, "process_manager", process_manager_program, control,
        extra_links=kernel_links,
    )
    boot_file_system(system, system.config.file_system_machine)
    boot_server(
        system, "command_interpreter", command_interpreter_program, control,
    )


def boot_server(
    system: Any,
    name: str,
    program: Program,
    machine: MachineId,
    extra_links: dict[str, ProcessAddress] | None = None,
) -> ProcessId:
    """Spawn one well-known server and publish its address."""
    pid = system.kernel(machine).spawn(
        program, name=name, extra_links=extra_links,
    )
    system.well_known[name] = ProcessAddress(pid, machine)
    system.server_pids[name] = pid
    return pid


@dataclass
class MigrationTicket:
    """Tracks one requested migration to completion."""

    pid: ProcessId
    dest: MachineId
    initiated: bool = False
    done: bool = False
    success: bool | None = None
    record: MigrationCostRecord | None = None

    def _complete(self, success: bool, record: MigrationCostRecord) -> None:
        self.done = True
        self.success = success
        self.record = record


class System:
    """One simulated DEMOS/MP installation."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.config.validate()
        self.loop = EventLoop()
        self.tracer = Tracer(
            lambda: self.loop.now,
            max_records=self.config.max_trace_records,
            enabled_categories=self.config.trace_categories,
        )
        self.rngs = RandomStreams(self.config.seed)
        #: the system-wide metrics registry every component publishes into
        self.metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
        self.metrics.register_collector(self._publish_sim_metrics)
        #: migration spans assembled live from the tracer stream
        self.spans = SpanCollector(self.tracer)
        self.topology = self.config.build_topology()
        self.network = Network(
            self.loop,
            self.topology,
            tracer=self.tracer,
            rngs=self.rngs,
            faults=self.config.faults,
            rto=self.config.rto,
            metrics=self.metrics,
        )
        #: shared by every kernel; server boots add entries as they come up
        self.well_known: dict[str, ProcessAddress] = {}
        self.kernels: list[Kernel] = [
            Kernel(
                machine,
                self.loop,
                self.network,
                self.tracer,
                config=self.config.kernel_config(),
                well_known=self.well_known,
                metrics=self.metrics,
            )
            for machine in self.topology.machines
        ]
        for name, factory in registered_programs().items():
            for kernel in self.kernels:
                kernel.register_program(name, factory)
        #: pids of the system processes booted at start-up, by service name
        self.server_pids: dict[str, ProcessId] = {}
        if self.config.boot_servers:
            boot_standard_servers(self)
        self._load_reporting = False
        if self.config.load_report_interval > 0:
            self.start_load_reporting()

    # ------------------------------------------------------------------
    # Load reporting (§3.1: "The process manager and memory scheduler
    # already monitor system activity for memory and cpu scheduling, and
    # can use the same information to make process migration decisions.")
    # ------------------------------------------------------------------

    def start_load_reporting(self) -> None:
        """Make every kernel push periodic load/memory reports to the
        process manager and memory scheduler.

        Note: while reporting is active the event loop never drains; run
        the system with an explicit ``until`` and call
        :meth:`stop_load_reporting` before draining.
        """
        self._load_reporting = True
        interval = max(1, self.config.load_report_interval)
        self.loop.call_after(interval, self._report_loads)

    def stop_load_reporting(self) -> None:
        """Cease pushing load reports after the current tick."""
        self._load_reporting = False

    def _report_loads(self) -> None:
        if not self._load_reporting:
            return
        from repro.kernel.messages import MessageKind

        pm = self.well_known.get("process_manager")
        ms = self.well_known.get("memory_scheduler")
        for kernel in self.kernels:
            snapshot = kernel.load_snapshot()
            if pm is not None:
                kernel.send_to_process(
                    pm, "report-load", snapshot, payload_bytes=10,
                    kind=MessageKind.USER, category="load",
                )
            if ms is not None:
                kernel.send_to_process(
                    ms, "report-memory",
                    {"machine": kernel.machine,
                     "free": snapshot["memory_free"]},
                    payload_bytes=8, kind=MessageKind.USER,
                    category="load",
                )
        self.loop.call_after(
            max(1, self.config.load_report_interval), self._report_loads,
        )

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def _publish_sim_metrics(self, registry: MetricsRegistry) -> None:
        """Registry collector for event-loop and tracer level facts."""
        registry.gauge("sim.now_us").set(self.loop.now)
        registry.counter("sim.events_fired").set_total(self.loop.events_fired)
        registry.gauge("sim.trace_records").set(len(self.tracer))
        registry.counter("sim.trace_dropped").set_total(self.tracer.dropped)
        registry.gauge("sim.migration_spans").set(len(self.spans))

    def kernel(self, machine: MachineId) -> Kernel:
        """The kernel running on *machine*."""
        try:
            return self.kernels[machine]
        except IndexError:
            raise ConfigError(f"no machine {machine}") from None

    def domain_view(self, machines: list[MachineId]) -> "SystemDomainView":
        """A window onto a subset of machines, for per-domain policies.

        Shaped like :class:`repro.sim.shard.DomainView`, so a
        :class:`~repro.policy.load_balancer.DomainLoadBalancer` runs
        unchanged against a single-loop system — same decisions, same
        traces — which is how benchmarks compare policies without
        paying for sharded execution.
        """
        return SystemDomainView(self, machines)

    def spawn(
        self,
        program: Program,
        machine: MachineId = 0,
        name: str = "",
        memory: MemoryImage | None = None,
        priority: int = 0,
    ) -> ProcessId:
        """Create a process on *machine* running *program*."""
        return self.kernel(machine).spawn(
            program, name=name, memory=memory, priority=priority,
        )

    def migrate(
        self,
        pid: ProcessId,
        dest: MachineId,
        on_done: Callable[[bool, MigrationCostRecord], None] | None = None,
    ) -> MigrationTicket:
        """Ask the kernel currently hosting *pid* to migrate it to *dest*.

        This is the direct mechanism-level entry (what the process manager
        does internally); returns a ticket that fills in when the source
        kernel sees the migration finish.
        """
        ticket = MigrationTicket(pid, dest)
        kernel = self.kernel_hosting(pid)
        if kernel is None:
            raise UnknownProcessError(f"{pid} is not running anywhere")

        def _done(success: bool, record: MigrationCostRecord) -> None:
            ticket._complete(success, record)
            if on_done is not None:
                on_done(success, record)

        ticket.initiated = kernel.migration.start(pid, dest, on_done=_done)
        return ticket

    def run(
        self, until: int | None = None, max_events: int | None = None
    ) -> int:
        """Run the simulation; with *until*, stop the clock there."""
        if until is None:
            return self.loop.run(max_events=max_events)
        return self.loop.run_until(until, max_events=max_events)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def kernel_hosting(self, pid: ProcessId) -> Kernel | None:
        """The kernel where *pid* currently lives (omniscient; for tests,
        benchmarks and the embedded process manager)."""
        for kernel in self.kernels:
            if pid in kernel.processes:
                return kernel
        return None

    def where_is(self, pid: ProcessId) -> MachineId | None:
        """The machine currently hosting *pid*, or None."""
        kernel = self.kernel_hosting(pid)
        return kernel.machine if kernel is not None else None

    def process_state(self, pid: ProcessId) -> ProcessState | None:
        """The live state object for *pid*, wherever it is."""
        kernel = self.kernel_hosting(pid)
        return kernel.processes[pid] if kernel is not None else None

    def is_alive(self, pid: ProcessId) -> bool:
        """Whether *pid* is still running somewhere."""
        return self.kernel_hosting(pid) is not None

    def migration_records(self) -> list[MigrationCostRecord]:
        """Every completed migration's cost record, across all kernels,
        ordered by start time."""
        records = [
            record
            for kernel in self.kernels
            for record in kernel.migration.completed
        ]
        return sorted(records, key=lambda r: r.started_at)

    def total_forwarding_entries(self) -> int:
        """Forwarding addresses currently installed system-wide."""
        return sum(len(k.forwarding) for k in self.kernels)

    def loads(self) -> dict[MachineId, dict[str, Any]]:
        """Per-machine load snapshots (the §3.1 decision inputs)."""
        return {k.machine: k.load_snapshot() for k in self.kernels}

    def __repr__(self) -> str:
        return (
            f"System(machines={self.config.machines},"
            f" now={self.loop.now}us, events={self.loop.events_fired})"
        )


class SystemDomainView:
    """A domain-scoped window onto a single-loop :class:`System`.

    Duck-types :class:`repro.sim.shard.DomainView` (``loop``, ``tracer``,
    ``metrics``, ``kernels``, ``kernel()``), so per-domain policies see
    the same interface whether the system runs sharded or not.
    """

    def __init__(self, system: System, machines: list[MachineId]) -> None:
        self.loop = system.loop
        self.tracer = system.tracer
        self.metrics = system.metrics
        self.kernels = [system.kernel(m) for m in machines]
        self._by_machine = {k.machine: k for k in self.kernels}

    def kernel(self, machine: MachineId) -> Kernel:
        try:
            return self._by_machine[machine]
        except KeyError:
            raise ConfigError(
                f"machine {machine} is outside this domain"
            ) from None
