"""Exception hierarchy for the DEMOS/MP reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class ClockError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class NetworkError(ReproError):
    """Base class for network-layer failures."""


class UnknownMachineError(NetworkError):
    """A packet was addressed to a machine that does not exist."""


class NoRouteError(NetworkError):
    """The topology has no path between two machines."""


class KernelError(ReproError):
    """Base class for kernel-layer failures."""


class UnknownProcessError(KernelError):
    """An operation referenced a process id the kernel does not know."""


class InvalidLinkError(KernelError):
    """A process used a link id that is not in its link table."""


class LinkAccessError(KernelError):
    """A data-area operation exceeded the access granted by the link."""


class ProcessStateError(KernelError):
    """An operation is invalid for the process's current status."""


class TransferError(KernelError):
    """A move-data transfer could not complete."""


class MigrationError(KernelError):
    """A migration could not be started or completed."""


class MigrationRefusedError(MigrationError):
    """The destination kernel refused to accept the process (autonomy)."""


class MemoryError_(KernelError):
    """A kernel memory allocation failed (name avoids the builtin)."""


class ServerError(ReproError):
    """A system server returned a failure reply."""


class FileSystemError(ServerError):
    """A file-system request failed (unknown file, bad offset, ...)."""


class SwitchboardError(ServerError):
    """A switchboard lookup or registration failed."""


class ConfigError(ReproError):
    """A SystemConfig value is out of range or inconsistent."""
