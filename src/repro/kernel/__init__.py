"""The DEMOS/MP kernel: processes, links, messages, and migration.

One :class:`~repro.kernel.kernel.Kernel` per machine implements message
delivery (with forwarding addresses and link updates), the syscall engine
that runs generator-based programs, the move-data facility, and the
eight-step migration mechanism.
"""

from repro.kernel.context import ProcessContext
from repro.kernel.forwarding import (
    FORWARDING_ADDRESS_BYTES,
    ForwardingAddress,
    ForwardingTable,
)
from repro.kernel.ids import (
    KERNEL_LOCAL_ID,
    PROCESS_ADDRESS_BYTES,
    PROCESS_ID_BYTES,
    ProcessAddress,
    ProcessId,
    kernel_address,
    kernel_pid,
)
from repro.kernel.kernel import (
    Kernel,
    KernelConfig,
    KernelStats,
    UndeliverablePolicy,
)
from repro.kernel.links import (
    DataArea,
    Link,
    LinkAttribute,
    LinkSnapshot,
    LinkTable,
)
from repro.kernel.linkupdate import LinkUpdate, OP_LINK_UPDATE
from repro.kernel.memory import (
    MemoryImage,
    MemoryManager,
    MemorySegment,
    SegmentKind,
)
from repro.kernel.messages import Message, MessageKind
from repro.kernel.migration import MigrationEngine
from repro.kernel.process_state import (
    ProcessAccounting,
    ProcessState,
    ProcessStatus,
    RESIDENT_STATE_BYTES,
    SWAPPABLE_STATE_BASE_BYTES,
)
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.syscalls import (
    Compute,
    CreateLink,
    DestroyLink,
    DupLink,
    Exit,
    GetInfo,
    MoveData,
    Receive,
    RequestMigration,
    Send,
    Sleep,
    Syscall,
    Yield,
)

__all__ = [
    "Compute",
    "CreateLink",
    "DataArea",
    "DestroyLink",
    "DupLink",
    "Exit",
    "FORWARDING_ADDRESS_BYTES",
    "ForwardingAddress",
    "ForwardingTable",
    "GetInfo",
    "KERNEL_LOCAL_ID",
    "Kernel",
    "KernelConfig",
    "KernelStats",
    "Link",
    "LinkAttribute",
    "LinkSnapshot",
    "LinkTable",
    "LinkUpdate",
    "MemoryImage",
    "MemoryManager",
    "MemorySegment",
    "Message",
    "MessageKind",
    "MigrationEngine",
    "MoveData",
    "OP_LINK_UPDATE",
    "PROCESS_ADDRESS_BYTES",
    "PROCESS_ID_BYTES",
    "ProcessAccounting",
    "ProcessAddress",
    "ProcessContext",
    "ProcessId",
    "ProcessState",
    "ProcessStatus",
    "RESIDENT_STATE_BYTES",
    "Receive",
    "RequestMigration",
    "RoundRobinScheduler",
    "SWAPPABLE_STATE_BASE_BYTES",
    "SegmentKind",
    "Send",
    "Sleep",
    "Syscall",
    "UndeliverablePolicy",
    "Yield",
    "kernel_address",
    "kernel_pid",
]
