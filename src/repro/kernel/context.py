"""The process-side view of the kernel.

A :class:`ProcessContext` is handed to every program when it is spawned.
It provides read-only information (pid, current machine, simulated time),
the bootstrap links minted at creation (switchboard, process manager, ...),
and sugar constructors for the syscall dataclasses so programs read
naturally::

    def worker(ctx):
        yield ctx.compute(5_000)
        msg = yield ctx.receive()
        yield ctx.send(msg.delivered_link_ids[0], op="done")

Migration rebinds the context to the destination kernel, so ``ctx.machine``
always reports where the process actually is — programs can watch
themselves move.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.kernel.ids import ProcessId
from repro.kernel.links import DataArea, LinkAttribute
from repro.kernel.syscalls import (
    Compute,
    CreateLink,
    DestroyLink,
    DupLink,
    Exit,
    GetInfo,
    MoveData,
    Receive,
    RequestMigration,
    Send,
    Sleep,
    Yield,
)
from repro.net.topology import MachineId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel


class ProcessContext:
    """Everything a program can see and do."""

    def __init__(self, kernel: "Kernel", pid: ProcessId) -> None:
        self._kernel = kernel
        self.pid = pid
        #: well-known service name -> link id, minted at spawn
        self.bootstrap: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def machine(self) -> MachineId:
        """The machine this process is currently executing on."""
        return self._kernel.machine

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._kernel.loop.now

    def rebind(self, kernel: "Kernel") -> None:
        """Point this context at the kernel that now hosts the process
        (called by the migration engine at restart, step 8)."""
        self._kernel = kernel

    # ------------------------------------------------------------------
    # Syscall sugar — each returns a syscall object to be yielded
    # ------------------------------------------------------------------

    def send(
        self,
        link_id: int,
        op: str = "msg",
        payload: Any = None,
        payload_bytes: int = 32,
        links: tuple[int, ...] = (),
        deliver_to_kernel: bool = False,
    ) -> Send:
        """Send a message over *link_id*."""
        return Send(
            link_id, op, payload, payload_bytes, links, deliver_to_kernel
        )

    def receive(self, timeout: int | None = None) -> Receive:
        """Wait for the next incoming message."""
        return Receive(timeout)

    def create_link(
        self,
        attributes: LinkAttribute = LinkAttribute.NONE,
        data_area: DataArea | None = None,
    ) -> CreateLink:
        """Create a link pointing at me."""
        return CreateLink(attributes, data_area)

    def dup_link(self, link_id: int) -> DupLink:
        """Duplicate one of my links."""
        return DupLink(link_id)

    def destroy_link(self, link_id: int) -> DestroyLink:
        """Destroy one of my links."""
        return DestroyLink(link_id)

    def compute(self, duration: int) -> Compute:
        """Burn CPU for *duration* microseconds (contended)."""
        return Compute(duration)

    def sleep(self, duration: int) -> Sleep:
        """Block off-CPU for *duration* microseconds."""
        return Sleep(duration)

    def move_data(
        self,
        link_id: int,
        direction: str,
        offset: int,
        length: int,
    ) -> MoveData:
        """Bulk transfer through a data-area link."""
        return MoveData(link_id, direction, offset, length)

    def request_migration(self, destination: MachineId) -> RequestMigration:
        """Ask the system to move me to *destination*."""
        return RequestMigration(destination)

    def exit(self, code: int = 0) -> Exit:
        """Terminate."""
        return Exit(code)

    def get_info(self) -> GetInfo:
        """Fetch pid / machine / time / queue length."""
        return GetInfo()

    def yield_cpu(self) -> Yield:
        """Let someone else run."""
        return Yield()

    def __repr__(self) -> str:
        return f"ProcessContext({self.pid} on machine {self.machine})"
