"""The move-data facility (paper §2.2).

"In addition to providing a message path, a link may also provide access
to a memory area in another process. ... This is the mechanism for large
data transfers, such as file accesses or data transfer in process
migration.  The kernel implements the data move operation by sending a
sequence of messages containing the data to be transferred.  These
messages are sent over a DELIVERTOKERNEL link to the kernel of [the]
process containing the data area."

Everything here rides DELIVERTOKERNEL messages addressed to *processes*,
so transfers transparently survive migration of either endpoint: requests
chase the data-area owner through forwarding addresses, chunks and
completions chase the holder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import LinkAccessError, TransferError
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.links import Link, LinkAttribute
from repro.kernel.messages import Message
from repro.kernel.ops import (
    CONTROL_PAYLOAD_BYTES,
    OP_DMA_ERROR,
    OP_DMA_READ_CHUNK,
    OP_DMA_READ_REQ,
    OP_DMA_WRITE_CHUNK,
    OP_TRANSFER_DONE,
)
from repro.kernel.process_state import ProcessState, ProcessStatus
from repro.kernel.syscalls import MoveData
from repro.net.topology import MachineId

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

#: Bytes copied per microsecond for same-machine transfers (a memcpy).
LOCAL_COPY_BYTES_PER_USEC = 200

TransferId = tuple[MachineId, int]


@dataclass
class _IncomingWrite:
    """Owner-side bookkeeping for a write transfer in progress."""

    transfer_id: TransferId
    holder: ProcessAddress
    total: int
    received: int = 0


class TransferManager:
    """Per-kernel engine for blocking MoveData transfers."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._next_id = 0
        self._incoming_writes: dict[TransferId, _IncomingWrite] = {}
        self.completed_transfers = 0
        self.failed_transfers = 0
        kernel.register_process_control(OP_DMA_READ_REQ, self._on_read_request)
        kernel.register_process_control(OP_DMA_READ_CHUNK, self._on_read_chunk)
        kernel.register_process_control(
            OP_DMA_WRITE_CHUNK, self._on_write_chunk
        )
        kernel.register_process_control(OP_TRANSFER_DONE, self._on_done)
        kernel.register_process_control(OP_DMA_ERROR, self._on_error)
        kernel.undeliverable_hooks.append(self._on_undeliverable)

    # ------------------------------------------------------------------
    # Holder side: the MoveData syscall
    # ------------------------------------------------------------------

    def start_move(self, state: ProcessState, call: MoveData) -> None:
        """Begin servicing a MoveData syscall for the local process."""
        link = state.link_table.get(call.link_id)
        self._check_access(link, call)
        area = link.data_area
        assert area is not None
        absolute = area.offset + call.offset

        self._next_id += 1
        transfer_id: TransferId = (self.kernel.machine, self._next_id)
        state.pending_syscall = call
        state.status = ProcessStatus.WAITING_TRANSFER
        state.transfer_id = transfer_id
        state.transfer_total = call.length
        state.transfer_received = 0
        self.kernel.tracer.record(
            "kernel", "dma-start", pid=str(state.pid),
            direction=call.direction, length=call.length,
            owner=str(link.target_pid),
        )

        owner_state = self.kernel.processes.get(link.target_pid)
        if (
            owner_state is not None
            and link.address.last_known_machine == self.kernel.machine
        ):
            self._local_copy(state, owner_state, call, transfer_id, absolute)
            return

        holder = ProcessAddress(state.pid, self.kernel.machine)
        if call.direction == "read":
            self.kernel.send_to_process(
                link.address, OP_DMA_READ_REQ,
                {
                    "transfer_id": transfer_id,
                    "offset": absolute,
                    "length": call.length,
                    "holder": holder,
                },
                payload_bytes=CONTROL_PAYLOAD_BYTES[OP_DMA_READ_REQ],
                deliver_to_kernel=True,
                category="dma",
            )
        else:
            self._stream_write(state, link, transfer_id, absolute, call.length)

    def _check_access(self, link: Link, call: MoveData) -> None:
        if call.direction not in ("read", "write"):
            raise TransferError(f"bad MoveData direction {call.direction!r}")
        if link.data_area is None:
            raise LinkAccessError("link grants no data area")
        needed = (
            LinkAttribute.DATA_READ
            if call.direction == "read"
            else LinkAttribute.DATA_WRITE
        )
        if not link.attributes & needed:
            raise LinkAccessError(
                f"link lacks {needed.name} for a {call.direction}"
            )
        absolute = link.data_area.offset + call.offset
        if not link.data_area.contains(absolute, call.length):
            raise LinkAccessError(
                f"window [{call.offset}, +{call.length}) exceeds the "
                f"granted data area {link.data_area}"
            )

    def _local_copy(
        self,
        holder: ProcessState,
        owner: ProcessState,
        call: MoveData,
        transfer_id: TransferId,
        absolute: int,
    ) -> None:
        """Same-machine transfer: a bounded-rate memory copy, no network."""
        if not owner.memory.address_space_contains(absolute, call.length):
            self._fail_holder(holder, "data area outside owner memory")
            return
        delay = call.length // LOCAL_COPY_BYTES_PER_USEC + 1
        self.kernel.loop.call_after(
            delay, self._complete_holder, holder.pid, transfer_id, call.length
        )

    def _stream_write(
        self,
        holder: ProcessState,
        link: Link,
        transfer_id: TransferId,
        absolute: int,
        length: int,
    ) -> None:
        holder_addr = ProcessAddress(holder.pid, self.kernel.machine)
        chunk = self.kernel.config.max_data_packet
        count = max(1, math.ceil(length / chunk))
        sent = 0
        for i in range(count):
            nbytes = min(chunk, length - sent)
            sent += nbytes
            self.kernel.send_to_process(
                link.address, OP_DMA_WRITE_CHUNK,
                {
                    "transfer_id": transfer_id,
                    "offset": absolute,
                    "total": length,
                    "nbytes": nbytes,
                    "holder": holder_addr,
                },
                payload_bytes=nbytes,
                deliver_to_kernel=True,
                category="datamove",
            )

    # ------------------------------------------------------------------
    # Owner side
    # ------------------------------------------------------------------

    def _on_read_request(self, owner: ProcessState, message: Message) -> None:
        payload = message.payload
        transfer_id: TransferId = payload["transfer_id"]
        holder: ProcessAddress = payload["holder"]
        offset, length = payload["offset"], payload["length"]
        if not owner.memory.address_space_contains(offset, length):
            self._send_error(
                holder, transfer_id, "window outside owner memory"
            )
            return
        chunk = self.kernel.config.max_data_packet
        count = max(1, math.ceil(length / chunk))
        sent = 0
        for _ in range(count):
            nbytes = min(chunk, length - sent)
            sent += nbytes
            self.kernel.send_to_process(
                holder, OP_DMA_READ_CHUNK,
                {
                    "transfer_id": transfer_id,
                    "nbytes": nbytes,
                    "total": length,
                },
                payload_bytes=nbytes,
                deliver_to_kernel=True,
                category="datamove",
            )

    def _on_write_chunk(self, owner: ProcessState, message: Message) -> None:
        payload = message.payload
        transfer_id: TransferId = payload["transfer_id"]
        entry = self._incoming_writes.get(transfer_id)
        if entry is None:
            if not owner.memory.address_space_contains(
                payload["offset"], payload["total"]
            ):
                self._send_error(
                    payload["holder"], transfer_id,
                    "window outside owner memory",
                )
                return
            entry = _IncomingWrite(
                transfer_id, payload["holder"], payload["total"]
            )
            self._incoming_writes[transfer_id] = entry
        entry.received += payload["nbytes"]
        if entry.received >= entry.total:
            del self._incoming_writes[transfer_id]
            self.kernel.send_to_process(
                entry.holder, OP_TRANSFER_DONE,
                {"transfer_id": transfer_id, "bytes": entry.total},
                payload_bytes=CONTROL_PAYLOAD_BYTES[OP_TRANSFER_DONE],
                deliver_to_kernel=True,
                category="dma",
            )

    # ------------------------------------------------------------------
    # Holder-side completion
    # ------------------------------------------------------------------

    def _on_read_chunk(self, holder: ProcessState, message: Message) -> None:
        payload = message.payload
        if holder.transfer_id != payload["transfer_id"]:
            self.kernel.tracer.record(
                "kernel", "dma-stale-chunk", pid=str(holder.pid),
            )
            return
        holder.transfer_received += payload["nbytes"]
        if holder.transfer_received >= holder.transfer_total:
            self._finish(holder, holder.transfer_total)

    def _on_done(self, holder: ProcessState, message: Message) -> None:
        payload = message.payload
        if holder.transfer_id != payload["transfer_id"]:
            return
        self._finish(holder, payload["bytes"])

    def _on_error(self, holder: ProcessState, message: Message) -> None:
        payload = message.payload
        if holder.transfer_id != payload.get("transfer_id"):
            return
        self._fail_holder(holder, payload.get("reason", "transfer failed"))

    def _complete_holder(
        self, pid: ProcessId, transfer_id: TransferId, nbytes: int
    ) -> None:
        """Local-copy completion; chases the holder if it migrated away."""
        holder = self.kernel.processes.get(pid)
        if (
            holder is not None
            and holder.status is not ProcessStatus.IN_MIGRATION
        ):
            if holder.transfer_id == transfer_id:
                self._finish(holder, nbytes)
            return
        self.kernel.send_to_process(
            ProcessAddress(pid, self.kernel.machine), OP_TRANSFER_DONE,
            {"transfer_id": transfer_id, "bytes": nbytes},
            payload_bytes=CONTROL_PAYLOAD_BYTES[OP_TRANSFER_DONE],
            deliver_to_kernel=True,
            category="dma",
        )

    def _finish(self, holder: ProcessState, nbytes: int) -> None:
        holder.transfer_id = None
        holder.transfer_total = 0
        holder.transfer_received = 0
        holder.pending_syscall = None
        holder.resume_value = nbytes
        self.completed_transfers += 1
        self.kernel.tracer.record(
            "kernel", "dma-done", pid=str(holder.pid), bytes=nbytes,
        )
        holder.status = ProcessStatus.READY
        self.kernel.scheduler.enqueue(holder.pid, holder.priority)
        self.kernel._maybe_dispatch()

    def _fail_holder(self, holder: ProcessState, reason: str) -> None:
        holder.transfer_id = None
        holder.pending_syscall = None
        holder.resume_error = TransferError(reason)
        self.failed_transfers += 1
        self.kernel.tracer.record(
            "kernel", "dma-failed", pid=str(holder.pid), reason=reason,
        )
        holder.status = ProcessStatus.READY
        self.kernel.scheduler.enqueue(holder.pid, holder.priority)
        self.kernel._maybe_dispatch()

    def _send_error(
        self, holder: ProcessAddress, transfer_id: TransferId, reason: str
    ) -> None:
        self.kernel.send_to_process(
            holder, OP_DMA_ERROR,
            {"transfer_id": transfer_id, "reason": reason},
            payload_bytes=CONTROL_PAYLOAD_BYTES[OP_DMA_ERROR],
            deliver_to_kernel=True,
            category="dma",
        )

    # ------------------------------------------------------------------
    # Undeliverable hook: fail the holder instead of hanging it
    # ------------------------------------------------------------------

    def _on_undeliverable(self, message: Message) -> bool:
        if message.op not in (OP_DMA_READ_REQ, OP_DMA_WRITE_CHUNK):
            return False
        payload = message.payload or {}
        holder = payload.get("holder")
        if holder is None:
            return False
        self._send_error(
            holder, payload.get("transfer_id"),
            f"data-area owner {message.dest.pid} does not exist",
        )
        return True
