"""Forwarding addresses (paper §4, Figure 4-1).

"A forwarding address is a degenerate process state, whose only contents
are the (last known) machine to which the process was migrated."  It costs
8 bytes and lives in the kernel's process namespace: the normal message
delivery system finds it exactly where the process used to be and, instead
of queueing, rewrites the message's destination machine and resubmits it.

Forwarding addresses are garbage-collected when the process dies, by
pointers backwards along the path of migration (the process state carries
its residence history).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.ids import ProcessId
from repro.net.topology import MachineId

#: Paper §4: "In the current implementation, it uses 8 bytes of storage."
FORWARDING_ADDRESS_BYTES = 8


@dataclass
class ForwardingAddress:
    """A degenerate process state: pid -> machine it migrated to."""

    pid: ProcessId
    machine: MachineId
    created_at: int
    #: messages this entry has forwarded (diagnostics / GC heuristics)
    forwards: int = 0

    @property
    def size_bytes(self) -> int:
        """Storage used on the source machine."""
        return FORWARDING_ADDRESS_BYTES


class ForwardingTable:
    """All forwarding addresses held by one kernel."""

    def __init__(self) -> None:
        self._entries: dict[ProcessId, ForwardingAddress] = {}
        self.total_forwards = 0
        self.collected = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self._entries

    def install(self, pid: ProcessId, machine: MachineId, now: int) -> None:
        """Leave a forwarding address after migration step 7.

        Re-installing for the same pid (the process migrated away, came
        back, and left again) simply replaces the old pointer.
        """
        self._entries[pid] = ForwardingAddress(pid, machine, now)

    def lookup(self, pid: ProcessId) -> ForwardingAddress | None:
        """The forwarding address for *pid*, if any."""
        return self._entries.get(pid)

    def forward_target(self, pid: ProcessId) -> MachineId | None:
        """Record a forward through *pid*'s entry and return the target."""
        entry = self._entries.get(pid)
        if entry is None:
            return None
        entry.forwards += 1
        self.total_forwards += 1
        return entry.machine

    def collect(self, pid: ProcessId) -> bool:
        """Drop *pid*'s forwarding address (process died).  Idempotent."""
        if self._entries.pop(pid, None) is not None:
            self.collected += 1
            return True
        return False

    def sweep(self, now: int, max_age: int) -> list[ForwardingAddress]:
        """Collect entries older than *max_age* (paper §4: "Given a long
        running system ... some form of garbage collection will
        eventually have to be used").

        Returns the collected entries.  Sweeping is safe only to the
        extent that links have converged: a message sent later on a
        still-stale link becomes undeliverable and falls back to the
        kernel's undeliverable policy (sender notice / return-to-sender).
        """
        victims = [
            entry for entry in self._entries.values()
            if now - entry.created_at > max_age
        ]
        for entry in victims:
            del self._entries[entry.pid]
            self.collected += 1
        return victims

    @property
    def storage_bytes(self) -> int:
        """Total residual storage these entries occupy (8 bytes each)."""
        return FORWARDING_ADDRESS_BYTES * len(self._entries)

    def entries(self) -> list[ForwardingAddress]:
        """All entries, sorted by pid (diagnostics)."""
        return sorted(self._entries.values(), key=lambda e: e.pid)
