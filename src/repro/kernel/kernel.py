"""The DEMOS/MP kernel.

One kernel runs on every machine.  It implements the primitive objects of
the system — executing processes, messages (including inter-processor
messages), and links — while every higher-level service lives in server
processes reached through the very same message mechanism.

The parts that matter for the paper:

- **uniform message delivery** (:meth:`Kernel.route_message`): a message
  goes to its destination's last-known machine; the kernel there delivers
  it to the process, executes it (DELIVERTOKERNEL), redirects it through a
  forwarding address, or applies the undeliverable policy;
- **forwarding addresses** (§4) and the piggy-backed **link updates** (§5);
- **the syscall engine**: programs are generators; the kernel resumes them
  on a round-robin CPU, so the process state object really does hold the
  complete execution state — which is what makes migration "copy one
  object plus its memory bytes" (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    KernelError,
    LinkAccessError,
    ProcessStateError,
    ReproError,
    UnknownProcessError,
)
from repro.kernel.context import ProcessContext
from repro.kernel.forwarding import ForwardingTable
from repro.kernel.ids import (
    ProcessAddress,
    ProcessId,
    kernel_address,
)
from repro.kernel.links import Link, LinkSnapshot
from repro.kernel.linkupdate import (
    LinkUpdate,
    OP_LINK_UPDATE,
    build_link_update,
    sender_machine_of,
)
from repro.kernel.memory import MemoryImage, MemoryManager
from repro.kernel.messages import Message, MessageKind, control_message
from repro.kernel.ops import (
    CONTROL_PAYLOAD_BYTES,
    OP_FORWARD_GC,
    OP_MIGRATE_PROCESS,
    OP_NACK,
    OP_SPAWN,
    OP_SPAWN_REPLY,
    OP_START_PROCESS,
    OP_STOP_PROCESS,
    OP_UNDELIVERABLE,
    OP_WHERE_IS_REPLY,
)
from repro.kernel.process_state import ProcessState, ProcessStatus
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.syscalls import (
    Compute,
    CreateLink,
    DestroyLink,
    DupLink,
    Exit,
    GetInfo,
    MoveData,
    Receive,
    RequestMigration,
    Send,
    Sleep,
    Syscall,
    Yield,
)
from repro.net.network import Network
from repro.net.topology import MachineId
from repro.sim.events import ScheduledEvent
from repro.sim.loop import EventLoop
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.kernel.datamove import TransferManager
    from repro.kernel.migration import MigrationEngine
    from repro.obs.metrics import MetricsRegistry

ProgramFactory = Callable[[ProcessContext], Any]

# Module-level aliases for the statuses the delivery and dispatch hot
# paths test on every message/resume; a global load is cheaper than the
# enum class-attribute chain at these call frequencies.
_READY = ProcessStatus.READY
_RUNNING = ProcessStatus.RUNNING
_WAITING_MESSAGE = ProcessStatus.WAITING_MESSAGE
_IN_MIGRATION = ProcessStatus.IN_MIGRATION


class UndeliverablePolicy(Enum):
    """What to do with a message whose destination is not here.

    FORWARD is the paper's design: leave a forwarding address behind.
    RETURN_TO_SENDER is the §4 alternative the paper rejects; it is
    implemented as an ablation (experiment E7).
    """

    FORWARD = "forward"
    RETURN_TO_SENDER = "return-to-sender"


@dataclass
class KernelConfig:
    """Per-kernel tunables.  Defaults model the paper's environment."""

    quantum: int = 1_000  #: CPU quantum, microseconds
    syscall_cpu_cost: int = 10  #: cost of one program resume / kernel call
    memory_capacity: int = 1 << 22  #: real memory per machine, bytes
    max_data_packet: int = 1_024  #: move-data chunk payload, bytes
    undeliverable_policy: UndeliverablePolicy = UndeliverablePolicy.FORWARD
    #: whether migration leaves a forwarding address (False only in the
    #: return-to-sender ablation)
    leave_forwarding_address: bool = True
    #: whether forwards send the §5 link-update message (False only in
    #: the A1 ablation quantifying what lazy link updating buys)
    send_link_updates: bool = True
    #: notify the process manager of spawn/exit/migration events
    notify_process_manager: bool = False
    #: predicate consulted before accepting an inbound migration (§3.2
    #: autonomy); receives (pid, total_bytes) and returns a verdict
    accept_migration: Callable[[ProcessId, int], bool] | None = None


@dataclass
class KernelStats:
    """Per-kernel counters surfaced to benchmarks."""

    messages_sent_local: int = 0
    messages_sent_remote: int = 0
    messages_delivered: int = 0
    messages_forwarded: int = 0
    link_updates_sent: int = 0
    link_updates_applied: int = 0
    links_retargeted: int = 0
    undeliverable: int = 0
    nacks_sent: int = 0
    processes_spawned: int = 0
    processes_exited: int = 0
    syscalls: int = 0
    extra_by_op: dict[str, int] = dataclass_field(default_factory=dict)

    def bump(self, op: str) -> None:
        """Increment an ad-hoc named counter."""
        self.extra_by_op[op] = self.extra_by_op.get(op, 0) + 1

    def publish(self, registry: "MetricsRegistry", machine: MachineId) -> None:
        """Mirror every counter into a metrics registry (as a collector),
        labelled by machine so per-machine series aggregate system-wide."""
        for name in (
            "messages_sent_local", "messages_sent_remote",
            "messages_delivered", "messages_forwarded",
            "link_updates_sent", "link_updates_applied",
            "links_retargeted", "undeliverable", "nacks_sent",
            "processes_spawned", "processes_exited", "syscalls",
        ):
            registry.counter(f"kernel.{name}", machine=machine).set_total(
                getattr(self, name)
            )
        for op, count in self.extra_by_op.items():
            registry.counter(
                "kernel.extra", machine=machine, op=op
            ).set_total(count)


class Kernel:
    """The kernel of one machine."""

    def __init__(
        self,
        machine: MachineId,
        loop: EventLoop,
        network: Network,
        tracer: Tracer,
        config: KernelConfig | None = None,
        well_known: dict[str, ProcessAddress] | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.machine = machine
        self.loop = loop
        self.network = network
        self.tracer = tracer
        self.config = config or KernelConfig()
        #: the system-wide registry this kernel publishes into; a
        #: standalone kernel gets a private one so publishing never
        #: needs a null check
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self.metrics.register_collector(self._publish_metrics)
        #: service name -> address, used to mint bootstrap links at spawn.
        #: The dict is shared (not copied): the System adds services as
        #: they boot, and every kernel sees them immediately.
        self.well_known: dict[str, ProcessAddress] = (
            well_known if well_known is not None else {}
        )
        self.address = kernel_address(machine)

        self.processes: dict[ProcessId, ProcessState] = {}
        self.dead: set[ProcessId] = set()
        self.forwarding = ForwardingTable()
        self.scheduler = RoundRobinScheduler(self.config.quantum)
        self.memory = MemoryManager(self.config.memory_capacity)
        self.stats = KernelStats()
        # Bound-method locals for the delivery fast path.  The dicts and
        # collaborators behind these are mutated but never reassigned, so
        # the bindings stay valid for the kernel's lifetime.
        self._processes_get = self.processes.get
        self._forward_target = self.forwarding.forward_target
        self._trace_wants = tracer.wants
        #: hop-count distribution of messages this kernel forwarded
        #: (paper §4: chains are the cost of lazy link updating)
        self._forward_hops = self.metrics.histogram(
            "kernel.forward_hops",
            buckets=(1, 2, 4, 8, 16, 32, 64),
            machine=machine,
        )

        self._local_id_counter = 0
        self._cpu_busy = False
        #: set by crash recovery: a crashed kernel does nothing ever again
        self.crashed = False
        #: maintenance mode: a draining kernel refuses inbound migration
        #: offers (§3.2 autonomy), so an evacuation cannot race policy
        #: moves pushing work back onto the machine being emptied
        self.draining = False
        self._timers: dict[ProcessId, ScheduledEvent] = {}
        #: a _flush_wakeups scheduler grant is already queued this tick;
        #: a burst of N message wakeups costs one dispatch probe, not N
        self._wakeup_flush_scheduled = False
        #: return-to-sender mode: messages parked while we locate their target
        self._awaiting_location: dict[ProcessId, list[Message]] = {}
        #: op -> handler for kernel-addressed control messages
        self._control_handlers: dict[str, Callable[[Message], None]] = {}
        #: op -> handler for DELIVERTOKERNEL messages targeted at a process
        self._process_control_handlers: dict[
            str, Callable[[ProcessState, Message], None]
        ] = {}
        #: program registry: name -> factory, for remote spawn requests
        self.program_registry: dict[str, ProgramFactory] = {}
        #: listeners notified when a process exits: fn(pid, exit_code)
        self.exit_listeners: list[Callable[[ProcessId, int], None]] = []
        #: hooks consulted before normal undeliverable handling; a hook
        #: returning True claims the message (used by the move-data engine
        #: to fail a blocked holder instead of hanging it)
        self.undeliverable_hooks: list[Callable[[Message], bool]] = []

        #: exact-type syscall dispatch; insertion order mirrors the old
        #: isinstance ladder so the subclass fallback scan behaves the same
        self._syscall_table: dict[
            type, Callable[[ProcessState, Any], None]
        ] = {
            Send: self._sys_send,
            Receive: self._do_receive,
            CreateLink: self._do_create_link,
            DupLink: self._sys_dup_link,
            DestroyLink: self._sys_destroy_link,
            Compute: self._sys_compute,
            Sleep: self._do_sleep,
            MoveData: self._sys_move_data,
            RequestMigration: self._sys_request_migration,
            Exit: self._sys_exit,
            GetInfo: self._sys_get_info,
            Yield: self._sys_yield,
        }

        self._register_base_handlers()

        # Components (each registers its own control handlers).
        from repro.kernel.datamove import TransferManager
        from repro.kernel.migration import MigrationEngine

        self.transfers: "TransferManager" = TransferManager(self)
        self.migration: "MigrationEngine" = MigrationEngine(self)

        network.register_receiver(machine, self._on_network_payload)

    # ==================================================================
    # Process lifecycle
    # ==================================================================

    def spawn(
        self,
        program_factory: ProgramFactory,
        name: str = "",
        memory: MemoryImage | None = None,
        priority: int = 0,
        extra_links: dict[str, ProcessAddress] | None = None,
    ) -> ProcessId:
        """Create a process on this machine and make it runnable.

        Bootstrap links to every well-known service (plus *extra_links*)
        are minted into its link table; their ids are exposed through
        ``ctx.bootstrap`` so programs can reach the switchboard et al.
        """
        self._local_id_counter += 1
        pid = ProcessId(self.machine, self._local_id_counter)
        state = ProcessState(
            pid=pid,
            name=name or f"proc-{pid.local_id}",
            memory=memory or MemoryImage.sized(),
            priority=priority,
        )
        state.residence_history.append(self.machine)
        self.memory.attach(pid, state.memory)

        ctx = ProcessContext(self, pid)
        for service, address in {
            **self.well_known,
            **(extra_links or {}),
        }.items():
            link_id = state.link_table.insert(Link(address))
            ctx.bootstrap[service] = link_id
        state.context = ctx
        state.program = program_factory(ctx)

        self.processes[pid] = state
        self.stats.processes_spawned += 1
        if self._trace_wants("kernel"):
            self.tracer.record(
                "kernel", "spawn", pid=str(pid), name=state.name,
                machine=self.machine,
            )
        self._make_runnable(state)
        if self.config.notify_process_manager:
            self._notify_process_manager(
                "process-created",
                {"pid": pid, "machine": self.machine, "name": state.name},
                links=(self.control_link_snapshot(pid),),
            )
        return pid

    def adopt(self, state: ProcessState) -> None:
        """Install a migrated-in process state (migration steps 3-5).

        The state arrives still IN_MIGRATION; :class:`MigrationEngine`
        restarts it when the source's cleanup completes.
        """
        if state.pid in self.processes:
            raise ProcessStateError(f"{state.pid} already present here")
        self.processes[state.pid] = state
        # A process that migrates back on top of its own forwarding
        # address supersedes it.
        self.forwarding.collect(state.pid)
        state.residence_history.append(self.machine)
        if state.context is not None:
            state.context.rebind(self)

    def terminate(self, pid: ProcessId, code: int = 0) -> None:
        """End a process: reclaim memory, GC forwarding addresses."""
        state = self._state(pid)
        if state.status is ProcessStatus.TERMINATED:
            return
        was = state.status
        state.status = ProcessStatus.TERMINATED
        state.exit_code = code
        self.scheduler.remove(pid)
        self._cancel_timer(pid)
        self.memory.detach(pid)
        del self.processes[pid]
        self.dead.add(pid)
        self.stats.processes_exited += 1
        if self._trace_wants("kernel"):
            self.tracer.record(
                "kernel", "exit", pid=str(pid), code=code, was=was.value,
            )
        # Garbage-collect forwarding addresses backwards along the path of
        # migration (paper §4).
        for previous in set(state.residence_history):
            if previous == self.machine:
                self.forwarding.collect(pid)
                continue
            self.send_control(
                previous, OP_FORWARD_GC, {"pid": pid},
                CONTROL_PAYLOAD_BYTES[OP_FORWARD_GC], category="gc",
            )
        for listener in self.exit_listeners:
            listener(pid, code)
        if self.config.notify_process_manager:
            self._notify_process_manager(
                "process-exited", {"pid": pid, "machine": self.machine},
            )

    def register_program(self, name: str, factory: ProgramFactory) -> None:
        """Make *factory* spawnable by name via remote OP_SPAWN requests."""
        self.program_registry[name] = factory

    # ==================================================================
    # Message send / delivery
    # ==================================================================

    def send_from_process(self, state: ProcessState, call: Send) -> None:
        """Execute a Send syscall on behalf of *state*."""
        link = state.link_table.get(call.link_id)
        enclosed = tuple(
            LinkSnapshot.of(state.link_table.get(lid)) for lid in call.links
        )
        message = Message(
            dest=link.address,
            sender=ProcessAddress(state.pid, self.machine),
            kind=MessageKind.USER,
            op=call.op,
            payload=call.payload,
            payload_bytes=call.payload_bytes,
            links=enclosed,
            deliver_to_kernel=(
                link.deliver_to_kernel or call.deliver_to_kernel
            ),
            category="user",
        )
        state.accounting.messages_sent += 1
        state.accounting.bytes_sent += message.wire_bytes
        self.route_message(message)

    def send_control(
        self,
        dest_machine: MachineId,
        op: str,
        payload: Any,
        payload_bytes: int,
        category: str = "admin",
    ) -> None:
        """Send a kernel-to-kernel control message."""
        message = control_message(
            dest=kernel_address(dest_machine),
            sender=self.address,
            op=op,
            payload=payload,
            payload_bytes=payload_bytes,
            category=category,
        )
        self.route_message(message)

    def send_to_process(
        self,
        dest: ProcessAddress,
        op: str,
        payload: Any = None,
        payload_bytes: int = 8,
        deliver_to_kernel: bool = False,
        category: str = "admin",
        kind: MessageKind = MessageKind.CONTROL,
        links: tuple[LinkSnapshot, ...] = (),
    ) -> None:
        """Kernel-originated message to a process address.

        With ``deliver_to_kernel`` this is the §2.2 mechanism: the message
        follows the process and is executed by the kernel that hosts it.
        Kernels may enclose links they manufacture (the kernel participates
        in all link operations), e.g. the control link returned to the
        process manager when it asks for a process to be created.
        """
        message = Message(
            dest=dest,
            sender=self.address,
            kind=kind,
            op=op,
            payload=payload,
            payload_bytes=payload_bytes,
            deliver_to_kernel=deliver_to_kernel,
            category=category,
            links=links,
        )
        self.route_message(message)

    def control_link_snapshot(self, pid: ProcessId) -> LinkSnapshot:
        """A DELIVERTOKERNEL link to local process *pid*, for enclosure."""
        from repro.kernel.links import LinkAttribute

        return LinkSnapshot(
            ProcessAddress(pid, self.machine),
            LinkAttribute.DELIVER_TO_KERNEL,
            None,
        )

    def route_message(self, message: Message) -> None:
        """Hand a message to the delivery system.

        Local destinations are delivered immediately (never touching the
        network); remote ones go to the destination's last-known machine.
        """
        target = message.dest.last_known_machine
        if target == self.machine:
            self.stats.messages_sent_local += 1
            self.deliver_local(message)
        else:
            self.stats.messages_sent_remote += 1
            self.network.send(
                self.machine, target, message, message.wire_bytes,
                message.category,
            )

    def _on_network_payload(self, src: MachineId, payload: Any) -> None:
        """Reliable transport handed us an in-order message."""
        if not isinstance(payload, Message):
            raise KernelError(f"unexpected network payload: {payload!r}")
        self.deliver_local(payload)

    def deliver_local(self, message: Message) -> None:
        """Deliver a message that has arrived at this machine.

        This is the heart of migration transparency: the receiver may be a
        live process, the kernel itself, a forwarding address, or nothing.
        The resident-process case — by far the most common — is resolved
        with a single process-table probe; kernel addresses (which are
        never in the process table) and forwarding addresses only pay
        their own lookups after that probe misses.
        """
        if self.crashed:
            return
        pid = message.dest.pid
        state = self._processes_get(pid)
        if state is not None:
            if (
                message.deliver_to_kernel
                and state.status is not _IN_MIGRATION
            ):
                # Executed by the kernel on behalf of the process (§2.2).
                self._handle_process_control(state, message)
                return
            # Normal queueing.  DELIVERTOKERNEL messages for a process in
            # transit are "held and forwarded for delivery when normal
            # message receiving can continue" — they sit in the queue and
            # travel with the pending messages in step 6.
            self._enqueue_for_process(state, message)
            return

        if pid.is_kernel:
            self._handle_kernel_message(message)
            return

        forward_to = self._forward_target(pid)
        if forward_to is not None:
            self._forward(message, forward_to)
            return

        self._undeliverable(message)

    def _enqueue_for_process(self, state: ProcessState, msg: Message) -> None:
        state.message_queue.append(msg)
        self.stats.messages_delivered += 1
        if self._trace_wants("kernel"):
            self.tracer.record(
                "kernel", "deliver", pid=str(state.pid), op=msg.op,
                sender=str(msg.sender.pid), serial=msg.serial,
                fwd=msg.forward_count,
            )
        # Wakeup fast path.  The Receive is satisfied inline — timer
        # cancel, message hand-off, READY, run-queue insert — so every
        # other event in this tick observes exactly the state it always
        # did.  Only the CPU grant is batched: all wakeups of a tick
        # share one deferred _maybe_dispatch event instead of probing
        # the scheduler once per delivered message.
        if state.status is _WAITING_MESSAGE and isinstance(
            state.pending_syscall, Receive
        ):
            self._cancel_timer(state.pid)
            state.wake_deadline = None
            self._hand_message(state)
            state.status = _READY
            self.scheduler.enqueue(state.pid, state.priority)
            if not self._cpu_busy and not self._wakeup_flush_scheduled:
                self._wakeup_flush_scheduled = True
                self.loop.call_soon(self._flush_wakeups)

    def _flush_wakeups(self) -> None:
        """Grant the CPU once for all of this tick's message wakeups."""
        self._wakeup_flush_scheduled = False
        self._maybe_dispatch()

    def _forward(self, message: Message, forward_to: MachineId) -> None:
        """Redirect through a forwarding address (paper Figure 4-1), and
        send the link-update special message (Figure 5-1)."""
        original_sender = message.sender
        message.redirect(forward_to)
        self.stats.messages_forwarded += 1
        self._forward_hops.observe(message.forward_count)
        if self._trace_wants("forward"):
            self.tracer.record(
                "forward", "hit", pid=str(message.dest.pid), op=message.op,
                serial=message.serial, to=forward_to,
                hop=message.forward_count,
            )
        self.route_message(message)
        # "As a byproduct of forwarding, an attempt may be made to fix up
        # the link of the sending process."  Only process senders hold
        # link tables; kernel-originated traffic has nothing to patch.
        if (
            self.config.send_link_updates
            and not original_sender.pid.is_kernel
            and message.kind is not MessageKind.LINK_UPDATE
        ):
            update = LinkUpdate(
                sender_pid=original_sender.pid,
                target_pid=message.dest.pid,
                new_machine=forward_to,
            )
            update_msg = build_link_update(
                self.machine, update, sender_machine_of(message)
            )
            self.stats.link_updates_sent += 1
            if self._trace_wants("linkupd"):
                self.tracer.record(
                    "linkupd", "sent", sender=str(update.sender_pid),
                    target=str(update.target_pid), new_machine=forward_to,
                )
            self.route_message(update_msg)

    # ------------------------------------------------------------------
    # Undeliverable handling (FORWARD vs RETURN_TO_SENDER)
    # ------------------------------------------------------------------

    def _undeliverable(self, message: Message) -> None:
        self.stats.undeliverable += 1
        pid = message.dest.pid
        self.tracer.record(
            "kernel", "undeliverable", pid=str(pid), op=message.op,
            dead=pid in self.dead, serial=message.serial,
        )
        for hook in self.undeliverable_hooks:
            if hook(message):
                return
        if message.kind in (MessageKind.LINK_UPDATE, MessageKind.NACK):
            return  # best-effort traffic is silently dropped
        policy = self.config.undeliverable_policy
        if (
            policy is UndeliverablePolicy.RETURN_TO_SENDER
            and pid not in self.dead
        ):
            self._nack(message)
            return
        # FORWARD mode, or the process is genuinely dead: tell the sending
        # process its link is no longer usable so it can take recovery
        # action (paper §4).
        self._notify_sender_undeliverable(message)

    def _nack(self, message: Message) -> None:
        """Return a message to its sender's kernel as not deliverable."""
        self.stats.nacks_sent += 1
        nack = Message(
            dest=kernel_address(message.sender.last_known_machine),
            sender=self.address,
            kind=MessageKind.NACK,
            op=OP_NACK,
            payload=message,
            payload_bytes=message.wire_bytes,
            category="nack",
        )
        self.route_message(nack)

    def _notify_sender_undeliverable(self, message: Message) -> None:
        if message.sender.pid.is_kernel:
            return
        notice = Message(
            dest=message.sender,
            sender=self.address,
            kind=MessageKind.NACK,
            op=OP_UNDELIVERABLE,
            payload={
                "op": message.op,
                "dest": message.dest.pid,
                "dead": message.dest.pid in self.dead,
            },
            payload_bytes=8,
            category="nack",
        )
        self.route_message(notice)

    def _on_nack(self, nack: Message) -> None:
        """Return-to-sender mode: find the process's new home via the
        process manager, then re-send the original message (paper §4's
        rejected alternative, kept as the E7 ablation)."""
        original: Message = nack.payload
        pid = original.dest.pid
        parked = self._awaiting_location.setdefault(pid, [])
        parked.append(original)
        if len(parked) > 1:
            return  # a location query is already outstanding
        pm = self.well_known.get("process_manager")
        if pm is None:
            self._notify_sender_undeliverable(original)
            self._awaiting_location.pop(pid, None)
            return
        self.send_to_process(
            pm, "where-is", {"pid": pid, "reply_machine": self.machine},
            payload_bytes=8, category="locate", kind=MessageKind.USER,
        )

    def _on_where_is_reply(self, message: Message) -> None:
        payload = message.payload
        pid: ProcessId = payload["pid"]
        machine: MachineId | None = payload.get("machine")
        parked = self._awaiting_location.pop(pid, [])
        for original in parked:
            if machine is None:
                self._notify_sender_undeliverable(original)
                continue
            original.redirect(machine)
            sender_state = self.processes.get(original.sender.pid)
            if sender_state is not None:
                self.stats.links_retargeted += (
                    sender_state.link_table.retarget_all(pid, machine)
                )
            self.route_message(original)

    # ------------------------------------------------------------------
    # Kernel-addressed and DELIVERTOKERNEL dispatch
    # ------------------------------------------------------------------

    def register_control(
        self, op: str, handler: Callable[[Message], None]
    ) -> None:
        """Register a handler for a kernel-addressed control op."""
        self._control_handlers[op] = handler

    def register_process_control(
        self, op: str, handler: Callable[[ProcessState, Message], None]
    ) -> None:
        """Register a handler for a DELIVERTOKERNEL op aimed at a process."""
        self._process_control_handlers[op] = handler

    def _register_base_handlers(self) -> None:
        self.register_control(OP_LINK_UPDATE, self._apply_link_update)
        self.register_control(OP_FORWARD_GC, self._on_forward_gc)
        self.register_control(OP_NACK, self._on_nack)
        self.register_control(OP_WHERE_IS_REPLY, self._on_where_is_reply)
        self.register_control(OP_SPAWN, self._on_spawn_request)
        self.register_process_control(OP_STOP_PROCESS, self._on_stop)
        self.register_process_control(OP_START_PROCESS, self._on_start)
        self.register_process_control(
            OP_MIGRATE_PROCESS, self._on_migrate_directive
        )

    def _handle_kernel_message(self, message: Message) -> None:
        handler = self._control_handlers.get(message.op)
        if handler is None:
            self.tracer.record(
                "kernel", "unknown-control", op=message.op,
                sender=str(message.sender),
            )
            return
        handler(message)

    def _handle_process_control(
        self, state: ProcessState, message: Message
    ) -> None:
        if self._trace_wants("kernel"):
            self.tracer.record(
                "kernel", "d2k", pid=str(state.pid), op=message.op,
                fwd=message.forward_count,
            )
        handler = self._process_control_handlers.get(message.op)
        if handler is None:
            self.tracer.record(
                "kernel", "unknown-d2k", op=message.op, pid=str(state.pid),
            )
            return
        handler(state, message)

    def _apply_link_update(self, message: Message) -> None:
        update: LinkUpdate = message.payload
        state = self.processes.get(update.sender_pid)
        if state is None:
            self.tracer.record(
                "linkupd", "no-process", sender=str(update.sender_pid),
            )
            return
        changed = state.link_table.retarget_all(
            update.target_pid, update.new_machine
        )
        self.stats.link_updates_applied += 1
        self.stats.links_retargeted += changed
        if self._trace_wants("linkupd"):
            self.tracer.record(
                "linkupd", "applied", sender=str(update.sender_pid),
                target=str(update.target_pid),
                new_machine=update.new_machine, changed=changed,
            )

    def _on_forward_gc(self, message: Message) -> None:
        pid: ProcessId = message.payload["pid"]
        if self.forwarding.collect(pid):
            self.tracer.record("forward", "collected", pid=str(pid))

    def _on_spawn_request(self, message: Message) -> None:
        payload = message.payload
        name = payload["program"]
        factory = self.program_registry.get(name)
        reply_to: ProcessAddress | None = payload.get("reply_to")
        req_id = payload.get("req_id")
        if factory is None:
            if reply_to is not None:
                self.send_to_process(
                    reply_to, OP_SPAWN_REPLY,
                    {
                        "ok": False,
                        "error": f"unknown program {name!r}",
                        "req_id": req_id,
                    },
                    kind=MessageKind.USER, category="admin",
                )
            return
        params = payload.get("params") or {}
        memory = payload.get("memory")
        bound = factory if not params else (
            lambda ctx, _f=factory, _p=params: _f(ctx, **_p)
        )
        pid = self.spawn(bound, name=payload.get("name", name), memory=memory)
        if reply_to is not None:
            # The reply encloses a DELIVERTOKERNEL link so the requester
            # (normally the process manager) can control the new process
            # wherever it later moves.
            self.send_to_process(
                reply_to, OP_SPAWN_REPLY,
                {
                    "ok": True,
                    "pid": pid,
                    "machine": self.machine,
                    "req_id": req_id,
                },
                kind=MessageKind.USER, category="admin",
                links=(self.control_link_snapshot(pid),),
            )

    def _on_stop(self, state: ProcessState, message: Message) -> None:
        """Suspend a process (the paper's worked DELIVERTOKERNEL example)."""
        if state.status in (
            ProcessStatus.SUSPENDED, ProcessStatus.TERMINATED,
        ):
            return
        state.suspended_from = (
            ProcessStatus.READY
            if state.status is ProcessStatus.RUNNING
            else state.status
        )
        self.scheduler.remove(state.pid)
        self._cancel_timer(state.pid)
        if state.wake_deadline is not None:
            state.wake_remaining = max(0, state.wake_deadline - self.loop.now)
            state.wake_deadline = None
        state.status = ProcessStatus.SUSPENDED
        self.tracer.record("kernel", "suspended", pid=str(state.pid))

    def _on_start(self, state: ProcessState, message: Message) -> None:
        if state.status is not ProcessStatus.SUSPENDED:
            return
        resumed_to = state.suspended_from or ProcessStatus.READY
        state.suspended_from = None
        state.status = resumed_to
        self._rearm_after_unfreeze(state)
        self.tracer.record(
            "kernel", "resumed", pid=str(state.pid), to=state.status.value,
        )

    def _on_migrate_directive(
        self, state: ProcessState, message: Message
    ) -> None:
        dest: MachineId = message.payload["dest"]
        self.migration.start(state.pid, dest)

    # ==================================================================
    # Syscall engine
    # ==================================================================

    def _state(self, pid: ProcessId) -> ProcessState:
        try:
            return self.processes[pid]
        except KeyError:
            raise UnknownProcessError(
                f"{pid} is not on machine {self.machine}"
            ) from None

    def _make_runnable(self, state: ProcessState) -> None:
        state.status = ProcessStatus.READY
        self.scheduler.enqueue(state.pid, state.priority)
        self._maybe_dispatch()

    def _maybe_dispatch(self) -> None:
        """Give the CPU to the next ready process, if it is free."""
        if self._cpu_busy or self.crashed:
            return
        scheduler = self.scheduler
        processes_get = self._processes_get
        while True:
            pid = scheduler.pick_next()
            if pid is None:
                return
            state = processes_get(pid)
            if state is None or state.status is not _READY:
                scheduler.release_cpu(pid)
                continue
            break
        state.status = _RUNNING
        self._cpu_busy = True
        remaining = state.compute_remaining
        if remaining > 0:
            quantum = self.config.quantum
            slice_len = remaining if remaining < quantum else quantum
            self.loop.call_after(
                slice_len, self._compute_slice_done, state.pid, slice_len
            )
        else:
            self.loop.call_after(
                self.config.syscall_cpu_cost, self._resume_program, state.pid
            )

    def _release_cpu(self, pid: ProcessId) -> None:
        self.scheduler.release_cpu(pid)
        self._cpu_busy = False
        self._maybe_dispatch()

    def _compute_slice_done(self, pid: ProcessId, slice_len: int) -> None:
        if self.crashed:
            return
        state = self.processes.get(pid)
        if state is None:
            self._cpu_busy = False
            self.scheduler.release_cpu(pid)
            self._maybe_dispatch()
            return
        state.accounting.cpu_time += slice_len
        if state.status is not ProcessStatus.RUNNING:
            # Preempted by migration or suspension mid-slice; the unfinished
            # Compute travels in compute_remaining.
            state.compute_remaining = max(
                0, state.compute_remaining - slice_len
            )
            self._release_cpu(pid)
            return
        state.compute_remaining -= slice_len
        if state.compute_remaining > 0:
            state.status = ProcessStatus.READY
            self.scheduler.release_cpu(pid)
            self.scheduler.enqueue(pid, state.priority)
            self._cpu_busy = False
            self._maybe_dispatch()
            return
        # Compute finished: resume the program with None on its next turn.
        state.pending_syscall = None
        state.resume_value = None
        state.status = ProcessStatus.READY
        self.scheduler.release_cpu(pid)
        self.scheduler.enqueue(pid, state.priority)
        self._cpu_busy = False
        self._maybe_dispatch()

    def _resume_program(self, pid: ProcessId) -> None:
        if self.crashed:
            return
        state = self._processes_get(pid)
        if state is None:
            self._cpu_busy = False
            self.scheduler.release_cpu(pid)
            self._maybe_dispatch()
            return
        state.accounting.cpu_time += self.config.syscall_cpu_cost
        if state.status is not _RUNNING:
            # Migration or suspension won the race; resume later, elsewhere.
            self._release_cpu(pid)
            return
        assert state.program is not None
        self.stats.syscalls += 1
        error = state.resume_error
        value = state.resume_value
        state.resume_error = None
        state.resume_value = None
        try:
            if error is not None:
                syscall = state.program.throw(error)
            else:
                syscall = state.program.send(value)
        except StopIteration:
            self._release_cpu(pid)
            self.terminate(pid, 0)
            return
        except ReproError as exc:
            self.tracer.record(
                "kernel", "crash", pid=str(pid), error=repr(exc),
            )
            self._release_cpu(pid)
            self.terminate(pid, 1)
            return
        # Release the running mark before the syscall decides the next
        # status, so a _requeue inside the handler actually queues.
        self.scheduler.release_cpu(pid)
        self._handle_syscall(state, syscall)
        self._cpu_busy = False
        self._maybe_dispatch()

    def _handle_syscall(self, state: ProcessState, syscall: Any) -> None:
        if not isinstance(syscall, Syscall):
            state.resume_error = KernelError(
                f"program yielded {syscall!r}, which is not a Syscall"
            )
            self._requeue(state)
            return
        try:
            self._dispatch_syscall(state, syscall)
        except ReproError as exc:
            state.resume_error = exc
            self._requeue(state)

    def _dispatch_syscall(self, state: ProcessState, syscall: Syscall) -> None:
        # Exact-type table dispatch: one dict probe replaces the former
        # isinstance ladder for every built-in syscall.  Subclasses (rare,
        # but allowed) fall through to the isinstance scan, which walks
        # the same table in the ladder's original order.
        handler = self._syscall_table.get(syscall.__class__)
        if handler is not None:
            handler(state, syscall)
            return
        for klass, fallback in self._syscall_table.items():
            if isinstance(syscall, klass):
                fallback(state, syscall)
                return
        raise KernelError(f"unhandled syscall {syscall!r}")

    def _sys_send(self, state: ProcessState, syscall: Send) -> None:
        self.send_from_process(state, syscall)
        state.resume_value = None
        self._requeue(state)

    def _sys_dup_link(self, state: ProcessState, syscall: DupLink) -> None:
        state.resume_value = state.link_table.dup(syscall.link_id)
        self._requeue(state)

    def _sys_destroy_link(
        self, state: ProcessState, syscall: DestroyLink
    ) -> None:
        state.link_table.remove(syscall.link_id)
        state.resume_value = None
        self._requeue(state)

    def _sys_compute(self, state: ProcessState, syscall: Compute) -> None:
        state.compute_remaining = max(0, syscall.duration)
        state.pending_syscall = syscall
        self._requeue(state)

    def _sys_move_data(self, state: ProcessState, syscall: MoveData) -> None:
        self.transfers.start_move(state, syscall)

    def _sys_request_migration(
        self, state: ProcessState, syscall: RequestMigration
    ) -> None:
        state.resume_value = True
        self._requeue(state)
        self.migration.start(state.pid, syscall.destination)

    def _sys_exit(self, state: ProcessState, syscall: Exit) -> None:
        self.terminate(state.pid, syscall.code)

    def _sys_get_info(self, state: ProcessState, syscall: GetInfo) -> None:
        state.resume_value = {
            "pid": state.pid,
            "machine": self.machine,
            "now": self.loop.now,
            "queue_length": len(state.message_queue),
            "link_count": len(state.link_table),
            "migrations": state.accounting.migrations,
        }
        self._requeue(state)

    def _sys_yield(self, state: ProcessState, syscall: Yield) -> None:
        state.resume_value = None
        self._requeue(state)

    def _requeue(self, state: ProcessState) -> None:
        state.status = _READY
        self.scheduler.enqueue(state.pid, state.priority)

    def _do_receive(self, state: ProcessState, syscall: Receive) -> None:
        if state.message_queue:
            self._hand_message(state)
            self._requeue(state)
            return
        state.pending_syscall = syscall
        state.status = ProcessStatus.WAITING_MESSAGE
        if syscall.timeout is not None:
            state.wake_deadline = self.loop.now + syscall.timeout
            self._arm_timer(state.pid, syscall.timeout)

    def _do_create_link(
        self, state: ProcessState, syscall: CreateLink
    ) -> None:
        if syscall.data_area is not None and not (
            state.memory.address_space_contains(
                syscall.data_area.offset, syscall.data_area.length
            )
        ):
            raise LinkAccessError(
                f"data area {syscall.data_area} outside address space"
            )
        link = Link(
            ProcessAddress(state.pid, self.machine),
            syscall.attributes,
            syscall.data_area,
        )
        state.resume_value = state.link_table.insert(link)
        self._requeue(state)

    def _do_sleep(self, state: ProcessState, syscall: Sleep) -> None:
        state.pending_syscall = syscall
        state.status = ProcessStatus.SLEEPING
        state.wake_deadline = self.loop.now + max(0, syscall.duration)
        self._arm_timer(state.pid, max(0, syscall.duration))

    def _hand_message(self, state: ProcessState) -> None:
        """Pop the next queued message and prepare it as the Receive result,
        materialising any enclosed links into the receiver's table."""
        message = state.message_queue.popleft()
        link_ids = tuple(
            state.link_table.insert(snapshot.materialise())
            for snapshot in message.links
        )
        message.delivered_link_ids = link_ids
        # A message is "received" when the process gets it, not each time
        # it lands in a queue (pending messages re-queue after step 6).
        state.accounting.messages_received += 1
        state.accounting.bytes_received += message.wire_bytes
        if message.forward_count:
            state.accounting.forwarded_to_me += 1
        state.pending_syscall = None
        state.resume_value = message

    def _try_satisfy_receive(self, state: ProcessState) -> None:
        """Wake a WAITING_MESSAGE process if a message is available."""
        if (
            state.status is _WAITING_MESSAGE
            and state.message_queue
            and isinstance(state.pending_syscall, Receive)
        ):
            self._cancel_timer(state.pid)
            state.wake_deadline = None
            self._hand_message(state)
            self._make_runnable(state)

    # ------------------------------------------------------------------
    # Timers (Receive timeout, Sleep)
    # ------------------------------------------------------------------

    def _arm_timer(self, pid: ProcessId, delay: int) -> None:
        self._cancel_timer(pid)
        self._timers[pid] = self.loop.call_after(delay, self._timer_fired, pid)

    def _cancel_timer(self, pid: ProcessId) -> None:
        timer = self._timers.pop(pid, None)
        if timer is not None:
            self.loop.cancel(timer)

    def _timer_fired(self, pid: ProcessId) -> None:
        if self.crashed:
            return
        self._timers.pop(pid, None)
        state = self.processes.get(pid)
        if state is None:
            return
        if state.status is ProcessStatus.WAITING_MESSAGE:
            state.wake_deadline = None
            state.pending_syscall = None
            state.resume_value = None  # Receive timed out
            self._make_runnable(state)
        elif state.status is ProcessStatus.SLEEPING:
            state.wake_deadline = None
            state.pending_syscall = None
            state.resume_value = None
            self._make_runnable(state)

    def freeze_timers_for_migration(self, state: ProcessState) -> None:
        """Convert an absolute wake deadline to a remaining duration that
        travels with the process (migration step 1)."""
        self._cancel_timer(state.pid)
        if state.wake_deadline is not None:
            state.wake_remaining = max(0, state.wake_deadline - self.loop.now)
            state.wake_deadline = None

    def _rearm_after_unfreeze(self, state: ProcessState) -> None:
        """Restore run-queue membership / timers after restart or resume."""
        if state.status is ProcessStatus.READY:
            self.scheduler.enqueue(state.pid, state.priority)
            self._maybe_dispatch()
        elif state.status in (
            ProcessStatus.WAITING_MESSAGE, ProcessStatus.SLEEPING,
        ):
            if state.wake_remaining is not None:
                state.wake_deadline = self.loop.now + state.wake_remaining
                self._arm_timer(state.pid, state.wake_remaining)
                state.wake_remaining = None
            self._try_satisfy_receive(state)

    def restart_migrated_process(self, state: ProcessState) -> None:
        """Migration step 8: restart the process in its recorded state."""
        state.complete_migration()
        self._unfreeze(state)

    def restore_aborted_migration(self, state: ProcessState) -> None:
        """Put a process back in service after a destination refusal."""
        state.abort_migration()
        self._unfreeze(state)

    def _unfreeze(self, state: ProcessState) -> None:
        # DELIVERTOKERNEL messages held while in transit are executed now
        # that "normal message receiving can continue" (paper §2.2).
        held = [m for m in state.message_queue if m.deliver_to_kernel]
        if held:
            remaining = [
                m for m in state.message_queue if not m.deliver_to_kernel
            ]
            state.message_queue.clear()
            state.message_queue.extend(remaining)
        self._rearm_after_unfreeze(state)
        for message in held:
            self._handle_process_control(state, message)

    # ==================================================================
    # Introspection
    # ==================================================================

    def _publish_metrics(self, registry: "MetricsRegistry") -> None:
        """Registry collector: mirror this kernel's counters and gauges."""
        machine = self.machine
        self.stats.publish(registry, machine)
        registry.gauge("kernel.processes_alive", machine=machine).set(
            len(self.processes)
        )
        registry.gauge("kernel.run_queue", machine=machine).set(
            self.scheduler.load
        )
        registry.gauge("kernel.memory_used_bytes", machine=machine).set(
            self.memory.used_bytes
        )
        registry.gauge("kernel.memory_free_bytes", machine=machine).set(
            self.memory.free_bytes
        )
        registry.gauge("kernel.forwarding_entries", machine=machine).set(
            len(self.forwarding)
        )
        registry.gauge("kernel.forwarding_bytes", machine=machine).set(
            self.forwarding.storage_bytes
        )
        registry.counter("kernel.forwards", machine=machine).set_total(
            self.forwarding.total_forwards
        )
        registry.counter(
            "kernel.forwarding_collected", machine=machine
        ).set_total(self.forwarding.collected)
        registry.gauge(
            "kernel.migrations_in_flight", machine=machine
        ).set(self.migration.in_progress)

    def load_snapshot(self) -> dict[str, Any]:
        """The load information a migration decision rule needs (§3.1)."""
        return {
            "machine": self.machine,
            "run_queue": self.scheduler.load,
            "processes": len(self.processes),
            "memory_used": self.memory.used_bytes,
            "memory_free": self.memory.free_bytes,
            "forwarding_entries": len(self.forwarding),
        }

    def find_process(self, pid: ProcessId) -> ProcessState | None:
        """The local state for *pid*, if it lives here."""
        return self.processes.get(pid)

    def _notify_process_manager(
        self,
        op: str,
        payload: dict,
        links: tuple[LinkSnapshot, ...] = (),
    ) -> None:
        pm = self.well_known.get("process_manager")
        if pm is None:
            return
        self.send_to_process(
            pm, op, payload, payload_bytes=10,
            kind=MessageKind.USER, category="notify", links=links,
        )

    def __repr__(self) -> str:
        return (
            f"Kernel(machine={self.machine}, processes={len(self.processes)},"
            f" fwd={len(self.forwarding)})"
        )
