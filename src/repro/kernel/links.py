"""Links: the only connection a DEMOS/MP process has to anything.

A link is a protected global process address held in a process's local
link table (small-integer names).  Links are manipulated like capabilities:
the kernel participates in every operation, and links may be created,
duplicated, passed inside messages, or destroyed.  Addresses in links are
context independent — a passed link still points at the same process.

Two attributes matter for this paper:

- ``DELIVER_TO_KERNEL``: messages sent on the link are received by the
  kernel of the machine *where the target process currently resides*, so
  control operations follow the process through migrations (paper §2.2);
- ``DATA_READ`` / ``DATA_WRITE``: the link grants access to a window of
  the creator's address space, used by the move-data facility for bulk
  transfers (file I/O, migration state transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Flag, auto
from typing import Iterator

from repro.errors import InvalidLinkError
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.net.topology import MachineId

#: Wire size of a link passed inside a message: address (6) + attributes
#: (1) + data-area descriptor (offset 2, length 2, padding 1) — 12 bytes.
LINK_WIRE_BYTES = 12
#: Bytes one link-table entry contributes to the swappable process state
#: (paper: swappable state is "about 600 bytes (depending on the size of
#: the link table)").
LINK_TABLE_ENTRY_BYTES = 16


class LinkAttribute(Flag):
    """Capability bits carried by a link."""

    NONE = 0
    DELIVER_TO_KERNEL = auto()
    DATA_READ = auto()
    DATA_WRITE = auto()


@dataclass(frozen=True)
class DataArea:
    """A window into the link creator's address space."""

    offset: int
    length: int

    def contains(self, offset: int, length: int) -> bool:
        """Whether [offset, offset+length) lies inside this window."""
        return (
            offset >= self.offset
            and offset + length <= self.offset + self.length
            and length >= 0
        )


@dataclass
class Link:
    """A one-way message path to (and capability on) a process.

    ``address`` is the only mutable part: forwarding-triggered link updates
    replace it with one whose last-known-machine field points at the
    process's new home.  The pid inside never changes.
    """

    address: ProcessAddress
    attributes: LinkAttribute = LinkAttribute.NONE
    data_area: DataArea | None = None

    @property
    def target_pid(self) -> ProcessId:
        """The process this link addresses (immutable component)."""
        return self.address.pid

    @property
    def deliver_to_kernel(self) -> bool:
        """Whether messages on this link are received by the target's kernel."""
        return bool(self.attributes & LinkAttribute.DELIVER_TO_KERNEL)

    def copy(self) -> "Link":
        """An independent duplicate (passing a link always copies it)."""
        return Link(self.address, self.attributes, self.data_area)

    def retarget(self, machine: MachineId) -> None:
        """Point this link at the process's new machine (link update)."""
        self.address = self.address.moved_to(machine)

    def __repr__(self) -> str:
        attrs = self.attributes.name if self.attributes else "NONE"
        area = f" area={self.data_area}" if self.data_area else ""
        return f"Link({self.address} {attrs}{area})"


@dataclass(frozen=True)
class LinkSnapshot:
    """An immutable picture of a link as it travels inside a message.

    While enroute, a link is data: nobody can update it, which is exactly
    why the paper needs forwarding even after all link tables are patched.
    """

    address: ProcessAddress
    attributes: LinkAttribute
    data_area: DataArea | None

    @classmethod
    def of(cls, link: Link) -> "LinkSnapshot":
        """Snapshot *link* for enclosure in a message."""
        return cls(link.address, link.attributes, link.data_area)

    def materialise(self) -> Link:
        """Create a live link from this snapshot (at receive time)."""
        return Link(self.address, self.attributes, self.data_area)


class LinkTable:
    """A process's link table: local small-int names to links.

    Link ids are never reused within a process's lifetime, mirroring the
    capability flavour of DEMOS links (a dangling id stays invalid rather
    than silently naming a new link).
    """

    def __init__(self) -> None:
        self._links: dict[int, Link] = {}
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, link_id: int) -> bool:
        return link_id in self._links

    def insert(self, link: Link) -> int:
        """Add *link* and return its local id."""
        link_id = self._next_id
        self._next_id += 1
        self._links[link_id] = link
        return link_id

    def get(self, link_id: int) -> Link:
        """The link named *link_id*, or raise :class:`InvalidLinkError`."""
        try:
            return self._links[link_id]
        except KeyError:
            raise InvalidLinkError(f"no link with id {link_id}") from None

    def remove(self, link_id: int) -> Link:
        """Destroy the link named *link_id* and return it."""
        try:
            return self._links.pop(link_id)
        except KeyError:
            raise InvalidLinkError(f"no link with id {link_id}") from None

    def dup(self, link_id: int) -> int:
        """Duplicate a link, returning the new local id."""
        return self.insert(self.get(link_id).copy())

    def items(self) -> Iterator[tuple[int, Link]]:
        """Iterate ``(link_id, link)`` pairs in id order."""
        return iter(sorted(self._links.items()))

    def links_to(self, pid: ProcessId) -> list[Link]:
        """All links in this table addressing process *pid*."""
        return [lk for lk in self._links.values() if lk.target_pid == pid]

    def retarget_all(self, pid: ProcessId, machine: MachineId) -> int:
        """Point every link to *pid* at *machine*; return how many changed.

        This is the receiving half of the paper's link-update message: "All
        links in the sending process's link table that point to the migrated
        process are then updated to point to the new location."
        """
        changed = 0
        for link in self._links.values():
            if (
                link.target_pid == pid
                and link.address.last_known_machine != machine
            ):
                link.retarget(machine)
                changed += 1
        return changed

    def swappable_bytes(self) -> int:
        """This table's contribution to the swappable process state."""
        return LINK_TABLE_ENTRY_BYTES * len(self._links)


def make_reply_link(owner: ProcessAddress) -> Link:
    """A plain link back to *owner*, the paper's short-lived reply link."""
    return Link(owner)


def with_data_area(
    owner: ProcessAddress,
    offset: int,
    length: int,
    writable: bool = False,
) -> Link:
    """A link granting data-area access into *owner*'s address space."""
    attrs = LinkAttribute.DATA_READ
    if writable:
        attrs |= LinkAttribute.DATA_WRITE
    return Link(owner, attrs, DataArea(offset, length))


def _ensure_same_process(a: Link, b: Link) -> None:
    """Internal consistency check used by tests."""
    if a.target_pid != b.target_pid:
        raise InvalidLinkError(
            f"links address different processes: {a.target_pid} vs {b.target_pid}"
        )


# re-exported for convenience in tests
__all__ = [
    "DataArea",
    "Link",
    "LinkAttribute",
    "LinkSnapshot",
    "LinkTable",
    "LINK_TABLE_ENTRY_BYTES",
    "LINK_WIRE_BYTES",
    "make_reply_link",
    "with_data_area",
]
