"""Link updating (paper §5, Figure 5-1).

"As it forwards the message, the forwarding machine sends another special
message to the kernel of the process that sent the original message.  This
special message contains the process identifier of the sender of the
original message, the process identifier of the intended receiver (the
migrated process), and the new location of the receiver.  All links in the
sending process's link table that point to the migrated process are then
updated to point to the new location."

This module defines the update payload (10 bytes on the wire: two pids of
4 bytes and a 2-byte machine id — inside the paper's 6-12 byte control-
message range) and the receiving-kernel application logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.ids import (
    PROCESS_ID_BYTES,
    ProcessAddress,
    ProcessId,
    kernel_address,
)
from repro.kernel.messages import Message, MessageKind
from repro.net.topology import MachineId

#: sender pid (4) + receiver pid (4) + new machine (2).
LINK_UPDATE_PAYLOAD_BYTES = 2 * PROCESS_ID_BYTES + 2

#: The message op used for link updates.
OP_LINK_UPDATE = "link-update"


@dataclass(frozen=True)
class LinkUpdate:
    """The content of a link-update message."""

    sender_pid: ProcessId  #: whose link table should be patched
    target_pid: ProcessId  #: the migrated process
    new_machine: MachineId  #: where it lives now


def build_link_update(
    forwarder_machine: MachineId,
    update: LinkUpdate,
    sender_machine: MachineId,
) -> Message:
    """The special message the forwarding machine sends (Figure 5-1).

    It is addressed to the kernel of the machine the original message came
    from — the sender's machine as recorded in the forwarded message.
    """
    return Message(
        dest=kernel_address(sender_machine),
        sender=kernel_address(forwarder_machine),
        kind=MessageKind.LINK_UPDATE,
        op=OP_LINK_UPDATE,
        payload=update,
        payload_bytes=LINK_UPDATE_PAYLOAD_BYTES,
        category="linkupdate",
    )


def sender_machine_of(message: Message) -> MachineId:
    """Which machine the stale-link sender was on when it sent *message*."""
    sender: ProcessAddress = message.sender
    return sender.last_known_machine
