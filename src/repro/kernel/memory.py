"""Process memory images and the per-kernel memory manager.

A DEMOS/MP process (paper Figure 2-2) is "the program being executed,
along with the program's data, stack, and state".  We model the program as
three byte-counted segments — code, data, stack — each of which may be
swapped out.  The kernel's move-data operation "handles reading or writing
of swapped out memory and allocation of new virtual memory", which the
migration engine relies on in step 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import MemoryError_


class SegmentKind(Enum):
    """The three memory segments of a process image."""

    CODE = "code"
    DATA = "data"
    STACK = "stack"


@dataclass
class MemorySegment:
    """One segment of a process's address space."""

    kind: SegmentKind
    size_bytes: int
    swapped_out: bool = False


@dataclass
class MemoryImage:
    """The full memory picture of one process."""

    segments: dict[SegmentKind, MemorySegment] = field(default_factory=dict)

    @classmethod
    def sized(
        cls,
        code: int = 4_096,
        data: int = 2_048,
        stack: int = 1_024,
    ) -> "MemoryImage":
        """An image with the given segment sizes (bytes)."""
        return cls(
            {
                SegmentKind.CODE: MemorySegment(SegmentKind.CODE, code),
                SegmentKind.DATA: MemorySegment(SegmentKind.DATA, data),
                SegmentKind.STACK: MemorySegment(SegmentKind.STACK, stack),
            }
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes across all segments, swapped or resident."""
        return sum(s.size_bytes for s in self.segments.values())

    @property
    def resident_bytes(self) -> int:
        """Bytes currently occupying real memory."""
        return sum(
            s.size_bytes for s in self.segments.values() if not s.swapped_out
        )

    def segment(self, kind: SegmentKind) -> MemorySegment:
        """The segment of the given kind."""
        return self.segments[kind]

    def address_space_contains(self, offset: int, length: int) -> bool:
        """Whether [offset, offset+length) is a valid window of this image."""
        return (
            0 <= offset
            and offset + length <= self.total_bytes
            and length >= 0
        )


class MemoryManager:
    """Tracks real-memory occupancy on one machine.

    Capacity is finite; allocation beyond it first swaps out victims
    (largest non-code segments first) and only then fails.  Migration step
    3 uses :meth:`reserve` to claim space on the destination before any
    bytes move, so a refused reservation aborts the migration cleanly.
    """

    #: When True, every read of :attr:`used_bytes` re-derives the running
    #: totals from scratch and asserts they match.  Off by default: the
    #: O(segments) walk is exactly what the running totals exist to avoid.
    AUDIT = False

    def __init__(self, capacity_bytes: int = 1 << 22) -> None:
        self.capacity_bytes = capacity_bytes
        self._images: dict[object, MemoryImage] = {}
        self._reserved: dict[object, int] = {}
        self.swap_outs = 0
        self.swap_ins = 0
        # Running totals, updated at every residency transition (attach,
        # detach, reserve, commit, cancel, swap in/out).  The balancer
        # reads used_bytes once per process per decision tick, which made
        # the per-call sum over every segment a cluster-scale hot spot.
        self._resident_total = 0
        self._reserved_total = 0

    @property
    def used_bytes(self) -> int:
        """Resident bytes plus outstanding reservations."""
        if self.AUDIT:
            self._audit_totals()
        return self._resident_total + self._reserved_total

    @property
    def free_bytes(self) -> int:
        """Capacity not currently resident or reserved."""
        return (
            self.capacity_bytes - self._resident_total - self._reserved_total
        )

    def _audit_totals(self) -> None:
        """Recompute the totals from scratch and assert they agree."""
        resident = sum(img.resident_bytes for img in self._images.values())
        reserved = sum(self._reserved.values())
        assert resident == self._resident_total, (
            f"resident total drifted: running={self._resident_total}"
            f" actual={resident}"
        )
        assert reserved == self._reserved_total, (
            f"reserved total drifted: running={self._reserved_total}"
            f" actual={reserved}"
        )

    def attach(self, owner: object, image: MemoryImage) -> None:
        """Start accounting *image* against this machine's memory.

        Swaps out other processes' segments if needed to fit; raises
        :class:`MemoryError_` if the image cannot fit even after swapping.
        """
        self._make_room(image.resident_bytes)
        if image.resident_bytes > self.free_bytes:
            raise MemoryError_(
                f"cannot attach image of {image.resident_bytes}B, "
                f"only {self.free_bytes}B free"
            )
        self._images[owner] = image
        self._resident_total += image.resident_bytes

    def detach(self, owner: object) -> MemoryImage:
        """Stop accounting *owner*'s image (process exit or migration)."""
        try:
            image = self._images.pop(owner)
        except KeyError:
            raise MemoryError_(f"no image attached for {owner!r}") from None
        self._resident_total -= image.resident_bytes
        return image

    def reserve(self, owner: object, size_bytes: int) -> bool:
        """Reserve room for an incoming migration.  Returns success."""
        self._make_room(size_bytes)
        if size_bytes > self.free_bytes:
            return False
        self._reserved[owner] = size_bytes
        self._reserved_total += size_bytes
        return True

    def commit_reservation(self, owner: object, image: MemoryImage) -> None:
        """Replace a reservation with the real image that arrived."""
        if owner not in self._reserved:
            raise MemoryError_(f"no reservation held for {owner!r}")
        self._reserved_total -= self._reserved.pop(owner)
        self._images[owner] = image
        self._resident_total += image.resident_bytes

    def cancel_reservation(self, owner: object) -> None:
        """Release a reservation (migration aborted)."""
        size = self._reserved.pop(owner, None)
        if size is not None:
            self._reserved_total -= size

    def swap_out(self, owner: object, kind: SegmentKind) -> None:
        """Push one segment to the (infinite) swap device."""
        segment = self._images[owner].segment(kind)
        if not segment.swapped_out:
            segment.swapped_out = True
            self._resident_total -= segment.size_bytes
            self.swap_outs += 1

    def swap_in(self, owner: object, kind: SegmentKind) -> None:
        """Bring one segment back to real memory."""
        segment = self._images[owner].segment(kind)
        if segment.swapped_out:
            self._make_room(segment.size_bytes)
            if segment.size_bytes > self.free_bytes:
                raise MemoryError_(f"no room to swap in {segment.size_bytes}B")
            segment.swapped_out = False
            self._resident_total += segment.size_bytes
            self.swap_ins += 1

    def _make_room(self, needed: int) -> None:
        """Swap out victims until *needed* bytes fit (best effort)."""
        if needed <= self.free_bytes:
            return
        victims = sorted(
            (
                seg
                for img in self._images.values()
                for seg in img.segments.values()
                if not seg.swapped_out and seg.kind is not SegmentKind.CODE
            ),
            key=lambda seg: seg.size_bytes,
            reverse=True,
        )
        for seg in victims:
            if needed <= self.free_bytes:
                return
            seg.swapped_out = True
            self._resident_total -= seg.size_bytes
            self.swap_outs += 1
