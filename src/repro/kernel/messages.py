"""Messages: the universal unit of interaction in DEMOS/MP.

Everything — user requests, kernel control traffic, migration
administration, data-move chunks, link updates — is a message sent to a
process address.  A message snapshots the link it was sent over (the
destination address and the DELIVERTOKERNEL bit); from then on the only
field the system ever rewrites is the destination's last-known machine,
which forwarding addresses patch en route.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.kernel.ids import PROCESS_ADDRESS_BYTES, ProcessAddress
from repro.kernel.links import LINK_WIRE_BYTES, LinkSnapshot

#: Fixed message header modelled on the wire: destination address (6) +
#: sender address (6) + kind/op tag (3) + link count (1).
MESSAGE_HEADER_BYTES = 2 * PROCESS_ADDRESS_BYTES + 4

_message_serial = itertools.count(1)


class MessageKind(Enum):
    """Coarse classification of message traffic."""

    USER = "user"  #: process-to-process requests and replies
    CONTROL = "control"  #: kernel-to-kernel administration
    DATA_MOVE = "datamove"  #: bulk data chunks from the move-data facility
    LINK_UPDATE = "linkupdate"  #: forwarder -> sender's kernel fix-ups
    NACK = "nack"  #: undeliverable notice (return-to-sender mode)


@dataclass(slots=True)
class Message:
    """One message in flight or queued.

    ``dest`` starts as a snapshot of the sending link's address and is
    rewritten by forwarding addresses as the message chases the process.
    ``sender`` records who sent it *and from which machine*, which is what
    the link-update mechanism uses to find the stale link table.
    """

    dest: ProcessAddress
    sender: ProcessAddress
    kind: MessageKind
    op: str
    payload: Any = None
    payload_bytes: int = 0
    links: tuple[LinkSnapshot, ...] = ()
    deliver_to_kernel: bool = False
    #: incremented every time a forwarding address redirects this message
    forward_count: int = 0
    #: accounting category for the network layer ("user", "admin", ...)
    category: str = "user"
    serial: int = field(default_factory=lambda: next(_message_serial))
    #: local link ids minted in the receiver's table at delivery time
    delivered_link_ids: tuple[int, ...] = ()

    @property
    def wire_bytes(self) -> int:
        """Bytes this message occupies as a network payload."""
        return (
            MESSAGE_HEADER_BYTES
            + self.payload_bytes
            + LINK_WIRE_BYTES * len(self.links)
        )

    def redirect(self, machine: int) -> None:
        """Point the message at the process's new machine (forwarding)."""
        self.dest = self.dest.moved_to(machine)
        self.forward_count += 1

    def __getstate__(self) -> tuple:
        """Positional wire form: every field except receiver-local state.

        ``serial`` follows the same rule as
        :meth:`repro.net.packet.Packet.__getstate__`: an
        address-space-local diagnostic id whose value depends on the
        executor, re-minted locally on unpickle.  ``delivered_link_ids``
        is minted by the *receiver* at delivery time; a message in
        flight has none, but the serial executor shares one live object
        between sender and receiver, so a transport retransmission
        after first delivery would otherwise pickle the receiver's
        mutation — making blob bytes executor-dependent.  Positional
        because per-record wire blobs cannot share pickle memos.
        """
        return (
            self.dest, self.sender, self.kind, self.op, self.payload,
            self.payload_bytes, self.links, self.deliver_to_kernel,
            self.forward_count, self.category,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.dest, self.sender, self.kind, self.op, self.payload,
            self.payload_bytes, self.links, self.deliver_to_kernel,
            self.forward_count, self.category,
        ) = state
        self.serial = next(_message_serial)
        self.delivered_link_ids = ()

    def __repr__(self) -> str:
        flags = " D2K" if self.deliver_to_kernel else ""
        fwd = f" fwd={self.forward_count}" if self.forward_count else ""
        return (
            f"Message(#{self.serial} {self.sender}->{self.dest}"
            f" {self.kind.value}/{self.op} {self.payload_bytes}B"
            f"{flags}{fwd})"
        )


def control_message(
    dest: ProcessAddress,
    sender: ProcessAddress,
    op: str,
    payload: Any,
    payload_bytes: int,
    category: str = "admin",
) -> Message:
    """Build a kernel-to-kernel control message."""
    return Message(
        dest=dest,
        sender=sender,
        kind=MessageKind.CONTROL,
        op=op,
        payload=payload,
        payload_bytes=payload_bytes,
        category=category,
    )
