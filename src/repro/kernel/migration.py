"""The process migration mechanism (paper §3.1, Figure 3-1).

The eight steps, with the machine that drives each:

1. *source*  — remove the process from execution (mark "in migration");
2. *source*  — ask the destination kernel to move the process;
3. *dest*    — allocate an (empty) process state with the same pid;
4. *dest*    — transfer the process state (move-data facility);
5. *dest*    — transfer the program; control returns to the source;
6. *source*  — forward pending messages;
7. *source*  — clean up: reclaim everything, leave a forwarding address;
8. *dest*    — restart the process in whatever state it was in.

Administrative traffic is exactly nine control messages of 6-12 bytes
(§6): request, accept, three segment requests, transfer-complete,
pending-forwarded, cleanup-complete, restart-ack.  The bulk bytes ride
`mig-data` messages accounted in the ``datamove`` category.

§3.2 autonomy is honoured: the destination may refuse (predicate or
memory pressure), in which case the source restores the process and
reports failure so policy can "look elsewhere".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import MigrationError
from repro.kernel.ids import ProcessId
from repro.kernel.messages import Message
from repro.kernel.ops import (
    ADMIN_PAYLOAD_BYTES,
    OP_CLEANUP_COMPLETE,
    OP_MIGRATE_ACCEPT,
    OP_MIGRATE_DATA,
    OP_MIGRATE_REQUEST,
    OP_PENDING_FORWARDED,
    OP_RESTART_ACK,
    OP_SEG_REQUEST,
    OP_TRANSFER_COMPLETE,
)
from repro.kernel.process_state import ProcessState, ProcessStatus
from repro.net.topology import MachineId
from repro.stats.migration_cost import SEGMENTS, MigrationCostRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

DoneCallback = Callable[[bool, MigrationCostRecord], None]


@dataclass
class _SourceMigration:
    """Source-side record of one outbound migration."""

    pid: ProcessId
    dest: MachineId
    record: MigrationCostRecord
    callbacks: list[DoneCallback] = field(default_factory=list)
    phase: str = "requested"


@dataclass
class _DestMigration:
    """Destination-side record of one inbound migration."""

    pid: ProcessId
    source: MachineId
    sizes: dict[str, int]
    segment_index: int = 0
    received: int = 0
    state: ProcessState | None = None
    pending_expected: int | None = None
    phase: str = "allocated"


class MigrationEngine:
    """One per kernel; both source and destination roles live here."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._outgoing: dict[ProcessId, _SourceMigration] = {}
        self._incoming: dict[ProcessId, _DestMigration] = {}
        #: finished source-side records, oldest first (benchmark E1 ledger)
        self.completed: list[MigrationCostRecord] = []
        for op, handler in {
            OP_MIGRATE_REQUEST: self._on_request,
            OP_MIGRATE_ACCEPT: self._on_accept,
            OP_SEG_REQUEST: self._on_segment_request,
            OP_MIGRATE_DATA: self._on_data_chunk,
            OP_TRANSFER_COMPLETE: self._on_transfer_complete,
            OP_PENDING_FORWARDED: self._on_pending_forwarded,
            OP_CLEANUP_COMPLETE: self._on_cleanup_complete,
            OP_RESTART_ACK: self._on_restart_ack,
        }.items():
            kernel.register_control(op, handler)

    # ==================================================================
    # Source side
    # ==================================================================

    def start(
        self,
        pid: ProcessId,
        dest: MachineId,
        on_done: DoneCallback | None = None,
    ) -> bool:
        """Begin migrating local process *pid* to machine *dest*.

        Returns True if the migration was initiated.  A False return means
        the process is not here, is already in motion, or the request is a
        no-op (dest == here); callers relying on completion must use
        *on_done*, which fires with (success, cost record).
        """
        kernel = self.kernel
        if pid.is_kernel:
            raise MigrationError("kernels cannot be migrated")
        state = kernel.processes.get(pid)
        if state is None:
            kernel.tracer.record(
                "migrate", "not-here", pid=str(pid), machine=kernel.machine,
            )
            return False
        if state.status is ProcessStatus.IN_MIGRATION:
            kernel.tracer.record("migrate", "already-moving", pid=str(pid))
            return False
        if dest == kernel.machine:
            kernel.tracer.record("migrate", "noop", pid=str(pid))
            return False
        if not kernel.network.topology.has_machine(dest):
            raise MigrationError(f"no such machine {dest}")

        # -- Step 1: remove the process from execution -----------------
        state.begin_migration()
        kernel.scheduler.remove(pid)
        kernel.freeze_timers_for_migration(state)
        record = MigrationCostRecord(
            pid=pid, source=kernel.machine, dest=dest,
            started_at=kernel.loop.now,
        )
        entry = _SourceMigration(pid, dest, record)
        if on_done is not None:
            entry.callbacks.append(on_done)
        self._outgoing[pid] = entry
        kernel.tracer.record(
            "migrate", "step1-freeze", pid=str(pid),
            machine=kernel.machine, dest=dest,
            saved=state.saved_status.value if state.saved_status else "?",
        )

        # -- Step 2: ask the destination kernel to move the process ----
        self._send_admin(
            entry, dest, OP_MIGRATE_REQUEST,
            {
                "pid": pid,
                "sizes": {
                    "resident": state.resident_state_bytes,
                    "swappable": state.swappable_state_bytes,
                    "program": state.program_bytes,
                },
            },
        )
        kernel.tracer.record(
            "migrate", "step2-request", pid=str(pid), dest=dest
        )
        return True

    def _send_admin(
        self,
        entry: _SourceMigration | _DestMigration | None,
        dest: MachineId,
        op: str,
        payload: Any,
    ) -> None:
        size = ADMIN_PAYLOAD_BYTES[op]
        if isinstance(entry, _SourceMigration):
            entry.record.note_admin(op, size)
        self.kernel.send_control(dest, op, payload, size, category="admin")

    def _note_admin_received(self, pid: ProcessId, message: Message) -> None:
        entry = self._outgoing.get(pid)
        if entry is not None:
            entry.record.note_admin(message.op, message.payload_bytes)

    def _on_accept(self, message: Message) -> None:
        payload = message.payload
        pid: ProcessId = payload["pid"]
        self._note_admin_received(pid, message)
        entry = self._outgoing.get(pid)
        if entry is None:
            return
        state = self.kernel.processes.get(pid)
        if payload["ok"]:
            entry.phase = "accepted"
            self.kernel.tracer.record("migrate", "accepted", pid=str(pid))
            return
        # §3.2: "If the destination machine refuses, the process cannot
        # be migrated."  Restore it and report failure.
        entry.record.success = False
        entry.record.refusal_reason = payload.get("reason", "refused")
        entry.record.completed_at = self.kernel.loop.now
        self.kernel.tracer.record(
            "migrate", "refused", pid=str(pid),
            reason=entry.record.refusal_reason,
        )
        if state is not None:
            self.kernel.restore_aborted_migration(state)
        self._finish_source(entry, success=False)

    def _on_segment_request(self, message: Message) -> None:
        """Steps 4/5, source half: stream one segment's bytes."""
        payload = message.payload
        pid: ProcessId = payload["pid"]
        segment: str = payload["segment"]
        self._note_admin_received(pid, message)
        entry = self._outgoing.get(pid)
        state = self.kernel.processes.get(pid)
        if entry is None or state is None:
            return
        sizes = {
            "resident": state.resident_state_bytes,
            "swappable": state.swappable_state_bytes,
            "program": state.program_bytes,
        }
        nbytes = sizes[segment]
        entry.record.segment_bytes[segment] = nbytes
        chunk = self.kernel.config.max_data_packet
        count = max(1, math.ceil(nbytes / chunk))
        entry.record.datamove_chunks += count
        self.kernel.tracer.record(
            "migrate", "segment-stream", pid=str(pid), segment=segment,
            bytes=nbytes, chunks=count,
        )
        sent = 0
        for i in range(count):
            size = min(chunk, nbytes - sent)
            sent += size
            chunk_payload: dict[str, Any] = {
                "pid": pid,
                "segment": segment,
                "nbytes": size,
                "final": i == count - 1,
            }
            # The simulation ships the actual state object with the last
            # chunk of the last segment; its bytes were fully accounted by
            # the three data moves.
            if segment == "program" and i == count - 1:
                chunk_payload["state"] = state
            self.kernel.send_control(
                entry.dest, OP_MIGRATE_DATA, chunk_payload, size,
                category="datamove",
            )

    def _on_transfer_complete(self, message: Message) -> None:
        """Steps 6 and 7: forward pending messages, then clean up and
        leave a forwarding address — atomically."""
        payload = message.payload
        pid: ProcessId = payload["pid"]
        self._note_admin_received(pid, message)
        entry = self._outgoing.get(pid)
        state = self.kernel.processes.get(pid)
        if entry is None or state is None:
            return
        kernel = self.kernel

        # -- Step 6: forward pending messages ---------------------------
        pending = list(state.message_queue)
        state.message_queue.clear()
        for queued in pending:
            queued.redirect(entry.dest)
            kernel.route_message(queued)
        entry.record.pending_forwarded = len(pending)
        kernel.tracer.record(
            "migrate", "step6-forward-pending", pid=str(pid),
            count=len(pending),
        )
        self._send_admin(
            entry, entry.dest, OP_PENDING_FORWARDED,
            {"pid": pid, "count": len(pending)},
        )

        # -- Step 7: clean up and leave a forwarding address ------------
        kernel.scheduler.remove(pid)
        kernel._cancel_timer(pid)
        kernel.memory.detach(pid)
        del kernel.processes[pid]
        if kernel.config.leave_forwarding_address:
            kernel.forwarding.install(pid, entry.dest, kernel.loop.now)
        kernel.tracer.record(
            "migrate", "step7-cleanup", pid=str(pid),
            forwarding=kernel.config.leave_forwarding_address,
        )
        self._send_admin(
            entry, entry.dest, OP_CLEANUP_COMPLETE, {"pid": pid},
        )
        entry.phase = "cleaned-up"

    def _on_restart_ack(self, message: Message) -> None:
        payload = message.payload
        pid: ProcessId = payload["pid"]
        self._note_admin_received(pid, message)
        entry = self._outgoing.get(pid)
        if entry is None:
            return
        entry.record.success = True
        entry.record.restarted_at = payload["restarted_at"]
        entry.record.completed_at = self.kernel.loop.now
        self.kernel.tracer.record(
            "migrate", "done", pid=str(pid),
            admin=entry.record.admin_message_count,
            downtime=entry.record.downtime,
        )
        self._finish_source(entry, success=True)

    def _finish_source(self, entry: _SourceMigration, success: bool) -> None:
        self._outgoing.pop(entry.pid, None)
        self.completed.append(entry.record)
        self._publish_record(entry.record, success)
        for callback in entry.callbacks:
            callback(success, entry.record)

    def _publish_record(
        self, record: MigrationCostRecord, success: bool
    ) -> None:
        """Push this migration's §6 cost figures into the registry."""
        metrics = self.kernel.metrics
        machine = self.kernel.machine
        outcome = "migration.completed" if success else "migration.refused"
        metrics.counter(outcome, machine=machine).inc()
        metrics.counter("migration.admin_messages", machine=machine).inc(
            record.admin_message_count
        )
        metrics.counter("migration.admin_bytes", machine=machine).inc(
            record.admin_bytes
        )
        if not success:
            return
        metrics.counter("migration.state_bytes", machine=machine).inc(
            record.state_transfer_bytes
        )
        metrics.counter("migration.pending_forwarded", machine=machine).inc(
            record.pending_forwarded
        )
        if record.downtime is not None:
            metrics.counter(
                "migration.downtime_us_total", machine=machine
            ).inc(record.downtime)
            metrics.histogram("migration.downtime_us").observe(
                record.downtime
            )
        if record.duration is not None:
            metrics.histogram("migration.duration_us").observe(
                record.duration
            )
        metrics.histogram(
            "migration.admin_bytes_per_message",
            buckets=(6, 8, 10, 12, 16),
        ).observe(record.admin_bytes / max(1, record.admin_message_count))

    # ==================================================================
    # Destination side
    # ==================================================================

    def _on_request(self, message: Message) -> None:
        """Steps 2/3, destination half: accept or refuse, then allocate."""
        payload = message.payload
        pid: ProcessId = payload["pid"]
        sizes: dict[str, int] = payload["sizes"]
        kernel = self.kernel
        source = message.sender.last_known_machine
        total = sum(sizes.values())

        if kernel.draining:
            # Maintenance mode (evacuation): the machine is being emptied
            # and must not accept new residents.
            self._send_admin(
                None, source, OP_MIGRATE_ACCEPT,
                {"pid": pid, "ok": False, "reason": "draining"},
            )
            kernel.tracer.record("migrate", "refuse-draining", pid=str(pid))
            return
        predicate = kernel.config.accept_migration
        if predicate is not None and not predicate(pid, total):
            self._send_admin(
                None, source, OP_MIGRATE_ACCEPT,
                {"pid": pid, "ok": False, "reason": "destination policy"},
            )
            kernel.tracer.record("migrate", "refuse-policy", pid=str(pid))
            return
        if not kernel.memory.reserve(pid, total):
            self._send_admin(
                None, source, OP_MIGRATE_ACCEPT,
                {"pid": pid, "ok": False, "reason": "no memory"},
            )
            kernel.tracer.record("migrate", "refuse-memory", pid=str(pid))
            return

        # -- Step 3: allocate a process state with the same identifier --
        self._incoming[pid] = _DestMigration(pid, source, sizes)
        kernel.tracer.record(
            "migrate", "step3-allocate", pid=str(pid), bytes=total,
        )
        self._send_admin(
            None, source, OP_MIGRATE_ACCEPT, {"pid": pid, "ok": True}
        )
        # -- Step 4 begins: pull the first segment ----------------------
        self._request_segment(self._incoming[pid])

    def _request_segment(self, entry: _DestMigration) -> None:
        segment = SEGMENTS[entry.segment_index]
        entry.received = 0
        step = "step4-state" if segment != "program" else "step5-program"
        self.kernel.tracer.record(
            "migrate", step, pid=str(entry.pid), segment=segment,
        )
        self._send_admin(
            None, entry.source, OP_SEG_REQUEST,
            {
                "pid": entry.pid,
                "segment": segment,
                "length": entry.sizes[segment],
            },
        )

    def _on_data_chunk(self, message: Message) -> None:
        payload = message.payload
        pid: ProcessId = payload["pid"]
        entry = self._incoming.get(pid)
        if entry is None:
            return
        entry.received += payload["nbytes"]
        if "state" in payload:
            entry.state = payload["state"]
        segment = SEGMENTS[entry.segment_index]
        if entry.received < entry.sizes[segment]:
            return
        entry.segment_index += 1
        if entry.segment_index < len(SEGMENTS):
            self._request_segment(entry)
            return
        # All three data moves done: install the state (still frozen) and
        # return control to the source (end of step 5).
        assert entry.state is not None, "state must ride the final chunk"
        self.kernel.memory.commit_reservation(pid, entry.state.memory)
        self.kernel.adopt(entry.state)
        entry.phase = "installed"
        self.kernel.tracer.record(
            "migrate", "transfer-complete", pid=str(pid),
            bytes=sum(entry.sizes.values()), machine=self.kernel.machine,
        )
        self._send_admin(
            None, entry.source, OP_TRANSFER_COMPLETE, {"pid": pid},
        )

    def _on_pending_forwarded(self, message: Message) -> None:
        payload = message.payload
        entry = self._incoming.get(payload["pid"])
        if entry is not None:
            entry.pending_expected = payload["count"]

    def _on_cleanup_complete(self, message: Message) -> None:
        """Step 8: restart the process and acknowledge."""
        payload = message.payload
        pid: ProcessId = payload["pid"]
        entry = self._incoming.pop(pid, None)
        if entry is None:
            return
        state = self.kernel.processes.get(pid)
        if state is None:  # pragma: no cover - defensive
            return
        self.kernel.restart_migrated_process(state)
        self.kernel.tracer.record(
            "migrate", "step8-restart", pid=str(pid),
            status=state.status.value,
        )
        self._send_admin(
            None, entry.source, OP_RESTART_ACK,
            {"pid": pid, "restarted_at": self.kernel.loop.now},
        )
        if self.kernel.config.notify_process_manager:
            self.kernel._notify_process_manager(
                "migrated",
                {"pid": pid, "from": entry.source, "to": self.kernel.machine},
                links=(self.kernel.control_link_snapshot(pid),),
            )

    # ==================================================================
    # Introspection
    # ==================================================================

    @property
    def in_progress(self) -> int:
        """Outbound plus inbound migrations currently underway."""
        return len(self._outgoing) + len(self._incoming)

    def outgoing_pids(self) -> list[ProcessId]:
        """Pids currently migrating away from this machine."""
        return sorted(self._outgoing, key=str)
