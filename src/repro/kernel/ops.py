"""Operation tags for kernel-to-kernel and kernel-targeted messages.

Centralised so tests and traces can refer to them, and so the payload-size
table (the paper's "6-12 byte range" for control messages) lives in one
place next to the ops it describes.
"""

from __future__ import annotations

# --- DELIVERTOKERNEL operations targeted at a process (paper §2.2) ------
OP_STOP_PROCESS = "stop-process"  #: suspend, wherever the process is
OP_START_PROCESS = "start-process"  #: resume a suspended process
OP_MIGRATE_PROCESS = "migrate-process"  #: PM directive: move to payload machine
OP_TRANSFER_DONE = "dma-done"  #: completion of a MoveData transfer
OP_DMA_READ_REQ = "dma-read-req"  #: holder kernel asks owner kernel to stream
OP_DMA_WRITE_CHUNK = "dma-write-chunk"  #: holder pushes data toward owner
OP_DMA_READ_CHUNK = "dma-read-chunk"  #: owner streams data toward holder
OP_DMA_ERROR = "dma-error"  #: transfer failed (bad area, dead owner)

# --- Kernel-addressed control operations ---------------------------------
OP_SPAWN = "spawn"  #: process manager asks a kernel to create a process
OP_SPAWN_REPLY = "spawn-reply"
OP_FORWARD_GC = "forward-gc"  #: collect a forwarding address (process died)
OP_NACK = "nack"  #: return-to-sender: message could not be delivered
OP_WHERE_IS_REPLY = "where-is-reply"  #: process manager -> kernel location answer
OP_UNDELIVERABLE = "__undeliverable__"  #: notice delivered to a sending process

# --- Migration protocol (paper §3.1; exactly nine per migration) ---------
OP_MIGRATE_REQUEST = "mig-request"
OP_MIGRATE_ACCEPT = "mig-accept"
OP_SEG_REQUEST = "mig-move-req"
OP_TRANSFER_COMPLETE = "mig-xfer-done"
OP_PENDING_FORWARDED = "mig-pending"
OP_CLEANUP_COMPLETE = "mig-cleanup-done"
OP_RESTART_ACK = "mig-restarted"
OP_MIGRATE_DATA = "mig-data"  #: bulk state chunks (datamove, not admin)

#: Payload sizes of the nine administrative messages, all within the
#: paper's "6-12 byte range".  OP_SEG_REQUEST is sent three times
#: (resident state, swappable state, program), giving 9 messages total:
#: request, accept, 3x seg-request, xfer-done, pending, cleanup, restart.
ADMIN_PAYLOAD_BYTES: dict[str, int] = {
    OP_MIGRATE_REQUEST: 12,  # pid(4) + three segment sizes (explicitly packed)
    OP_MIGRATE_ACCEPT: 6,  # pid(4) + verdict(2)
    OP_SEG_REQUEST: 10,  # pid(4) + segment(2) + length(4)
    OP_TRANSFER_COMPLETE: 6,  # pid(4) + status(2)
    OP_PENDING_FORWARDED: 8,  # pid(4) + forwarded count(4)
    OP_CLEANUP_COMPLETE: 6,  # pid(4) + status(2)
    OP_RESTART_ACK: 6,  # pid(4) + status(2)
}

#: Number of administrative messages per successful migration (paper §6:
#: "The current DEMOS/MP implementation uses 9 such messages").
ADMIN_MESSAGES_PER_MIGRATION = 9

# --- Miscellaneous small-control payload sizes ---------------------------
CONTROL_PAYLOAD_BYTES: dict[str, int] = {
    OP_STOP_PROCESS: 6,
    OP_START_PROCESS: 6,
    OP_MIGRATE_PROCESS: 8,
    OP_FORWARD_GC: 6,
    OP_TRANSFER_DONE: 10,
    OP_DMA_READ_REQ: 12,
    OP_DMA_ERROR: 8,
}
