"""The complete state of a DEMOS/MP process (paper Figure 2-2).

"A process consists of the program being executed, along with the
program's data, stack, and state.  The state consists of the execution
status, dispatch information, incoming message queue, memory tables, and
the process's link table."  Because all of that lives in this one object —
no process state is hidden in other kernel modules — migrating a process
is moving this object (step 4/5) plus its memory bytes.

The paper's §6 byte counts are modelled exactly: the non-swappable
(resident) state is ~250 bytes; the swappable state is ~600 bytes,
depending on the size of the link table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Generator

from repro.errors import ProcessStateError
from repro.kernel.ids import ProcessId
from repro.kernel.links import LinkTable
from repro.kernel.memory import MemoryImage
from repro.kernel.messages import Message
from repro.net.topology import MachineId

#: Paper §6: "The non-swappable state uses about 250 bytes".
RESIDENT_STATE_BYTES = 250
#: Base of the swappable state; with a typical ten-link table this reaches
#: the paper's "about 600 bytes (depending on the size of the link table)".
SWAPPABLE_STATE_BASE_BYTES = 440


class ProcessStatus(Enum):
    """Execution status recorded in the process state."""

    READY = "ready"  #: runnable, on (or entitled to) the run queue
    RUNNING = "running"  #: currently holding the CPU
    WAITING_MESSAGE = "waiting"  #: blocked in Receive on an empty queue
    SLEEPING = "sleeping"  #: blocked in Sleep until a deadline
    WAITING_TRANSFER = "waiting-transfer"  #: blocked in MoveData
    SUSPENDED = "suspended"  #: stopped by a control operation
    IN_MIGRATION = "in-migration"  #: being moved; messages are held
    TERMINATED = "terminated"  #: exited; state awaiting reclamation


#: Statuses from which a process may be put on the run queue.
RUNNABLE = frozenset({ProcessStatus.READY, ProcessStatus.RUNNING})

Program = Generator[Any, Any, None]


@dataclass
class ProcessAccounting:
    """Resource usage counters (the paper's accounting/monitoring data,
    which migration decision rules feed on)."""

    cpu_time: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    migrations: int = 0
    forwarded_to_me: int = 0


@dataclass
class ProcessState:
    """Everything the kernel knows about one process."""

    pid: ProcessId
    name: str = ""
    status: ProcessStatus = ProcessStatus.READY
    #: status to restore on the destination machine; set while IN_MIGRATION
    saved_status: ProcessStatus | None = None
    program: Program | None = None
    #: value to send into the program generator at next resume
    resume_value: Any = None
    #: exception to throw into the program generator at next resume
    resume_error: BaseException | None = None
    #: the syscall currently being serviced (e.g. an unfinished Compute)
    pending_syscall: Any = None
    message_queue: deque[Message] = field(default_factory=deque)
    link_table: LinkTable = field(default_factory=LinkTable)
    memory: MemoryImage = field(default_factory=MemoryImage.sized)
    priority: int = 0
    accounting: ProcessAccounting = field(default_factory=ProcessAccounting)
    #: machines this process has lived on, oldest first (for forwarding-
    #: address garbage collection backwards along the migration path)
    residence_history: list[MachineId] = field(default_factory=list)
    exit_code: int | None = None
    #: microseconds of an unfinished Compute syscall still owed the CPU
    compute_remaining: int = 0
    #: absolute wake time for a Receive timeout or Sleep (machine-local)
    wake_deadline: int | None = None
    #: remaining wait converted from ``wake_deadline`` while migrating
    wake_remaining: int | None = None
    #: bookkeeping for a blocking MoveData transfer (travels with the
    #: process so chunks arriving after a migration still complete it)
    transfer_id: tuple[MachineId, int] | None = None
    transfer_total: int = 0
    transfer_received: int = 0
    #: status to restore when a SUSPENDED process is started again
    suspended_from: "ProcessStatus | None" = None
    #: the ProcessContext bound to this process (rebound on migration)
    context: Any = None

    # ------------------------------------------------------------------
    # Status transitions
    # ------------------------------------------------------------------

    def begin_migration(self) -> None:
        """Step 1: mark "in migration", remembering the recorded state.

        "No change is made to the recorded state of the process (whether
        it is suspended, running, waiting for message, etc.), since the
        process will (at least initially) be in the same state when it
        reaches its destination processor."
        """
        if self.status is ProcessStatus.IN_MIGRATION:
            raise ProcessStateError(f"{self.pid} is already in migration")
        if self.status is ProcessStatus.TERMINATED:
            raise ProcessStateError(f"{self.pid} has terminated")
        # A process caught on the CPU restarts as READY (it was preempted
        # by the migration itself); everything else restarts as-is.
        recorded = self.status
        if recorded is ProcessStatus.RUNNING:
            recorded = ProcessStatus.READY
        self.saved_status = recorded
        self.status = ProcessStatus.IN_MIGRATION

    def abort_migration(self) -> None:
        """Undo step 1 after a destination refusal."""
        if self.status is not ProcessStatus.IN_MIGRATION:
            raise ProcessStateError(f"{self.pid} is not in migration")
        assert self.saved_status is not None
        self.status = self.saved_status
        self.saved_status = None

    def complete_migration(self) -> None:
        """Step 8: restart in whatever state it was in before being moved."""
        if self.status is not ProcessStatus.IN_MIGRATION:
            raise ProcessStateError(f"{self.pid} is not in migration")
        assert self.saved_status is not None
        self.status = self.saved_status
        self.saved_status = None
        self.accounting.migrations += 1

    # ------------------------------------------------------------------
    # Size accounting (paper §6)
    # ------------------------------------------------------------------

    @property
    def resident_state_bytes(self) -> int:
        """Bytes of non-swappable state moved in migration (≈250)."""
        return RESIDENT_STATE_BYTES

    @property
    def swappable_state_bytes(self) -> int:
        """Bytes of swappable state moved in migration (≈600, link-table
        dependent)."""
        return SWAPPABLE_STATE_BASE_BYTES + self.link_table.swappable_bytes()

    @property
    def program_bytes(self) -> int:
        """Bytes of program memory (code + data + stack)."""
        return self.memory.total_bytes

    @property
    def queued_message_count(self) -> int:
        """Messages waiting in the incoming queue."""
        return len(self.message_queue)

    def __repr__(self) -> str:
        return (
            f"ProcessState({self.pid} '{self.name}' {self.status.value}"
            f" q={len(self.message_queue)} links={len(self.link_table)})"
        )
