"""Per-kernel CPU scheduling.

Each kernel independently maintains its own CPU (paper §2.1).  We use a
priority round-robin: higher-priority processes always dispatch first,
and processes of equal priority share the CPU in FIFO rotation with a
fixed quantum.  Priority 0 is the default; system servers may be boosted.
Compute-bound work contends for the CPU, which is what makes run-queue
length a meaningful load metric for the migration decision policies.
"""

from __future__ import annotations

from collections import deque

from repro.kernel.ids import ProcessId


class RoundRobinScheduler:
    """Priority levels of FIFO run queues with O(1) membership checks."""

    def __init__(self, quantum: int = 1_000) -> None:
        self.quantum = quantum
        self._queues: dict[int, deque[ProcessId]] = {}
        #: priority levels in dispatch order (descending); rebuilt only
        #: when a new level appears, so pick_next never re-sorts
        self._levels: list[int] = []
        self._queued: dict[ProcessId, int] = {}  # pid -> priority level
        self.running: ProcessId | None = None

    def __len__(self) -> int:
        return len(self._queued)

    def enqueue(self, pid: ProcessId, priority: int = 0) -> None:
        """Add *pid* at *priority* to the back of its queue.  Idempotent
        (a pid already queued or running is left where it is)."""
        if pid in self._queued or pid == self.running:
            return
        queue = self._queues.get(priority)
        if queue is None:
            queue = deque()
            self._queues[priority] = queue
            self._levels = sorted(self._queues, reverse=True)
        queue.append(pid)
        self._queued[pid] = priority

    def remove(self, pid: ProcessId) -> None:
        """Take *pid* off the run queue if queued (migration step 1)."""
        priority = self._queued.pop(pid, None)
        if priority is not None:
            self._queues[priority].remove(pid)

    def pick_next(self) -> ProcessId | None:
        """Pop the next process to run (highest priority, FIFO within),
        marking it as running."""
        for priority in self._levels:
            queue = self._queues[priority]
            if queue:
                pid = queue.popleft()
                del self._queued[pid]
                self.running = pid
                return pid
        return None

    def release_cpu(self, pid: ProcessId) -> None:
        """The running process gave up the CPU."""
        if self.running == pid:
            self.running = None

    @property
    def load(self) -> int:
        """Run-queue length plus the running process, the paper's
        'processor loading' input to migration decisions."""
        return len(self._queued) + (1 if self.running is not None else 0)

    def queued_pids(self) -> list[ProcessId]:
        """Queue contents in dispatch order (diagnostics)."""
        out: list[ProcessId] = []
        for priority in self._levels:
            out.extend(self._queues[priority])
        return out
