"""The kernel-call vocabulary available to simulated programs.

"All interactions between one process and another or between a process
and the system are via communication-oriented kernel calls" (paper §2.1).
Programs are Python generators; they *yield* one of these dataclasses and
are resumed with the call's result (or have an error thrown into them).

Example program::

    def echo_server(ctx):
        service = yield CreateLink()          # a link to myself
        yield Send(ctx.bootstrap["switchboard"], op="register",
                   payload={"name": "echo"}, links=(service,))
        while True:
            msg = yield Receive()
            if msg.delivered_link_ids:
                yield Send(msg.delivered_link_ids[0], op="echo-reply",
                           payload=msg.payload)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.kernel.links import DataArea, LinkAttribute
from repro.net.topology import MachineId


class Syscall:
    """Marker base class for everything a program may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Syscall):
    """Send a message over a link in my link table.

    Non-blocking: links are buffered one-way channels.  ``links`` encloses
    copies of other links from my table (e.g. a reply link); the receiver's
    kernel materialises them into its link table at delivery.
    """

    link_id: int
    op: str = "msg"
    payload: Any = None
    payload_bytes: int = 32
    links: tuple[int, ...] = ()
    deliver_to_kernel: bool = False


@dataclass(frozen=True)
class Receive(Syscall):
    """Block until a message arrives; resumes with the :class:`Message`.

    With a ``timeout`` (microseconds) the call instead resumes with
    ``None`` if nothing arrives in time.
    """

    timeout: int | None = None


@dataclass(frozen=True)
class CreateLink(Syscall):
    """Create a link pointing at *me*; resumes with its local link id."""

    attributes: LinkAttribute = LinkAttribute.NONE
    data_area: DataArea | None = None


@dataclass(frozen=True)
class DupLink(Syscall):
    """Duplicate a link in my table; resumes with the new link id."""

    link_id: int


@dataclass(frozen=True)
class DestroyLink(Syscall):
    """Remove a link from my table; resumes with None."""

    link_id: int


@dataclass(frozen=True)
class Compute(Syscall):
    """Consume *duration* microseconds of CPU (contended, quantised)."""

    duration: int


@dataclass(frozen=True)
class Sleep(Syscall):
    """Block for *duration* microseconds without holding the CPU."""

    duration: int


@dataclass(frozen=True)
class MoveData(Syscall):
    """Bulk-transfer through a data-area link (paper §2.2).

    ``direction`` is "read" (their memory -> mine) or "write" (mine ->
    theirs); access must match the link's DATA_READ/DATA_WRITE grant.
    Resumes with the number of bytes moved once the streamed, per-packet-
    acknowledged transfer completes, wherever the target process now lives.
    """

    link_id: int
    direction: str  # "read" | "write"
    offset: int
    length: int


@dataclass(frozen=True)
class RequestMigration(Syscall):
    """Ask to be migrated to *destination* ("it is of course possible for
    a process to request its own migration", §3.1).  Resumes with True if
    the migration was initiated."""

    destination: MachineId


@dataclass(frozen=True)
class Exit(Syscall):
    """Terminate this process."""

    code: int = 0


@dataclass(frozen=True)
class GetInfo(Syscall):
    """Resumes with a dict: pid, machine, now, queue_length, link_count."""


@dataclass(frozen=True)
class Yield(Syscall):
    """Give up the CPU voluntarily; resumes after requeueing."""
