"""Simulated inter-machine network.

Topology + lossy channels + a reliable ordered transport: the stand-in for
the Z8000 network and the *published communications* reliable-delivery
substrate the paper assumes.
"""

from repro.net.channel import Channel, FaultPlan
from repro.net.network import Network
from repro.net.packet import (
    ACK_PAYLOAD_BYTES,
    PACKET_HEADER_BYTES,
    Packet,
    PacketKind,
)
from repro.net.reliable import DEFAULT_RTO, ReliableTransport
from repro.net.stats import NetworkStats
from repro.net.topology import MachineId, Topology, Wire

__all__ = [
    "ACK_PAYLOAD_BYTES",
    "DEFAULT_RTO",
    "PACKET_HEADER_BYTES",
    "Channel",
    "FaultPlan",
    "MachineId",
    "Network",
    "NetworkStats",
    "Packet",
    "PacketKind",
    "ReliableTransport",
    "Topology",
    "Wire",
]
