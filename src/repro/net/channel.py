"""Lossy point-to-point channels.

A channel moves packets along one wire of the topology with the wire's
latency + serialisation delay, optionally injecting the classic faults —
drop, duplicate, jitter — from a named random stream.  The reliable layer
above (:mod:`repro.net.reliable`) recovers from all of them, which is the
delivery guarantee the paper assumes of *published communications*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.net.packet import Packet
from repro.net.topology import Wire
from repro.sim.loop import EventLoop


@dataclass
class FaultPlan:
    """Fault-injection knobs for a channel.  All default to 'perfect'."""

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    max_jitter: int = 0  #: extra delivery delay, uniform in [0, max_jitter]

    @property
    def is_perfect(self) -> bool:
        """True when no faults will ever be injected."""
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.max_jitter == 0
        )


class Channel:
    """One directed wire with delay and optional fault injection."""

    def __init__(
        self,
        loop: EventLoop,
        wire: Wire,
        deliver: Callable[[Packet], None],
        faults: FaultPlan | None = None,
        rng: random.Random | None = None,
        on_drop: Callable[[Packet], None] | None = None,
        on_duplicate: Callable[[Packet], None] | None = None,
    ) -> None:
        self._loop = loop
        self._wire = wire
        self._deliver = deliver
        self.faults = faults or FaultPlan()
        self._rng = rng or random.Random(0)
        self._on_drop = on_drop
        self._on_duplicate = on_duplicate
        self.in_flight = 0
        #: the wire is serial: a packet cannot start serialising before
        #: the previous one has finished (this is what makes bulk state
        #: transfer cost scale with process size, paper §6)
        self._busy_until = 0

    @property
    def wire(self) -> Wire:
        """The underlying topology wire."""
        return self._wire

    def transmit(self, packet: Packet) -> None:
        """Put *packet* on the wire; it arrives (or not) later."""
        plan = self.faults
        if (
            plan.drop_probability
            and self._rng.random() < plan.drop_probability
        ):
            if self._on_drop is not None:
                self._on_drop(packet)
            return
        copies = 1
        if (
            plan.duplicate_probability
            and self._rng.random() < plan.duplicate_probability
        ):
            copies = 2
            if self._on_duplicate is not None:
                self._on_duplicate(packet)
        now = self._loop.now
        serialization = (
            packet.size_bytes * 1_000 // max(self._wire.bandwidth, 1)
        )
        for _ in range(copies):
            departs = max(now, self._busy_until) + serialization
            self._busy_until = departs
            delay = departs - now + self._wire.latency
            if plan.max_jitter:
                delay += self._rng.randint(0, plan.max_jitter)
            self.in_flight += 1
            self._loop.call_after(delay, self._arrive, packet)

    def _arrive(self, packet: Packet) -> None:
        self.in_flight -= 1
        self._deliver(packet)
