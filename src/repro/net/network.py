"""The network facade kernels talk to.

``Network`` wires together the topology, lossy per-wire channels, and one
:class:`~repro.net.reliable.ReliableTransport` endpoint per machine.
Packets are routed hop-by-hop along latency-weighted shortest paths; fault
injection (if configured) applies independently on every hop.

Kernels use exactly two operations:

- :meth:`Network.send` — reliably deliver an opaque payload to a machine;
- :meth:`Network.register_receiver` — claim a machine's inbound payloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import SimulationError, UnknownMachineError
from repro.net.channel import Channel, FaultPlan
from repro.net.packet import Packet
from repro.net.reliable import DEFAULT_RTO, ReliableTransport
from repro.net.stats import NetworkStats
from repro.net.topology import MachineId, Topology
from repro.sim.barrier import (
    RECORD_KEY,
    HopRecord,
    SyncStats,
    pack_record,
    record_entry_key,
)
from repro.sim.loop import EventLoop
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

Receiver = Callable[[MachineId, Any], None]


class Network:
    """All inter-machine communication for one simulated system."""

    def __init__(
        self,
        loop: EventLoop,
        topology: Topology,
        tracer: Tracer | None = None,
        rngs: RandomStreams | None = None,
        faults: FaultPlan | None = None,
        rto: int = DEFAULT_RTO,
        metrics: "MetricsRegistry | None" = None,
        machines: list[MachineId] | None = None,
    ) -> None:
        self.loop = loop
        self.topology = topology
        self.tracer = tracer
        self.stats = NetworkStats()
        if metrics is not None:
            metrics.register_collector(self.stats.publish)
        self._rngs = rngs or RandomStreams(0)
        self._default_faults = faults or FaultPlan()
        self._channels: dict[tuple[MachineId, MachineId], Channel] = {}
        self._transports: dict[MachineId, ReliableTransport] = {}
        #: fail-stop takeover: traffic addressed to a crashed machine is
        #: carried to (and accepted by) its executor, modelling the
        #: published-communications recovery the paper defers to (§4)
        self._redirects: dict[MachineId, MachineId] = {}
        # A sharded system builds one facade per shard, with transports
        # only for the machines that shard owns (packets to everyone
        # else leave as hop records, see ShardNetwork below).
        for machine in (
            topology.machines if machines is None else machines
        ):
            self._transports[machine] = ReliableTransport(
                machine,
                loop,
                # Route from the transport's physical machine, not from
                # packet.src: an executor acks with the dead machine's
                # address in the src field.
                transmit_fn=(
                    lambda packet, _here=machine:
                    self._forward_from(_here, packet)
                ),
                stats=self.stats,
                tracer=tracer,
                rto=rto,
            )

    # ------------------------------------------------------------------
    # Kernel-facing API
    # ------------------------------------------------------------------

    def register_receiver(
        self, machine: MachineId, receiver: Receiver
    ) -> None:
        """Deliver in-order payloads arriving at *machine* to *receiver*."""
        transport = self._transport(machine)
        transport.deliver_fn = receiver

    def send(
        self,
        src: MachineId,
        dst: MachineId,
        payload: Any,
        payload_bytes: int,
        category: str = "user",
    ) -> None:
        """Reliably send *payload* from machine *src* to machine *dst*."""
        if src == dst:
            raise UnknownMachineError(
                f"machine {src} tried to use the network to reach itself; "
                "local delivery never touches the wire"
            )
        self._transport(src).send(dst, payload, payload_bytes, category)

    def set_faults(
        self,
        faults: FaultPlan,
        a: MachineId | None = None,
        b: MachineId | None = None,
    ) -> None:
        """Apply a fault plan to one wire pair (both directions) or, with no
        machines given, to every current and future channel."""
        if a is None and b is None:
            self._default_faults = faults
            for channel in self._channels.values():
                channel.faults = faults
            return
        if a is None or b is None:
            raise UnknownMachineError(
                "set_faults needs both machines or neither"
            )
        for pair in ((a, b), (b, a)):
            self._channel(*pair).faults = faults

    def cut_pairs(
        self, group_a: Iterable[MachineId], group_b: Iterable[MachineId]
    ) -> list[tuple[MachineId, MachineId]]:
        """The wire pairs whose endpoints straddle the two groups.

        Only physically adjacent pairs count: routing still follows the
        (unchanged) shortest paths, so faulting exactly these wires is
        what stops — or degrades — all traffic that must cross the cut.
        """
        b_set = set(group_b)
        return [
            (a, b)
            for a in sorted(group_a)
            for b in self.topology.neighbors(a)
            if b in b_set
        ]

    def partition(
        self,
        group_a: Iterable[MachineId],
        group_b: Iterable[MachineId],
        plan: FaultPlan | None = None,
    ) -> int:
        """Sever (or degrade) every wire between the two machine groups.

        With no *plan*, the cut wires drop everything — a clean network
        partition.  The reliable transport keeps retransmitting across
        the cut, so traffic resumes exactly-once after :meth:`heal`.
        Returns the number of wire pairs affected.
        """
        plan = plan if plan is not None else FaultPlan(drop_probability=1.0)
        pairs = self.cut_pairs(group_a, group_b)
        for a, b in pairs:
            self.set_faults(plan, a, b)
        return len(pairs)

    def heal(
        self,
        group_a: Iterable[MachineId],
        group_b: Iterable[MachineId],
    ) -> int:
        """Restore the cut wires to the network's default fault plan."""
        pairs = self.cut_pairs(group_a, group_b)
        for a, b in pairs:
            self.set_faults(self._default_faults, a, b)
        return len(pairs)

    def redirect_machine(
        self, dead: MachineId, executor: MachineId
    ) -> None:
        """Deliver all traffic addressed to *dead* at *executor* instead.

        Installed by crash recovery: the executor's transport accepts the
        dead machine's packets (and acks them), so senders' outstanding
        retransmissions settle instead of looping forever.
        """
        if dead == executor:
            raise UnknownMachineError("a machine cannot execute itself")
        self._transport(dead)  # validate both exist
        self._transport(executor)
        self._redirects[dead] = executor
        # Chase chains: anything previously redirected to `dead` now
        # lands on the executor too.
        for original, target in list(self._redirects.items()):
            if target == dead:
                self._redirects[original] = executor

    def effective_destination(self, machine: MachineId) -> MachineId:
        """Where traffic addressed to *machine* is actually delivered."""
        return self._redirects.get(machine, machine)

    def crash_machine(self, dead: MachineId, executor: MachineId) -> None:
        """Fail-stop *dead* at the transport level.

        Installs the redirect, hands the dead machine's receive-stream
        state (the published mirror) to the executor so redirected
        packets keep their sequence spaces, and abandons the dead
        machine's own unacknowledged sends — fail-stop semantics: they
        may or may not have been delivered.
        """
        self.redirect_machine(dead, executor)
        dead_transport = self._transport(dead)
        self._transport(executor).absorb_recv_states(
            dead_transport.export_recv_states()
        )
        abandoned = dead_transport.abandon_sends()
        if self.tracer is not None:
            self.tracer.record(
                "net",
                "crash",
                machine=dead,
                executor=executor,
                abandoned_sends=abandoned,
            )

    def in_flight(self) -> int:
        """Packets currently on some wire (diagnostics)."""
        return sum(c.in_flight for c in self._channels.values())

    def unacked(self) -> int:
        """Packets awaiting acknowledgement across all machines."""
        return sum(t.unacked_count for t in self._transports.values())

    def quiescent(self) -> bool:
        """True when nothing is in flight and nothing awaits an ack."""
        return self.in_flight() == 0 and self.unacked() == 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _transport(self, machine: MachineId) -> ReliableTransport:
        try:
            return self._transports[machine]
        except KeyError:
            raise UnknownMachineError(f"unknown machine {machine}") from None

    def _channel(self, a: MachineId, b: MachineId) -> Channel:
        channel = self._channels.get((a, b))
        if channel is None:
            wire = self.topology.wire(a, b)
            channel = Channel(
                self.loop,
                wire,
                deliver=lambda pkt, _here=b: self._hop_arrived(_here, pkt),
                faults=self._default_faults,
                rng=self._rngs.stream(f"channel/{a}->{b}"),
                on_drop=self._note_drop,
                on_duplicate=self._note_duplicate,
            )
            self._channels[(a, b)] = channel
        return channel

    def _forward_from(self, here: MachineId, packet: Packet) -> None:
        destination = self.effective_destination(packet.dst)
        if here == destination:
            self._transport(here).on_packet(packet)
            return
        next_hop = self.topology.next_hop(here, destination)
        self._channel(here, next_hop).transmit(packet)

    def _hop_arrived(self, here: MachineId, packet: Packet) -> None:
        if here == self.effective_destination(packet.dst):
            self._transport(here).on_packet(packet)
        else:
            self._forward_from(here, packet)

    def _note_drop(self, packet: Packet) -> None:
        self.stats.note_drop()
        if self.tracer is not None:
            self.tracer.record(
                "net",
                "drop",
                src=packet.src,
                dst=packet.dst,
                seq=packet.seq,
            )

    def _note_duplicate(self, packet: Packet) -> None:
        self.stats.note_duplicate()
        if self.tracer is not None:
            self.tracer.record(
                "net",
                "duplicate",
                src=packet.src,
                dst=packet.dst,
                seq=packet.seq,
            )


class ShardNetwork(Network):
    """The network facade for one shard of a sharded system.

    Same kernel-facing API as :class:`Network`, but it owns transports
    only for the shard's machines, and **no** hop is scheduled directly
    on an event loop: every wire transmit — even one whose next hop is
    in the same shard — becomes a :class:`~repro.sim.barrier.HopRecord`
    in a per-destination-shard outbox.  Records are handed over at the
    next conservative barrier, sorted canonically, and injected with
    :meth:`receive_record`, so the ``(time, seq)`` order of deliveries
    on any one machine is identical for every shard count (see
    :mod:`repro.sim.barrier`).

    Per-wire state — the serialisation horizon (``busy_until``), the
    monotone hop counter, and the fault-injection stream — lives with
    the wire's *source* shard, so it is touched by exactly one worker
    and its evolution is shard-layout independent.

    Fail-stop takeover works, but only through
    :meth:`~repro.sim.shard.ShardedSystem.crash_transport`, which
    replicates the redirect onto every shard's routing view at a global
    barrier (:meth:`install_redirect`); the direct
    :meth:`redirect_machine` / :meth:`crash_machine` entry points
    refuse, because one shard flipping alone would desynchronise
    routing.  Retroactive ``set_faults`` stays unsupported (the default
    plan from the config applies to every wire from the start).

    With *elide_grid* set (barrier elision), the loop must be a
    :class:`~repro.sim.loop.KeyedEventLoop` on the same grid: records
    carry their production window (``gen``) and are scheduled under
    their canonical key, which makes injection timing irrelevant — so
    hops whose next stop is in this same shard skip the outbox and are
    scheduled immediately, and cross-shard outboxes wait for their
    pair's rendezvous instead of the next global window.  Cross-shard
    outbox entries carry the record *and* its wire blob, pickled at
    production time (:func:`~repro.sim.barrier.pack_record`), so byte
    accounting is executor-exact and unpicklable payloads degrade to a
    capture envelope instead of an error.
    """

    def __init__(
        self,
        loop: EventLoop,
        topology: Topology,
        shard_index: int,
        shard_of: Callable[[MachineId], int],
        machines: list[MachineId],
        tracer: Tracer | None = None,
        rngs: RandomStreams | None = None,
        faults: FaultPlan | None = None,
        rto: int = DEFAULT_RTO,
        metrics: "MetricsRegistry | None" = None,
        elide_grid: int | None = None,
    ) -> None:
        super().__init__(
            loop,
            topology,
            tracer=tracer,
            rngs=rngs,
            faults=faults,
            rto=rto,
            metrics=metrics,
            machines=machines,
        )
        if elide_grid is not None and not hasattr(loop, "schedule_record"):
            raise SimulationError(
                "barrier elision needs a KeyedEventLoop (record keys are "
                "the loop's tie-break)"
            )
        self.shard_index = shard_index
        self.shard_of = shard_of
        self.machines = list(machines)
        #: sync-overhead counters the barrier runner fills in
        self.sync = SyncStats()
        #: test hook: called with each delivered HopRecord (or None)
        self.on_record_delivered: Callable[[HopRecord], None] | None = None
        self._elide_grid = elide_grid
        #: classic: lists of HopRecord; elided: lists of (record, blob)
        #: pairs — the blob packed at production time (pack_record)
        self._outboxes: dict[int, list] = {}
        self._wire_busy: dict[tuple[MachineId, MachineId], int] = {}
        self._wire_seq: dict[tuple[MachineId, MachineId], int] = {}
        self._wire_rngs: dict[tuple[MachineId, MachineId], Any] = {}
        self._inbound_pending = 0

    # -- barrier handoff ------------------------------------------------

    def take_outboxes(self) -> dict[int, list]:
        """Pending hop records keyed by destination shard (clears them).

        Each destination's list is sorted into canonical order here —
        at drain time, per source — so barriers merge the pre-sorted
        per-source lists instead of re-sorting the concatenation.
        Classic entries are plain records; elided entries are
        ``(record, blob)`` with the blob packed at production time.
        """
        outboxes = self._outboxes
        self._outboxes = {}
        key = (
            RECORD_KEY if self._elide_grid is None else record_entry_key
        )
        for records in outboxes.values():
            records.sort(key=key)
        return outboxes

    def take_outbox(self, dest: int) -> list:
        """Pending hop records for one destination shard, pre-sorted
        (clears just that outbox) — the pairwise-rendezvous drain.
        Same per-engine entry shape as :meth:`take_outboxes`."""
        records = self._outboxes.pop(dest, [])
        records.sort(
            key=RECORD_KEY if self._elide_grid is None
            else record_entry_key
        )
        return records

    def receive_record(self, record: HopRecord) -> None:
        """Schedule one barrier-delivered hop at its exact arrival tick.

        Classic schedule: called in canonical record order; ``call_at``
        hands out sequence numbers in call order, so the injection
        order *is* the delivery tie-break order.  Under elision the
        record's own key is the tie-break and the call order does not
        matter.
        """
        self._inbound_pending += 1
        if self._elide_grid is not None:
            self.loop.schedule_record(record, self._record_arrived, record)
        else:
            self.loop.call_at(record.arrival, self._record_arrived, record)

    def _record_arrived(self, record: HopRecord) -> None:
        self._inbound_pending -= 1
        if self.on_record_delivered is not None:
            self.on_record_delivered(record)
        here = record.dst
        packet = record.packet
        if here == self.effective_destination(packet.dst):
            self._transport(here).on_packet(packet)
        else:
            self._forward_from(here, packet)

    # -- hop transmission ----------------------------------------------

    def _forward_from(self, here: MachineId, packet: Packet) -> None:
        destination = self.effective_destination(packet.dst)
        if here == destination:
            self._transport(here).on_packet(packet)
            return
        next_hop = self.topology.next_hop(here, destination)
        self._transmit_hop(here, next_hop, packet)

    def _transmit_hop(
        self, here: MachineId, next_hop: MachineId, packet: Packet
    ) -> None:
        """Mirror of :meth:`Channel.transmit`, emitting hop records.

        Same fault draws from the same named stream, same wire
        serialisation rule (a wire is serial: a packet cannot start
        serialising before the previous one finished), but the arrival
        is a record in the outbox instead of a scheduled event.
        """
        wire_key = (here, next_hop)
        plan = self._default_faults
        rng = None
        if not plan.is_perfect:
            rng = self._wire_rngs.get(wire_key)
            if rng is None:
                rng = self._rngs.stream(f"channel/{here}->{next_hop}")
                self._wire_rngs[wire_key] = rng
            if (
                plan.drop_probability
                and rng.random() < plan.drop_probability
            ):
                self._note_drop(packet)
                return
        copies = 1
        if (
            plan.duplicate_probability
            and rng.random() < plan.duplicate_probability
        ):
            copies = 2
            self._note_duplicate(packet)
        wire = self.topology.wire(here, next_hop)
        now = self.loop.now
        serialization = packet.size_bytes * 1_000 // max(wire.bandwidth, 1)
        busy = self._wire_busy.get(wire_key, 0)
        seq = self._wire_seq.get(wire_key, 0)
        grid = self._elide_grid
        if grid is None:
            outbox = self._outboxes.setdefault(self.shard_of(next_hop), [])
            for _ in range(copies):
                departs = max(now, busy) + serialization
                busy = departs
                delay = departs - now + wire.latency
                if plan.max_jitter:
                    delay += rng.randint(0, plan.max_jitter)
                seq += 1
                outbox.append(
                    HopRecord(now + delay, here, next_hop, seq, packet)
                )
        else:
            # Elision: tag the production window; a hop staying in this
            # shard needs no barrier at all — its key already places it.
            gen = now // grid
            dest_shard = self.shard_of(next_hop)
            direct = dest_shard == self.shard_index
            for _ in range(copies):
                departs = max(now, busy) + serialization
                busy = departs
                delay = departs - now + wire.latency
                if plan.max_jitter:
                    delay += rng.randint(0, plan.max_jitter)
                seq += 1
                record = HopRecord(
                    now + delay, here, next_hop, seq, packet, gen
                )
                if direct:
                    self.receive_record(record)
                else:
                    # Pack the wire blob *now*: the producing shard's
                    # state at this instant is executor-independent,
                    # so counted bytes (and shipped bytes) are too.
                    self._outboxes.setdefault(dest_shard, []).append(
                        (record, pack_record(record))
                    )
        self._wire_busy[wire_key] = busy
        self._wire_seq[wire_key] = seq

    # -- diagnostics -----------------------------------------------------

    def in_flight(self) -> int:
        """Hops waiting in outboxes plus injected-but-not-arrived ones."""
        queued = sum(len(box) for box in self._outboxes.values())
        return queued + self._inbound_pending

    # -- unsupported under sharding --------------------------------------

    def set_faults(
        self,
        faults: FaultPlan,
        a: MachineId | None = None,
        b: MachineId | None = None,
    ) -> None:
        raise SimulationError(
            "set_faults is not supported on a sharded network; configure "
            "SystemConfig.faults before building the system"
        )

    def redirect_machine(self, dead: MachineId, executor: MachineId) -> None:
        raise SimulationError(
            "direct fail-stop takeover is not supported on one shard "
            "network; go through ShardedSystem.crash_transport so every "
            "shard's routing view flips at the same barrier"
        )

    def crash_machine(self, dead: MachineId, executor: MachineId) -> None:
        raise SimulationError(
            "direct fail-stop takeover is not supported on one shard "
            "network; go through ShardedSystem.crash_transport so every "
            "shard's routing view flips at the same barrier"
        )

    # -- sharded fail-stop takeover ---------------------------------------

    def install_redirect(
        self, dead: MachineId, executor: MachineId
    ) -> None:
        """Route traffic addressed to *dead* towards *executor*.

        Called on **every** shard network by
        :meth:`~repro.sim.shard.ShardedSystem.crash_transport` at a
        global barrier, so all shards flip their (pure-data) routing
        view atomically.  No transport validation here — a shard
        usually owns neither machine; the sharded system validated
        both before fanning out.
        """
        if dead == executor:
            raise UnknownMachineError("a machine cannot execute itself")
        self._redirects[dead] = executor
        # Chase chains exactly as the classic facade does: anything
        # previously redirected to `dead` now lands on the executor.
        for original, target in list(self._redirects.items()):
            if target == dead:
                self._redirects[original] = executor
