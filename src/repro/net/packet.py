"""Packet framing and size accounting.

The paper's cost analysis counts messages and bytes, so every packet knows
its payload size and the fixed header overhead.  Payloads are opaque Python
objects; the simulator never serialises them — the *declared* byte size is
what travels on the simulated wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.net.topology import MachineId

#: Fixed framing overhead per packet: src(2) dst(2) seq(4) kind(1)
#: length(2) checksum(1) — 12 bytes, in the spirit of a Z8000-era LAN frame.
PACKET_HEADER_BYTES = 12

#: Size of a transport-level acknowledgement (header only + 4-byte seq echo).
ACK_PAYLOAD_BYTES = 4

_packet_serial = itertools.count(1)


class PacketKind(Enum):
    """Transport-level packet classification (for stats and traces)."""

    DATA = "data"  #: carries a payload from the layer above
    ACK = "ack"  #: transport acknowledgement


@dataclass(slots=True)
class Packet:
    """One frame on the simulated wire."""

    src: MachineId
    dst: MachineId
    kind: PacketKind
    seq: int
    payload: Any
    payload_bytes: int
    #: category tag from the layer above ("admin", "user", "datamove", ...);
    #: used only for accounting, never for routing.
    category: str = "user"
    serial: int = field(default_factory=lambda: next(_packet_serial))

    @property
    def size_bytes(self) -> int:
        """Total bytes on the wire, header included."""
        return PACKET_HEADER_BYTES + self.payload_bytes

    def __getstate__(self) -> tuple:
        """Positional wire form: every field except ``serial``.

        The serial is an address-space-local diagnostic id; a forked
        shard's counter diverges from the serial executor's shared one,
        so keeping it out of the pickle makes cross-shard blob bytes
        identical under every executor.  Unpickling mints a fresh local
        serial, preserving uniqueness within the receiving process.
        Positional (not a dict) because per-record wire blobs cannot
        share pickle memos — field-name keys would be repeated bytes on
        every record.
        """
        return (
            self.src, self.dst, self.kind, self.seq,
            self.payload, self.payload_bytes, self.category,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.src, self.dst, self.kind, self.seq,
            self.payload, self.payload_bytes, self.category,
        ) = state
        self.serial = next(_packet_serial)

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.serial} {self.src}->{self.dst}"
            f" {self.kind.value} seq={self.seq} {self.payload_bytes}B"
            f" cat={self.category})"
        )
