"""Reliable, ordered inter-machine delivery.

DEMOS/MP assumes "any message sent will eventually be delivered" and cites
*published communications* [Powell & Presotto 83] as the mechanism.  This
module provides the equivalent guarantee with a classic positive-ack /
retransmission / duplicate-suppression protocol:

- every payload gets a per-(source, addressed-destination) sequence
  number;
- the receiver acks each data packet and delivers payloads **in order**
  per stream (out-of-order arrivals are buffered);
- the sender retransmits unacknowledged packets with exponential backoff,
  forever — under any drop probability < 1 delivery is eventually certain.

Streams are identified by the *addressed* destination, not the physical
receiver: after a fail-stop crash, the dead machine's executor accepts
and acks its streams (the network redirects them) without them colliding
with the executor's own, which is the delivery-level half of the paper's
"the same recovery mechanism that works for processes works for
forwarding addresses".

In-order per-stream delivery also models the paper's note that move-data
packets are "sent to the receiving kernel in a continuous stream".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.packet import ACK_PAYLOAD_BYTES, Packet, PacketKind
from repro.net.stats import NetworkStats
from repro.net.topology import MachineId
from repro.sim.events import ScheduledEvent
from repro.sim.loop import EventLoop
from repro.sim.trace import Tracer

#: Default initial retransmission timeout, microseconds.
DEFAULT_RTO = 5_000
#: Multiplicative backoff applied on every retransmission.
RTO_BACKOFF = 2
#: Cap on the backed-off timeout so recovery stays bounded.
MAX_RTO = 200_000

#: A receive stream: (source machine, machine the packets were addressed
#: to — usually the receiver itself, or a dead machine it executes).
StreamKey = tuple[MachineId, MachineId]


@dataclass(slots=True)
class _Outstanding:
    """A data packet awaiting acknowledgement.

    Carries its retransmission *deadline* instead of a dedicated timer
    event: the send state runs one shared timer at the earliest deadline
    of all its unacked packets, so acking a packet never has to cancel
    anything and a burst of sends arms a single heap entry instead of
    one per packet.
    """

    packet: Packet
    deadline: int
    rto: int
    attempts: int = 1


@dataclass(slots=True)
class _SendState:
    """Per-addressed-destination sender state."""

    next_seq: int = 0
    unacked: dict[int, _Outstanding] = field(default_factory=dict)
    #: the one armed timer for this destination (None when idle)
    timer: ScheduledEvent | None = None
    #: simulated time the armed timer fires at
    timer_deadline: int = 0


@dataclass
class _RecvState:
    """Per-stream receiver state."""

    next_deliver_seq: int = 0
    reorder_buffer: dict[int, Packet] = field(default_factory=dict)


class ReliableTransport:
    """The reliable endpoint living on one machine.

    ``transmit_fn`` pushes a raw packet toward its destination (the network
    routes it); ``deliver_fn`` hands an in-order payload to the kernel.
    """

    def __init__(
        self,
        machine: MachineId,
        loop: EventLoop,
        transmit_fn: Callable[[Packet], None],
        stats: NetworkStats,
        tracer: Tracer | None = None,
        rto: int = DEFAULT_RTO,
    ) -> None:
        self.machine = machine
        self._loop = loop
        self._transmit = transmit_fn
        self._stats = stats
        self._tracer = tracer
        self._base_rto = rto
        self._send_states: dict[MachineId, _SendState] = {}
        self._recv_states: dict[StreamKey, _RecvState] = {}
        self.deliver_fn: Callable[[MachineId, Any], None] | None = None

    def _send_state(self, dst: MachineId) -> _SendState:
        state = self._send_states.get(dst)
        if state is None:
            state = _SendState()
            self._send_states[dst] = state
        return state

    def _recv_state(self, key: StreamKey) -> _RecvState:
        state = self._recv_states.get(key)
        if state is None:
            state = _RecvState()
            self._recv_states[key] = state
        return state

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(
        self,
        dst: MachineId,
        payload: Any,
        payload_bytes: int,
        category: str = "user",
    ) -> None:
        """Reliably send *payload* to machine *dst*."""
        sender = self._send_state(dst)
        seq = sender.next_seq
        sender.next_seq += 1
        packet = Packet(
            src=self.machine,
            dst=dst,
            kind=PacketKind.DATA,
            seq=seq,
            payload=payload,
            payload_bytes=payload_bytes,
            category=category,
        )
        self._stats.note_send(packet)
        deadline = self._loop.now + self._base_rto
        sender.unacked[seq] = _Outstanding(packet, deadline, self._base_rto)
        self._arm_timer(dst, sender, deadline)
        self._transmit(packet)

    def _arm_timer(
        self, dst: MachineId, sender: _SendState, deadline: int
    ) -> None:
        """Make sure the destination's timer fires by *deadline*.

        Lazy re-arm: an already armed timer that fires earlier is left
        alone (its wakeup re-arms for whatever is still pending); one
        that fires later is cancelled and brought forward.
        """
        if sender.timer is not None and not sender.timer.cancelled:
            if sender.timer_deadline <= deadline:
                return
            self._loop.cancel(sender.timer)
        sender.timer = self._loop.call_at(deadline, self._on_timer, dst)
        sender.timer_deadline = deadline

    def _on_timer(self, dst: MachineId) -> None:
        """Retransmit every packet to *dst* whose deadline has passed.

        Transmits can loop straight back into this transport: when this
        machine executes a crashed *dst*, the network delivers the packet
        locally and the resulting ack pops ``sender.unacked`` before
        ``_transmit`` returns.  So the scan collects expired entries from
        a snapshot, transmits afterwards (skipping anything acked
        mid-burst), and recomputes the next deadline from the live dict.
        """
        sender = self._send_state(dst)
        sender.timer = None
        if not sender.unacked:
            return
        now = self._loop.now
        expired = [
            (seq, entry)
            for seq, entry in sender.unacked.items()
            if entry.deadline <= now
        ]
        for seq, entry in expired:
            if seq not in sender.unacked:
                continue  # acked by a synchronous loop-back transmit
            entry.attempts += 1
            entry.rto = min(entry.rto * RTO_BACKOFF, MAX_RTO)
            entry.deadline = now + entry.rto
            self._stats.note_send(entry.packet, retransmit=True)
            if self._tracer is not None:
                self._tracer.record(
                    "net",
                    "retransmit",
                    src=self.machine,
                    dst=dst,
                    seq=seq,
                    attempt=entry.attempts,
                )
            self._transmit(entry.packet)
        if sender.unacked:
            self._arm_timer(
                dst,
                sender,
                min(e.deadline for e in sender.unacked.values()),
            )

    @property
    def unacked_count(self) -> int:
        """Total packets awaiting acknowledgement across all peers."""
        return sum(len(s.unacked) for s in self._send_states.values())

    # ------------------------------------------------------------------
    # Fail-stop takeover (crash recovery support)
    # ------------------------------------------------------------------

    def export_recv_states(self) -> dict[StreamKey, _RecvState]:
        """The receive streams, for an executor to absorb (the published
        state a backup would hold)."""
        return dict(self._recv_states)

    def absorb_recv_states(
        self, states: dict[StreamKey, _RecvState]
    ) -> None:
        """Adopt a crashed machine's receive streams.

        Keys carry the addressed destination, so a dead machine's streams
        never collide with the executor's own.
        """
        for key, state in states.items():
            if key not in self._recv_states:
                self._recv_states[key] = state

    def abandon_sends(self) -> int:
        """Cancel every retransmission timer (the machine is dead).

        Unacknowledged packets are lost, which is exactly fail-stop
        semantics: a crashed sender's in-flight messages may or may not
        have been delivered.  Returns how many were abandoned.
        """
        abandoned = 0
        for sender in self._send_states.values():
            abandoned += len(sender.unacked)
            sender.unacked.clear()
            if sender.timer is not None:
                self._loop.cancel(sender.timer)
                sender.timer = None
        return abandoned

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Handle a raw packet arriving at (or executed by) this machine."""
        if packet.kind is PacketKind.ACK:
            self._on_ack(packet)
        else:
            self._on_data(packet)

    def _on_ack(self, packet: Packet) -> None:
        # The ack's source is the machine the data was *addressed* to
        # (its executor echoes that address), matching our send state.
        sender = self._send_state(packet.src)
        sender.unacked.pop(packet.payload, None)
        if not sender.unacked and sender.timer is not None:
            self._loop.cancel(sender.timer)
            sender.timer = None

    def _on_data(self, packet: Packet) -> None:
        stream = self._recv_state((packet.src, packet.dst))
        self._send_ack(packet)
        if packet.seq < stream.next_deliver_seq:
            return  # duplicate of something already delivered
        if packet.seq in stream.reorder_buffer:
            return  # duplicate of something already buffered
        stream.reorder_buffer[packet.seq] = packet
        while stream.next_deliver_seq in stream.reorder_buffer:
            ready = stream.reorder_buffer.pop(stream.next_deliver_seq)
            stream.next_deliver_seq += 1
            self._stats.note_delivery(ready)
            if self.deliver_fn is not None:
                self.deliver_fn(ready.src, ready.payload)

    def _send_ack(self, data_packet: Packet) -> None:
        ack = Packet(
            # Acks carry the *addressed* destination as their source so
            # the original sender finds its send state even when an
            # executor is answering for a crashed machine.
            src=data_packet.dst,
            dst=data_packet.src,
            kind=PacketKind.ACK,
            seq=data_packet.seq,
            payload=data_packet.seq,
            payload_bytes=ACK_PAYLOAD_BYTES,
            category="ack",
        )
        self._stats.note_send(ack)
        self._transmit(ack)
