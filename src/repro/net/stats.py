"""Network accounting.

Counters are kept per packet kind and per category so benchmarks can report
exactly what the paper reports: how many administrative messages a
migration used, how many bytes of process state moved, how many forwarded
messages a stale link generated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


@dataclass
class NetworkStats:
    """Mutable counters updated by the transport layer."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    packets_duplicated: int = 0
    retransmissions: int = 0
    bytes_sent: int = 0
    payload_bytes_sent: int = 0
    sends_by_category: Counter = field(default_factory=Counter)
    payload_bytes_by_category: Counter = field(default_factory=Counter)
    delivered_by_category: Counter = field(default_factory=Counter)

    def note_send(self, packet: Packet, retransmit: bool = False) -> None:
        """Record a packet leaving a transport (including retransmits)."""
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.payload_bytes_sent += packet.payload_bytes
        if retransmit:
            self.retransmissions += 1
        else:
            self.sends_by_category[packet.category] += 1
            self.payload_bytes_by_category[packet.category] += (
                packet.payload_bytes
            )

    def note_delivery(self, packet: Packet) -> None:
        """Record a packet accepted (post-dedup) by the receiving side."""
        self.packets_delivered += 1
        self.delivered_by_category[packet.category] += 1

    def note_drop(self) -> None:
        """Record a packet lost by fault injection."""
        self.packets_dropped += 1

    def note_duplicate(self) -> None:
        """Record a packet duplicated by fault injection."""
        self.packets_duplicated += 1

    def snapshot(self) -> dict[str, int]:
        """A flat copy of the scalar counters (for report deltas)."""
        return {
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "packets_duplicated": self.packets_duplicated,
            "retransmissions": self.retransmissions,
            "bytes_sent": self.bytes_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
        }

    def publish(self, registry: "MetricsRegistry") -> None:
        """Mirror every counter into a metrics registry.

        Registered by :class:`~repro.net.network.Network` as a registry
        collector, so snapshots always see current values without the
        transport paying per-packet registry costs.
        """
        for name, value in self.snapshot().items():
            registry.counter(f"net.{name}").set_total(value)
        for cat, count in self.sends_by_category.items():
            registry.counter("net.sends", category=cat).set_total(count)
        for cat, nbytes in self.payload_bytes_by_category.items():
            registry.counter("net.payload_bytes", category=cat).set_total(
                nbytes
            )
        for cat, count in self.delivered_by_category.items():
            registry.counter("net.delivered", category=cat).set_total(count)

    def category_snapshot(self) -> dict[str, tuple[int, int]]:
        """Per-category ``(sends, payload_bytes)`` pairs."""
        return {
            cat: (
                self.sends_by_category[cat],
                self.payload_bytes_by_category[cat],
            )
            for cat in self.sends_by_category
        }
