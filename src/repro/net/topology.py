"""Machine topology and routing.

A topology is a set of machines joined by point-to-point wires, each with a
latency and a bandwidth.  Routing uses latency-weighted shortest paths
(Dijkstra) computed once and cached; DEMOS/MP's network of Z8000s was
small, and so are ours (2..64 machines), so precomputation is trivial.

Builders are provided for the shapes used in tests and benchmarks:
full mesh (the default, matching a shared bus/LAN), line, ring, and star.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import NoRouteError, UnknownMachineError

#: Machines are identified by small integers, like DEMOS/MP processor ids.
MachineId = int


@dataclass(frozen=True)
class Wire:
    """A unidirectional point-to-point connection between two machines."""

    src: MachineId
    dst: MachineId
    latency: int  #: propagation delay, microseconds
    bandwidth: int  #: bytes per millisecond

    def transfer_time(self, size_bytes: int) -> int:
        """Microseconds to push *size_bytes* onto this wire and propagate."""
        serialization = (size_bytes * 1_000) // max(self.bandwidth, 1)
        return self.latency + serialization


class Topology:
    """The set of machines and wires, plus shortest-path routing."""

    def __init__(self) -> None:
        self._machines: set[MachineId] = set()
        self._wires: dict[tuple[MachineId, MachineId], Wire] = {}
        self._routes: dict[tuple[MachineId, MachineId], MachineId] | None = None

    @property
    def machines(self) -> list[MachineId]:
        """All machine ids, sorted."""
        return sorted(self._machines)

    def add_machine(self, machine: MachineId) -> None:
        """Register a machine.  Idempotent."""
        self._machines.add(machine)
        self._routes = None

    def has_machine(self, machine: MachineId) -> bool:
        """Whether *machine* exists in this topology."""
        return machine in self._machines

    def connect(
        self,
        a: MachineId,
        b: MachineId,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> None:
        """Join machines *a* and *b* with a bidirectional wire."""
        self.add_machine(a)
        self.add_machine(b)
        self._wires[(a, b)] = Wire(a, b, latency, bandwidth)
        self._wires[(b, a)] = Wire(b, a, latency, bandwidth)
        self._routes = None

    def wire(self, a: MachineId, b: MachineId) -> Wire:
        """The wire from *a* to *b* (adjacent machines only)."""
        try:
            return self._wires[(a, b)]
        except KeyError:
            raise NoRouteError(f"no wire {a} -> {b}") from None

    def neighbors(self, machine: MachineId) -> list[MachineId]:
        """Machines directly wired to *machine*, sorted."""
        return sorted(
            dst for (src, dst) in self._wires if src == machine
        )

    def next_hop(self, src: MachineId, dst: MachineId) -> MachineId:
        """First machine on the shortest path from *src* to *dst*."""
        if src not in self._machines:
            raise UnknownMachineError(f"unknown machine {src}")
        if dst not in self._machines:
            raise UnknownMachineError(f"unknown machine {dst}")
        if src == dst:
            return dst
        if self._routes is None:
            self._compute_routes()
        assert self._routes is not None
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise NoRouteError(f"no route {src} -> {dst}") from None

    def path(self, src: MachineId, dst: MachineId) -> list[MachineId]:
        """Full machine sequence from *src* to *dst*, inclusive."""
        hops = [src]
        here = src
        while here != dst:
            here = self.next_hop(here, dst)
            hops.append(here)
        return hops

    def _compute_routes(self) -> None:
        """Dijkstra from every source, weighted by wire latency.

        Edges are scanned through per-machine adjacency lists built in
        wire-insertion order — the same relative order the old
        all-wires scan produced — so equal-cost tie-breaking (and hence
        every cached route) is unchanged while the per-pop cost drops
        from O(E) to O(degree).
        """
        adjacency: dict[MachineId, list[tuple[MachineId, int]]] = {
            m: [] for m in self._machines
        }
        for (a, b), wire in self._wires.items():
            adjacency[a].append((b, wire.latency))
        routes: dict[tuple[MachineId, MachineId], MachineId] = {}
        for source in self._machines:
            dist: dict[MachineId, int] = {source: 0}
            first: dict[MachineId, MachineId] = {}
            heap: list[tuple[int, MachineId]] = [(0, source)]
            while heap:
                d, here = heapq.heappop(heap)
                if d > dist.get(here, d):
                    continue
                for b, latency in adjacency[here]:
                    nd = d + latency
                    if nd < dist.get(b, nd + 1):
                        dist[b] = nd
                        first[b] = first.get(here, b) if here != source else b
                        heapq.heappush(heap, (nd, b))
            for dst, hop in first.items():
                routes[(source, dst)] = hop
        self._routes = routes

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def full_mesh(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """Every machine wired to every other (a LAN)."""
        topo = cls()
        for m in range(n):
            topo.add_machine(m)
        for a in range(n):
            for b in range(a + 1, n):
                topo.connect(a, b, latency, bandwidth)
        return topo

    @classmethod
    def line(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """Machines in a chain: 0 - 1 - ... - (n-1)."""
        topo = cls()
        for m in range(n):
            topo.add_machine(m)
        for m in range(n - 1):
            topo.connect(m, m + 1, latency, bandwidth)
        return topo

    @classmethod
    def ring(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """A line with the ends joined."""
        topo = cls.line(n, latency, bandwidth)
        if n > 2:
            topo.connect(n - 1, 0, latency, bandwidth)
        return topo

    @classmethod
    def star(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """Machine 0 at the hub, all others as spokes."""
        topo = cls()
        for m in range(n):
            topo.add_machine(m)
        for m in range(1, n):
            topo.connect(0, m, latency, bandwidth)
        return topo
