"""Machine topology and routing.

A topology is a set of machines joined by point-to-point wires, each with a
latency and a bandwidth.  Routing uses latency-weighted shortest paths
(Dijkstra).  Routes are computed per *source*, on demand, and cached until
a wire changes: eager all-pairs precomputation was fine for DEMOS/MP-sized
networks (2..64 machines) but is O(V * E log V) up front, which dominates
start-up once clusters reach hundreds of machines where each kernel only
ever routes from its own seat.  The per-source cache is LRU-bounded; by
default the bound adapts to ``max(512, machine count)``, because packet
forwarding makes every machine on a multi-hop path a routing source —
the steady-state working set IS one table per machine, and an LRU
capped below it degenerates to a full Dijkstra per forwarded hop
(cyclic access over V sources with limit < V evicts on every lookup).
Passing ``route_cache_limit`` explicitly pins a hard cap instead, which
keeps memory at O(limit * V) at the price of recomputing evicted
sources on their next send.

Builders are provided for the shapes used in tests and benchmarks: full
mesh (the default, matching a shared bus/LAN), line, ring, and star, plus
the sparse shapes used at cluster scale — 2-D torus, hypercube, and
ring-of-cliques — whose edge counts grow roughly linearly with machine
count instead of quadratically.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import NoRouteError, UnknownMachineError

#: Machines are identified by small integers, like DEMOS/MP processor ids.
MachineId = int

#: Floor for the adaptive route-cache bound.  The effective default is
#: ``max(DEFAULT_ROUTE_CACHE_LIMIT, len(machines))``: forwarding makes
#: every machine on a multi-hop path a routing source, so anything
#: below one table per machine thrashes once the cluster outgrows the
#: cap (each evicted source costs a full Dijkstra on its next hop).
DEFAULT_ROUTE_CACHE_LIMIT = 512


@dataclass(frozen=True)
class Wire:
    """A unidirectional point-to-point connection between two machines."""

    src: MachineId
    dst: MachineId
    latency: int  #: propagation delay, microseconds
    bandwidth: int  #: bytes per millisecond

    def transfer_time(self, size_bytes: int) -> int:
        """Microseconds to push *size_bytes* onto this wire and propagate."""
        serialization = (size_bytes * 1_000) // max(self.bandwidth, 1)
        return self.latency + serialization


class Topology:
    """The set of machines and wires, plus shortest-path routing."""

    def __init__(self, route_cache_limit: int | None = None) -> None:
        if route_cache_limit is not None and route_cache_limit < 1:
            raise ValueError(
                f"route_cache_limit must be positive, got {route_cache_limit}"
            )
        self._machines: set[MachineId] = set()
        self._wires: dict[tuple[MachineId, MachineId], Wire] = {}
        # Per-machine out-edges, maintained incrementally in wire-insertion
        # order.  Reconnecting an existing pair replaces its entry in place,
        # mirroring how dict reassignment keeps a key's position — so edge
        # scan order (and hence equal-cost tie-breaking) is exactly what a
        # fresh walk of _wires.items() would produce.
        self._adjacency: dict[MachineId, list[tuple[MachineId, int]]] = {}
        # Routing tables keyed by source, filled on first route from that
        # source, discarded wholesale whenever a wire changes, and bounded
        # LRU-wise (least recently routed-from evicted first; a victim is
        # simply recomputed on its next route).  None = adaptive bound,
        # max(DEFAULT_ROUTE_CACHE_LIMIT, machine count).
        self._routes: OrderedDict[
            MachineId, dict[MachineId, MachineId]
        ] = OrderedDict()
        self._route_cache_limit: int | None = route_cache_limit

    @property
    def machines(self) -> list[MachineId]:
        """All machine ids, sorted."""
        return sorted(self._machines)

    def add_machine(self, machine: MachineId) -> None:
        """Register a machine.  Idempotent."""
        if machine not in self._machines:
            self._machines.add(machine)
            self._adjacency[machine] = []
            self._routes.clear()

    def has_machine(self, machine: MachineId) -> bool:
        """Whether *machine* exists in this topology."""
        return machine in self._machines

    def connect(
        self,
        a: MachineId,
        b: MachineId,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> None:
        """Join machines *a* and *b* with a bidirectional wire."""
        self.add_machine(a)
        self.add_machine(b)
        self._insert_edge(a, b, latency, bandwidth)
        self._insert_edge(b, a, latency, bandwidth)
        self._routes.clear()

    def _insert_edge(
        self, a: MachineId, b: MachineId, latency: int, bandwidth: int
    ) -> None:
        if (a, b) in self._wires:
            adjacency = self._adjacency[a]
            for i, (m, _) in enumerate(adjacency):
                if m == b:
                    adjacency[i] = (b, latency)
                    break
        else:
            self._adjacency[a].append((b, latency))
        self._wires[(a, b)] = Wire(a, b, latency, bandwidth)

    def wires(self) -> list[Wire]:
        """Every directed wire, in insertion order (deterministic).

        The sharded engine walks this to derive per-shard-pair minimum
        latencies — the communication cadence of the barrier-elision
        schedule (:mod:`repro.sim.barrier`).
        """
        return list(self._wires.values())

    def min_latency(self) -> int | None:
        """The smallest wire latency, or None on a wireless topology.

        This is the conservative lookahead of the sharded executor: a
        packet put on any wire at time ``t`` cannot influence another
        machine before ``t + min_latency()``, whatever the partition.
        """
        if not self._wires:
            return None
        return min(wire.latency for wire in self._wires.values())

    def wire(self, a: MachineId, b: MachineId) -> Wire:
        """The wire from *a* to *b* (adjacent machines only)."""
        try:
            return self._wires[(a, b)]
        except KeyError:
            raise NoRouteError(f"no wire {a} -> {b}") from None

    def neighbors(self, machine: MachineId) -> list[MachineId]:
        """Machines directly wired to *machine*, sorted."""
        return sorted(m for m, _ in self._adjacency.get(machine, ()))

    def next_hop(self, src: MachineId, dst: MachineId) -> MachineId:
        """First machine on the shortest path from *src* to *dst*."""
        routes = self._routes.get(src)
        if routes is None:
            routes = self._routes_from(src)
        else:
            self._routes.move_to_end(src)
        hop = routes.get(dst)
        if hop is not None:
            return hop
        # Miss: tell apart self-delivery, an unknown destination, and a
        # partitioned one (src was validated by _routes_from).
        if dst not in self._machines:
            raise UnknownMachineError(f"unknown machine {dst}")
        if src == dst:
            return dst
        raise NoRouteError(f"no route {src} -> {dst}")

    def path(self, src: MachineId, dst: MachineId) -> list[MachineId]:
        """Full machine sequence from *src* to *dst*, inclusive."""
        hops = [src]
        here = src
        while here != dst:
            here = self.next_hop(here, dst)
            hops.append(here)
        return hops

    def _routes_from(self, source: MachineId) -> dict[MachineId, MachineId]:
        """Dijkstra from one source, weighted by wire latency.

        The relaxation loop (strict ``<``, ``(dist, machine)`` heap
        entries, adjacency scanned in wire-insertion order) is kept
        identical to the retired all-pairs precomputation so every
        next-hop it produced is reproduced bit for bit — only *when*
        routes are computed changed, not *what* they are.
        """
        if source not in self._machines:
            raise UnknownMachineError(f"unknown machine {source}")
        adjacency = self._adjacency
        dist: dict[MachineId, int] = {source: 0}
        first: dict[MachineId, MachineId] = {}
        heap: list[tuple[int, MachineId]] = [(0, source)]
        while heap:
            d, here = heapq.heappop(heap)
            if d > dist.get(here, d):
                continue
            for b, latency in adjacency[here]:
                nd = d + latency
                if nd < dist.get(b, nd + 1):
                    dist[b] = nd
                    first[b] = first.get(here, b) if here != source else b
                    heapq.heappush(heap, (nd, b))
        self._routes[source] = first
        limit = self._route_cache_limit
        if limit is None:
            limit = max(DEFAULT_ROUTE_CACHE_LIMIT, len(self._machines))
        if len(self._routes) > limit:
            self._routes.popitem(last=False)
        return first

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def full_mesh(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """Every machine wired to every other (a LAN)."""
        topo = cls()
        for m in range(n):
            topo.add_machine(m)
        for a in range(n):
            for b in range(a + 1, n):
                topo.connect(a, b, latency, bandwidth)
        return topo

    @classmethod
    def line(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """Machines in a chain: 0 - 1 - ... - (n-1)."""
        topo = cls()
        for m in range(n):
            topo.add_machine(m)
        for m in range(n - 1):
            topo.connect(m, m + 1, latency, bandwidth)
        return topo

    @classmethod
    def ring(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """A line with the ends joined."""
        topo = cls.line(n, latency, bandwidth)
        if n > 2:
            topo.connect(n - 1, 0, latency, bandwidth)
        return topo

    @classmethod
    def star(
        cls,
        n: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """Machine 0 at the hub, all others as spokes."""
        topo = cls()
        for m in range(n):
            topo.add_machine(m)
        for m in range(1, n):
            topo.connect(0, m, latency, bandwidth)
        return topo

    # -- sparse shapes for cluster-scale runs --------------------------

    @classmethod
    def torus2d(
        cls,
        rows: int,
        cols: int,
        latency: int = 100,
        bandwidth: int = 1_000,
        backbone_latency: int | None = None,
    ) -> "Topology":
        """A rows x cols grid with wrap-around edges (degree <= 4).

        Machine ``(r, c)`` is id ``r * cols + c``.  Wrap wires are only
        added when a dimension exceeds two, since at length two the wrap
        would duplicate the existing neighbour wire.

        With *backbone_latency* set, the vertical (inter-row) wires and
        the column wraps carry that latency while intra-row wires keep
        *latency* — short links inside a rack row, slower links between
        rows.  Rows are the shard-alignment unit, so every wire that can
        cross a shard boundary is a backbone wire, which is what gives
        the barrier-elision schedule a coarser cross-shard cadence than
        the global window grid.
        """
        backbone = latency if backbone_latency is None else backbone_latency
        topo = cls()
        for m in range(rows * cols):
            topo.add_machine(m)
        for r in range(rows):
            for c in range(cols):
                m = r * cols + c
                if c + 1 < cols:
                    topo.connect(m, m + 1, latency, bandwidth)
                if r + 1 < rows:
                    topo.connect(m, m + cols, backbone, bandwidth)
            if cols > 2:
                topo.connect(r * cols + cols - 1, r * cols, latency, bandwidth)
        if rows > 2:
            for c in range(cols):
                topo.connect((rows - 1) * cols + c, c, backbone, bandwidth)
        return topo

    @classmethod
    def hypercube(
        cls,
        dimensions: int,
        latency: int = 100,
        bandwidth: int = 1_000,
    ) -> "Topology":
        """A binary hypercube of ``2 ** dimensions`` machines.

        Each machine links to the ids differing from it in exactly one
        bit, giving degree == dimensions and diameter == dimensions.
        """
        topo = cls()
        for m in range(1 << dimensions):
            topo.add_machine(m)
        for m in range(1 << dimensions):
            for bit in range(dimensions):
                peer = m ^ (1 << bit)
                if peer > m:
                    topo.connect(m, peer, latency, bandwidth)
        return topo

    @classmethod
    def ring_of_cliques(
        cls,
        cliques: int,
        clique_size: int,
        latency: int = 100,
        bandwidth: int = 1_000,
        backbone_latency: int | None = None,
    ) -> "Topology":
        """Fully-meshed pods of ``clique_size`` machines joined in a ring.

        Models racks on a backbone: clique *k* holds machines
        ``k * clique_size .. (k + 1) * clique_size - 1`` and its first
        member is the gateway wired to the neighbouring cliques'
        gateways.  With *backbone_latency* set, the gateway ring carries
        that latency while intra-clique wires keep *latency* — cliques
        are the shard-alignment unit, so every shard-crossing wire is a
        backbone wire.
        """
        backbone = latency if backbone_latency is None else backbone_latency
        topo = cls()
        for m in range(cliques * clique_size):
            topo.add_machine(m)
        for k in range(cliques):
            base = k * clique_size
            for a in range(clique_size):
                for b in range(a + 1, clique_size):
                    topo.connect(base + a, base + b, latency, bandwidth)
        if cliques == 2:
            topo.connect(0, clique_size, backbone, bandwidth)
        elif cliques > 2:
            for k in range(cliques):
                topo.connect(
                    k * clique_size,
                    ((k + 1) % cliques) * clique_size,
                    backbone,
                    bandwidth,
                )
        return topo
