"""Observability: spans, metrics, and machine-readable exporters.

The paper's cost analysis (§6) works because DEMOS/MP could attribute
every byte and message of a migration to a protocol step.  This package
gives the reproduction the same power as a first-class layer:

- :mod:`repro.obs.metrics` — a registry of named counters, gauges and
  histograms that ``net/``, ``kernel/`` and ``policy/`` publish into;
- :mod:`repro.obs.spans` — migration *spans* built from the tracer's
  records: one span per 8-step migration, with forwarding hops and
  link-update messages attached as child events;
- :mod:`repro.obs.exporters` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``) and flat JSON metrics snapshots.
"""

from repro.obs.exporters import (
    chrome_trace,
    metrics_snapshot_dict,
    span_to_trace_events,
    write_chrome_trace,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    LatencyHistogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.spans import (
    MIGRATION_STEPS,
    Span,
    SpanCollector,
    SpanEvent,
)

__all__ = [
    "LATENCY_BUCKETS_US",
    "MIGRATION_STEPS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanCollector",
    "SpanEvent",
    "chrome_trace",
    "metrics_snapshot_dict",
    "span_to_trace_events",
    "write_chrome_trace",
]
