"""Machine-readable exporters: Chrome trace JSON and metrics snapshots.

Two formats leave the simulator:

- **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Migration spans become complete (``"X"``)
  events; protocol steps, forwarding hops and link updates become
  instant (``"i"``) events on the same track.  Simulated time is already
  microseconds, which is exactly the unit trace events use.
- **metrics snapshot JSON** — the flat dict from
  :meth:`MetricsSnapshot.to_dict`, wrapped with a schema tag, suitable
  for CI diffing and ``python -m repro report --json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import Span
from repro.sim.trace import TraceRecord

#: schema tags let downstream tooling reject unknown layouts
TRACE_SCHEMA = "repro-trace/v1"
METRICS_SCHEMA = "repro-metrics/v1"


class _Tracks:
    """Stable integer thread ids for span/record tracks."""

    def __init__(self) -> None:
        self._tids: dict[str, int] = {}

    def tid(self, key: str) -> int:
        if key not in self._tids:
            self._tids[key] = len(self._tids) + 1
        return self._tids[key]

    def metadata_events(self) -> list[dict[str, Any]]:
        return [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": key},
            }
            for key, tid in self._tids.items()
        ]


def span_to_trace_events(
    span: Span, tracks: _Tracks | None = None
) -> list[dict[str, Any]]:
    """One span as a complete event plus instants for its events."""
    tracks = tracks or _Tracks()
    tid = tracks.tid(span.pid)
    end = span.end if span.end is not None else (
        span.events[-1].time if span.events else span.start
    )
    events: list[dict[str, Any]] = [
        {
            "name": span.name,
            "cat": "migrate",
            "ph": "X",
            "ts": span.start,
            "dur": max(0, end - span.start),
            "pid": 0,
            "tid": tid,
            "args": {
                "status": span.status,
                "source": span.source,
                "dest": span.dest,
                "steps": span.steps(),
            },
        }
    ]
    for event in span.events:
        events.append(
            {
                "name": event.name,
                "cat": "migrate",
                "ph": "i",
                "s": "t",
                "ts": event.time,
                "pid": 0,
                "tid": tid,
                "args": dict(event.fields),
            }
        )
    return events


def record_to_trace_event(
    record: TraceRecord, tracks: _Tracks
) -> dict[str, Any]:
    """One raw tracer record as an instant event."""
    track_key = str(record.fields.get("pid", record.category))
    return {
        "name": f"{record.category}.{record.event}",
        "cat": record.category,
        "ph": "i",
        "s": "t",
        "ts": record.time,
        "pid": 0,
        "tid": tracks.tid(track_key),
        "args": {k: _jsonable(v) for k, v in record.fields.items()},
    }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace(
    spans: Iterable[Span],
    records: Iterable[TraceRecord] = (),
    metadata: dict[str, Any] | None = None,
    metrics: MetricsSnapshot | None = None,
) -> dict[str, Any]:
    """Build the full Chrome trace document.

    *spans* become span tracks; *records* (optionally the raw tracer
    stream, minus the migrate/forward/linkupd categories already carried
    by the spans) become instant events.  When a *metrics* snapshot is
    given, its flat dict (counters, gauges, histograms — including
    request-latency percentiles) rides along under
    ``otherData.metrics``, so one trace file carries both the timeline
    and the run's summary numbers.
    """
    tracks = _Tracks()
    events: list[dict[str, Any]] = []
    for span in spans:
        events.extend(span_to_trace_events(span, tracks))
    for record in records:
        events.append(record_to_trace_event(record, tracks))
    events.extend(tracks.metadata_events())
    other: dict[str, Any] = {"schema": TRACE_SCHEMA, **(metadata or {})}
    if metrics is not None:
        other["metrics"] = metrics.to_dict()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span],
    records: Iterable[TraceRecord] = (),
    metadata: dict[str, Any] | None = None,
    metrics: MetricsSnapshot | None = None,
) -> Path:
    """Serialise :func:`chrome_trace` to *path*; returns the path."""
    path = Path(path)
    document = chrome_trace(spans, records, metadata, metrics=metrics)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return path


def metrics_snapshot_dict(
    snapshot: MetricsSnapshot,
    now: int | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Wrap a frozen registry snapshot for JSON export."""
    document: dict[str, Any] = {"schema": METRICS_SCHEMA}
    if now is not None:
        document["now_us"] = now
    if extra:
        document.update(extra)
    document.update(snapshot.to_dict())
    return document
