"""A metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` serves a whole simulated system.  Components
publish two ways:

- **push** — hot paths hold an instrument and update it directly
  (``registry.counter("migration.completed").inc()``,
  ``registry.histogram("migration.downtime_us").observe(dt)``);
- **pull** — components with existing cheap counters register a
  *collector* callback which copies them into the registry when a
  snapshot is taken (the Prometheus client model).  This keeps the
  per-event cost of kernel and network bookkeeping at a plain integer
  increment while still surfacing everything through one registry.

Instruments are identified by ``(name, labels)``; labels are sorted
key/value pairs (e.g. ``machine=0``), so per-machine series of the same
metric aggregate naturally.  :meth:`MetricsRegistry.snapshot` freezes the
whole registry into a :class:`MetricsSnapshot` for reports and exporters.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

#: A label set, normalised to sorted ``(key, value)`` pairs.
LabelSet = tuple[tuple[str, Any], ...]

#: Default histogram bucket upper bounds (microseconds / bytes / counts
#: all fit: powers of four give wide dynamic range with few buckets).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(4.0**i for i in range(1, 13))

#: Latency bucket upper bounds (microseconds): quarter-power-of-two steps
#: (adjacent bounds differ by 2**0.25 ~ 19%) from 1us to 2**26us (~67s).
#: ``2.0 ** (i / 4)`` is a pure function of the index, so the grid is
#: bit-identical on every platform and any percentile read off it is
#: within one bucket's relative width of the true sample percentile.
LATENCY_BUCKETS_US: tuple[float, ...] = tuple(
    2.0 ** (i / 4) for i in range(0, 105)
)


def _labelset(labels: dict[str, Any]) -> LabelSet:
    return tuple(sorted(labels.items()))


def render_key(name: str, labels: LabelSet) -> str:
    """Flat string form, e.g. ``kernel.forwards{machine=0}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must not be negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the running total.

        For *collectors* mirroring an externally maintained count; the
        new total may not be below the current one.
        """
        if value < self.value:
            raise ValueError(
                f"counter {self.name} cannot decrease "
                f"({self.value} -> {value})"
            )
        self.value = value


class Gauge:
    """A value that can go up and down (queue depth, live entries)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen view of one histogram."""

    count: int
    sum: float
    min: float | None
    max: float | None
    #: parallel to the histogram's bucket bounds: observations <= bound
    #: (cumulative, Prometheus-style); the implicit +Inf bucket == count
    bucket_bounds: tuple[float, ...]
    bucket_counts: tuple[int, ...]

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> float | None:
        """The *q*-quantile (``0 <= q <= 1``) read off the buckets.

        Uses the exact rank rule — the ``ceil(q * count)``-th smallest
        observation — and returns the upper bound of the bucket holding
        that observation, clamped to the observed ``[min, max]`` envelope
        so the tails are anchored exactly.  With log-spaced bounds (see
        :data:`LATENCY_BUCKETS_US`) the result is within one bucket's
        relative width of the true sample percentile; observations above
        the last bound degrade to ``max``.  ``None`` on an empty
        histogram.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"percentile q must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = max(1, math.ceil(q * self.count))
        index = bisect.bisect_left(self.bucket_counts, rank)
        if index >= len(self.bucket_bounds):
            return self.max
        return min(max(self.bucket_bounds[index], self.min), self.max)

    @property
    def p50(self) -> float | None:
        return self.percentile(0.50)

    @property
    def p95(self) -> float | None:
        return self.percentile(0.95)

    @property
    def p99(self) -> float | None:
        return self.percentile(0.99)

    def delta_since(
        self, previous: "HistogramSnapshot"
    ) -> "HistogramSnapshot":
        """The distribution observed *between* two snapshots of one
        histogram.

        Cumulative bucket counts subtract bucket-wise (the difference of
        two cumulative vectors is itself cumulative), so percentiles of
        the returned window are exact over the interval's observations.
        ``min``/``max`` cannot be recovered per-window and keep the
        lifetime envelope — the percentile clamp only loosens, never
        lies.  This is how an SLO balancer reads "p99 over the last
        sampling interval" off a histogram that must stay cumulative for
        everyone else.
        """
        if previous.bucket_bounds != self.bucket_bounds:
            raise ValueError("cannot diff histograms with different buckets")
        if previous.count > self.count:
            raise ValueError("delta_since needs an older snapshot")
        return HistogramSnapshot(
            count=self.count - previous.count,
            sum=self.sum - previous.sum,
            min=self.min,
            max=self.max,
            bucket_bounds=self.bucket_bounds,
            bucket_counts=tuple(
                now - then
                for now, then in zip(
                    self.bucket_counts, previous.bucket_counts
                )
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.bucket_bounds, self.bucket_counts)
            },
        }


class Histogram:
    """A distribution of observations with fixed cumulative buckets."""

    __slots__ = (
        "name", "labels", "bounds", "_bucket_counts",
        "count", "sum", "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: tuple[float, ...] = tuple(sorted(set(buckets)))
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum: float = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self._bucket_counts):
            self._bucket_counts[index] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Equivalent to having observed the concatenation of both streams;
        requires identical bucket bounds.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name} into {self.name}: "
                f"bucket bounds differ"
            )
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            if self.min is None or other.min < self.min:
                self.min = other.min
        if other.max is not None:
            if self.max is None or other.max > self.max:
                self.max = other.max
        for index, n in enumerate(other._bucket_counts):
            self._bucket_counts[index] += n

    def reset(self) -> HistogramSnapshot:
        """Freeze the current distribution, then forget it.

        Returns the frozen view, so interval readers can drain the
        histogram without losing observations: the counts in successive
        ``reset()`` snapshots always sum to everything ever observed.
        """
        snapshot = self.freeze()
        self._bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None
        return snapshot

    def freeze(self) -> HistogramSnapshot:
        """A cumulative-bucket snapshot of the distribution."""
        cumulative = []
        running = 0
        for n in self._bucket_counts:
            running += n
            cumulative.append(running)
        return HistogramSnapshot(
            count=self.count,
            sum=self.sum,
            min=self.min,
            max=self.max,
            bucket_bounds=self.bounds,
            bucket_counts=tuple(cumulative),
        )


class LatencyHistogram(Histogram):
    """A histogram specialised for request latencies.

    The default grid is :data:`LATENCY_BUCKETS_US` — log-spaced,
    deterministic, microsecond-denominated — so p50/p95/p99 extracted
    from a snapshot (:meth:`HistogramSnapshot.percentile`) carry a
    bounded ~19% relative error while ``min``/``max`` stay exact.
    """

    __slots__ = ()

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        buckets: Iterable[float] = LATENCY_BUCKETS_US,
    ) -> None:
        super().__init__(name, labels, buckets=buckets)


class MetricsSnapshot:
    """A frozen copy of every instrument in a registry."""

    def __init__(
        self,
        counters: dict[str, dict[LabelSet, float]],
        gauges: dict[str, dict[LabelSet, float]],
        histograms: dict[str, dict[LabelSet, HistogramSnapshot]],
    ) -> None:
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms

    # -- scalar access --------------------------------------------------

    def _series(self, name: str) -> dict[LabelSet, float]:
        return self.counters.get(name) or self.gauges.get(name) or {}

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets (0 if absent)."""
        return sum(self._series(name).values())

    def get(self, name: str, **labels: Any) -> float:
        """One series' value (0 if absent)."""
        return self._series(name).get(_labelset(labels), 0)

    def by_label(self, name: str, key: str) -> dict[Any, float]:
        """Aggregate a metric by one label key, e.g. per ``machine``."""
        out: dict[Any, float] = {}
        for labels, value in self._series(name).items():
            for k, v in labels:
                if k == key:
                    out[v] = out.get(v, 0) + value
        return out

    def histogram(self, name: str, **labels: Any) -> HistogramSnapshot | None:
        return self.histograms.get(name, {}).get(_labelset(labels))

    def histogram_by_label(
        self, name: str, key: str
    ) -> dict[Any, HistogramSnapshot]:
        """All of *name*'s series keyed by one label, e.g. per ``domain``.

        Series carrying the label more than once cannot occur (labels
        are a mapping); series without the label are skipped, so the
        global (unlabelled) histogram never shadows a domain's.
        """
        out: dict[Any, HistogramSnapshot] = {}
        for labels, snapshot in self.histograms.get(name, {}).items():
            for k, v in labels:
                if k == key:
                    out[v] = snapshot
        return out

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready nested dict (flat keys inside each section)."""

        def flatten(section: dict[str, dict[LabelSet, Any]], freeze=None):
            out = {}
            for name in sorted(section):
                for labels in sorted(section[name], key=str):
                    value = section[name][labels]
                    out[render_key(name, labels)] = (
                        freeze(value) if freeze else value
                    )
            return out

        return {
            "counters": flatten(self.counters),
            "gauges": flatten(self.gauges),
            "histograms": flatten(
                self.histograms, freeze=lambda h: h.to_dict()
            ),
        }


class NullCounter(Counter):
    """A counter that discards updates (disabled registry)."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass


class NullGauge(Gauge):
    """A gauge that discards updates (disabled registry)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class NullHistogram(Histogram):
    """A histogram that discards observations (disabled registry)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def merge(self, other: Histogram) -> None:
        pass


class MetricsRegistry:
    """Get-or-create instruments, pull collectors, take snapshots.

    A registry built with ``enabled=False`` hands out shared null
    instruments whose update methods are no-ops, so hot paths keep their
    unconditional ``instrument.inc()`` / ``.observe()`` calls and pay
    only an empty method call when metrics are off.  Snapshots of a
    disabled registry are empty and skip the pull collectors.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []
        self._null_counter = NullCounter("_disabled", ())
        self._null_gauge = NullGauge("_disabled", ())
        self._null_histogram = NullHistogram("_disabled", ())

    # -- instruments ----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return self._null_counter
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(*key)
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(*key)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                *key, buckets=buckets or DEFAULT_BUCKETS
            )
        return instrument

    def latency_histogram(self, name: str, **labels: Any) -> Histogram:
        """Get-or-create a :class:`LatencyHistogram` (log-spaced buckets).

        Lives in the same namespace as :meth:`histogram`; as with custom
        buckets, the grid is fixed by whichever call creates the
        instrument first.
        """
        if not self.enabled:
            return self._null_histogram
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = LatencyHistogram(*key)
        return instrument

    # -- collectors -----------------------------------------------------

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Call *collector* (once) on every snapshot, before freezing.

        Collectors mirror externally maintained counters into the
        registry via :meth:`Counter.set_total` / :meth:`Gauge.set`.
        """
        self._collectors.append(collector)

    def snapshot(self) -> MetricsSnapshot:
        """Run collectors, then freeze every instrument."""
        if self.enabled:
            for collector in self._collectors:
                collector(self)

        def group(instruments: dict[tuple[str, LabelSet], Any], value_of):
            out: dict[str, dict[LabelSet, Any]] = {}
            for (name, labels), instrument in instruments.items():
                out.setdefault(name, {})[labels] = value_of(instrument)
            return out

        return MetricsSnapshot(
            counters=group(self._counters, lambda c: c.value),
            gauges=group(self._gauges, lambda g: g.value),
            histograms=group(self._histograms, lambda h: h.freeze()),
        )


# ----------------------------------------------------------------------
# Cross-registry merging (sharded execution)
# ----------------------------------------------------------------------


def thaw_histogram(
    name: str, labels: LabelSet, snapshot: HistogramSnapshot
) -> Histogram:
    """Rebuild a live :class:`Histogram` equivalent to *snapshot*.

    The snapshot stores Prometheus-style cumulative bucket counts; the
    live instrument keeps per-bucket counts, so this de-cumulates.  The
    round trip is exact: ``thaw_histogram(...).freeze() == snapshot``
    (observations beyond the last bound survive in ``count``/``sum``
    without a bucket, same as in the original instrument).
    """
    histogram = Histogram(name, labels, buckets=snapshot.bucket_bounds)
    previous = 0
    counts = []
    for cumulative in snapshot.bucket_counts:
        counts.append(cumulative - previous)
        previous = cumulative
    histogram._bucket_counts = counts
    histogram.count = snapshot.count
    histogram.sum = snapshot.sum
    histogram.min = snapshot.min
    histogram.max = snapshot.max
    return histogram


def merge_histogram_snapshots(
    snapshots: Iterable[HistogramSnapshot],
    name: str = "merged",
    labels: LabelSet = (),
) -> HistogramSnapshot:
    """Fold several histogram snapshots into one distribution.

    Thaws each snapshot and reuses :meth:`Histogram.merge`, so the
    result is exactly the snapshot of a single histogram that had
    observed every shard's stream; identical bucket bounds required.
    """
    merged: Histogram | None = None
    for snapshot in snapshots:
        thawed = thaw_histogram(name, labels, snapshot)
        if merged is None:
            merged = thawed
        else:
            merged.merge(thawed)
    if merged is None:
        raise ValueError("cannot merge zero histogram snapshots")
    return merged.freeze()


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Combine per-shard registry snapshots into one system-wide view.

    Counters and gauges sum per ``(name, labels)`` series — shard-local
    series (e.g. ``sim.events_fired{shard=i}``) carry a shard label, so
    nothing that should stay distinct collides.  Histograms with the
    same series key merge via :func:`merge_histogram_snapshots`.
    """
    counters: dict[str, dict[LabelSet, float]] = {}
    gauges: dict[str, dict[LabelSet, float]] = {}
    parts: dict[str, dict[LabelSet, list[HistogramSnapshot]]] = {}
    for snapshot in snapshots:
        for target, section in (
            (counters, snapshot.counters),
            (gauges, snapshot.gauges),
        ):
            for name, series in section.items():
                bucket = target.setdefault(name, {})
                for labels, value in series.items():
                    bucket[labels] = bucket.get(labels, 0) + value
        for name, series in snapshot.histograms.items():
            bucket = parts.setdefault(name, {})
            for labels, hist in series.items():
                bucket.setdefault(labels, []).append(hist)
    histograms = {
        name: {
            labels: merge_histogram_snapshots(group, name, labels)
            for labels, group in series.items()
        }
        for name, series in parts.items()
    }
    return MetricsSnapshot(
        counters=counters, gauges=gauges, histograms=histograms
    )
