"""Migration spans, assembled from tracer records.

A *span* is one 8-step migration (paper Figure 3-1) seen end to end:
opened when the source freezes the process (step 1), closed when the
source sees the restart acknowledgement (or a refusal).  Every protocol
step lands inside it as a timestamped :class:`SpanEvent`; forwarding hops
and link-update messages that involve the migrated process attach to its
most recent span as child events — the attribution the paper's §6 cost
analysis relies on.

:class:`SpanCollector` is a tracer listener (:meth:`Tracer.subscribe`),
so span assembly costs nothing when no collector is attached and never
perturbs simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.trace import TraceRecord, Tracer

#: trace event -> (span event name, protocol step number or None)
MIGRATION_STEPS: dict[str, tuple[str, int | None]] = {
    "step1-freeze": ("FREEZE", 1),
    "step2-request": ("REQUEST", 2),
    "accepted": ("ACCEPT", None),
    "step3-allocate": ("ALLOCATE", 3),
    "step4-state": ("SEGMENT_MOVE", 4),
    "step5-program": ("SEGMENT_MOVE", 5),
    "segment-stream": ("SEGMENT_STREAM", None),
    "transfer-complete": ("TRANSFER_COMPLETE", None),
    "step6-forward-pending": ("FORWARD_PENDING", 6),
    "step7-cleanup": ("CLEANUP", 7),
    "step8-restart": ("RESTART", 8),
    "done": ("RESTART_ACK", None),
    "refused": ("REFUSED", None),
}


@dataclass(frozen=True)
class SpanEvent:
    """One timestamped event inside a span."""

    time: int
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def step(self) -> int | None:
        """The protocol step number, if this event is one of the eight."""
        return self.fields.get("step")


@dataclass
class Span:
    """One migration from freeze to restart-ack."""

    pid: str
    start: int
    source: int | None = None
    dest: int | None = None
    end: int | None = None
    status: str = "in-flight"  #: in-flight | ok | refused
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def name(self) -> str:
        src = "?" if self.source is None else self.source
        dst = "?" if self.dest is None else self.dest
        return f"migrate {self.pid} {src}->{dst}"

    @property
    def duration(self) -> int | None:
        """Microseconds from freeze until the span closed."""
        return None if self.end is None else self.end - self.start

    def add(self, time: int, name: str, **fields: Any) -> SpanEvent:
        event = SpanEvent(time, name, fields)
        self.events.append(event)
        return event

    def steps(self) -> list[int]:
        """Protocol step numbers present, in event (i.e. time) order."""
        return [e.step for e in self.events if e.step is not None]

    def event_times(self) -> list[int]:
        return [e.time for e in self.events]

    def child_events(self) -> list[SpanEvent]:
        """Forwarding hops / link updates attached after the protocol."""
        return [
            e for e in self.events
            if e.name in ("FORWARD_HOP", "LINK_UPDATE_SENT",
                          "LINK_UPDATE_APPLIED")
        ]


class SpanCollector:
    """Builds migration spans from a tracer's record stream."""

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._open: dict[str, Span] = {}
        #: latest span per pid (open or closed) — forwarding hops arrive
        #: after the migration finished and still belong to it
        self._latest: dict[str, Span] = {}
        self.finished: list[Span] = []
        if tracer is not None:
            tracer.subscribe(self.observe)

    # -- listener -------------------------------------------------------

    def observe(self, record: TraceRecord) -> None:
        """Tracer listener entry point."""
        if record.category == "migrate":
            self._on_migrate(record)
        elif record.category == "forward" and record.event == "hit":
            self._attach(record.fields.get("pid"), record, "FORWARD_HOP")
        elif record.category == "linkupd" and record.event in (
            "sent", "applied",
        ):
            self._attach(
                record.fields.get("target"), record,
                f"LINK_UPDATE_{record.event.upper()}",
            )

    def _on_migrate(self, record: TraceRecord) -> None:
        mapped = MIGRATION_STEPS.get(record.event)
        if mapped is None:
            return  # not-here / already-moving / noop never open a span
        name, step = mapped
        pid = record.fields.get("pid")
        if pid is None:
            return
        span = self._open.get(pid)
        if record.event == "step1-freeze":
            span = Span(
                pid=pid,
                start=record.time,
                source=record.fields.get("machine"),
                dest=record.fields.get("dest"),
            )
            self._open[pid] = span
            self._latest[pid] = span
        elif span is None:
            return  # partial trace (collector attached mid-migration)
        fields = {k: v for k, v in record.fields.items() if k != "pid"}
        if step is not None:
            fields["step"] = step
        span.add(record.time, name, **fields)
        if record.event == "step2-request" and span.dest is None:
            span.dest = record.fields.get("dest")
        if record.event in ("done", "refused"):
            span.end = record.time
            span.status = "ok" if record.event == "done" else "refused"
            self.finished.append(span)
            del self._open[pid]

    def _attach(
        self, pid: str | None, record: TraceRecord, name: str
    ) -> None:
        if pid is None:
            return
        span = self._latest.get(pid)
        if span is None:
            return
        fields = {k: v for k, v in record.fields.items() if k != "pid"}
        span.add(record.time, name, **fields)

    # -- access ---------------------------------------------------------

    def all_spans(self) -> list[Span]:
        """Finished spans plus any still in flight, by start time."""
        return sorted(
            self.finished + list(self._open.values()),
            key=lambda s: (s.start, s.pid),
        )

    def spans_for(self, pid: str) -> list[Span]:
        return [s for s in self.all_spans() if s.pid == pid]

    def __len__(self) -> int:
        return len(self.finished) + len(self._open)
