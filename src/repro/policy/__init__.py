"""Migration decision policies — the paper's "continuing work" (§7)."""

from repro.policy.affinity import AffinityPolicy
from repro.policy.domains import (
    Domain,
    DomainRegistry,
    accept_all,
    refuse_foreign,
    size_capped,
)
from repro.policy.gc import ForwardingSweeper, SweeperStats
from repro.policy.load_balancer import (
    DEFAULT_EXCLUDE,
    BalancerStats,
    ThresholdLoadBalancer,
)
from repro.policy.metrics import (
    CommunicationMatrix,
    imbalance,
    machine_loads,
    memory_demand,
    migratable_processes,
)
from repro.policy.placement import (
    FallbackMigration,
    FallbackOutcome,
    migrate_with_fallback,
)
from repro.policy.recovery import CrashRecoveryManager, CrashReport

__all__ = [
    "AffinityPolicy",
    "BalancerStats",
    "CommunicationMatrix",
    "CrashRecoveryManager",
    "CrashReport",
    "DEFAULT_EXCLUDE",
    "Domain",
    "DomainRegistry",
    "FallbackMigration",
    "FallbackOutcome",
    "ForwardingSweeper",
    "SweeperStats",
    "ThresholdLoadBalancer",
    "accept_all",
    "imbalance",
    "machine_loads",
    "memory_demand",
    "migratable_processes",
    "migrate_with_fallback",
    "refuse_foreign",
    "size_capped",
]
