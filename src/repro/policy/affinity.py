"""Communication-affinity placement (paper §1, §3.1).

"Moving a process closer to the resource it is using most heavily may
reduce system-wide communication traffic."  This policy watches the
communication matrix and, when two processes on different machines
exchange more than a threshold of messages, migrates the lighter-loaded
one next to the other.

The paper also warns of the tension: "Processes cooperating in a
computation may exhibit a great deal of parallelism, and therefore should
be on different machines."  The ``min_cpu_headroom`` knob encodes that:
co-location only happens when the target machine has spare capacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.ids import ProcessId
from repro.policy.load_balancer import DEFAULT_EXCLUDE, BalancerStats
from repro.policy.metrics import CommunicationMatrix, machine_loads
from repro.stats.migration_cost import MigrationCostRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System


def _parse_pid(text: str) -> ProcessId | None:
    """Inverse of ``str(ProcessId)`` for non-kernel pids ('p2.5')."""
    if not text.startswith("p"):
        return None
    creating, _, local = text[1:].partition(".")
    try:
        return ProcessId(int(creating), int(local))
    except ValueError:
        return None


class AffinityPolicy:
    """Co-locate the chattiest cross-machine process pair."""

    def __init__(
        self,
        system: "System",
        interval: int = 20_000,
        message_threshold: int = 20,
        min_cpu_headroom: int = 4,
        exclude_names: frozenset[str] = DEFAULT_EXCLUDE,
    ) -> None:
        self.system = system
        self.interval = interval
        self.message_threshold = message_threshold
        self.min_cpu_headroom = min_cpu_headroom
        self.exclude_names = exclude_names
        self.matrix = CommunicationMatrix()
        self.stats = BalancerStats()
        self._stopped = False

    def install(self) -> None:
        """Subscribe to the tracer and start periodic evaluation."""
        self.system.tracer.subscribe(self.matrix.observe)
        self.system.loop.call_after(self.interval, self._tick)

    def stop(self) -> None:
        """Cease evaluating and stop observing the tracer."""
        self._stopped = True
        self.system.tracer.unsubscribe(self.matrix.observe)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.stats.samples += 1
        self._evaluate()
        self.system.loop.call_after(self.interval, self._tick)

    def _evaluate(self) -> None:
        loads = machine_loads(self.system)
        for (sender_text, receiver_text), count in (
            self.matrix.heaviest_pairs(10)
        ):
            if count < self.message_threshold:
                break
            sender = _parse_pid(sender_text)
            receiver = _parse_pid(receiver_text)
            if sender is None or receiver is None:
                continue
            placement = self._plan_move(sender, receiver, loads)
            if placement is None:
                continue
            mover, dest, source = placement
            self.stats.migrations_started += 1
            self.stats.moves.append((str(mover), source, dest))
            self.system.tracer.record(
                "policy", "affinity", pid=str(mover), dest=dest,
                traffic=count,
            )
            self.system.kernel(source).migration.start(
                mover, dest, on_done=self._on_done,
            )
            return  # one move per tick

    def _plan_move(
        self,
        a: ProcessId,
        b: ProcessId,
        loads: dict[int, int],
    ) -> tuple[ProcessId, int, int] | None:
        """Decide which of *a*/*b* moves where; None if nothing sensible."""
        machine_a = self.system.where_is(a)
        machine_b = self.system.where_is(b)
        if machine_a is None or machine_b is None or machine_a == machine_b:
            return None
        state_a = self.system.process_state(a)
        state_b = self.system.process_state(b)
        assert state_a is not None and state_b is not None
        movable_a = state_a.name not in self.exclude_names
        movable_b = state_b.name not in self.exclude_names
        # Prefer moving the process on the more loaded machine toward the
        # other, so affinity moves also help balance.
        ordered = sorted(
            [
                (loads.get(machine_b, 0), movable_a, a, machine_b, machine_a),
                (loads.get(machine_a, 0), movable_b, b, machine_a, machine_b),
            ],
            key=lambda item: item[0],
        )
        for target_load, movable, pid, dest, source in ordered:
            if movable and target_load < self.min_cpu_headroom:
                return pid, dest, source
        return None

    def _on_done(self, success: bool, record: MigrationCostRecord) -> None:
        if success:
            self.stats.migrations_succeeded += 1
        else:
            self.stats.migrations_failed += 1
