"""Administrative domains and interdomain migration (paper §3.2).

"It is also possible to migrate processes between domains.  By domain, we
mean that the destination processor belongs to a collection of machines
under a different administrative control than the source processor, and
may be suspicious of the source processor and the incoming process.  The
destination processor may simply refuse to accept any migrations not
fitting its criteria."

A :class:`Domain` groups machines and carries an admission policy; the
:class:`DomainRegistry` installs per-kernel acceptance predicates that
consult it.  Intra-domain traffic is always admitted; interdomain
admission is the domain's decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.kernel.ids import ProcessId
from repro.net.topology import MachineId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System

#: admission policy: (pid, total_bytes, source_domain_name) -> accept?
AdmissionPolicy = Callable[[ProcessId, int, str], bool]


def accept_all(pid: ProcessId, size: int, from_domain: str) -> bool:
    """The trusting-cluster default: everyone is welcome."""
    return True


def refuse_foreign(pid: ProcessId, size: int, from_domain: str) -> bool:
    """Suspicious domain: only processes born inside it are admitted —
    and the registry only consults this for *interdomain* arrivals, so
    it amounts to refusing every foreign process."""
    return False


def size_capped(max_bytes: int) -> AdmissionPolicy:
    """Admit foreign processes only up to *max_bytes* of state."""

    def policy(pid: ProcessId, size: int, from_domain: str) -> bool:
        return size <= max_bytes

    return policy


@dataclass
class Domain:
    """A named collection of machines under one administration."""

    name: str
    machines: set[MachineId]
    admission: AdmissionPolicy = accept_all
    admitted: int = 0
    refused: int = 0

    def contains(self, machine: MachineId) -> bool:
        """Whether *machine* belongs to this domain."""
        return machine in self.machines


@dataclass
class DomainRegistry:
    """All domains of one system, plus the kernel hook installation."""

    domains: list[Domain] = field(default_factory=list)

    def add(self, domain: Domain) -> Domain:
        """Register a domain (machines must not overlap an existing one)."""
        for existing in self.domains:
            overlap = existing.machines & domain.machines
            if overlap:
                raise ValueError(
                    f"machines {sorted(overlap)} already in domain "
                    f"{existing.name!r}"
                )
        self.domains.append(domain)
        return domain

    def domain_of(self, machine: MachineId) -> Domain | None:
        """The domain containing *machine*, if any."""
        for domain in self.domains:
            if domain.contains(machine):
                return domain
        return None

    def install(self, system: "System") -> None:
        """Wire every kernel's migration-acceptance predicate to its
        domain's admission policy.

        The source machine is recovered per-migration from the process id
        is not enough (processes move); instead the predicate closes over
        the destination kernel and asks the system where the process
        currently is — which is what a real border kernel learns from the
        request's sender anyway.
        """
        for kernel in system.kernels:
            dest_domain = self.domain_of(kernel.machine)
            if dest_domain is None:
                continue

            def predicate(
                pid: ProcessId,
                size: int,
                _dest: Domain = dest_domain,
                _system: "System" = system,
            ) -> bool:
                source_machine = _system.where_is(pid)
                source_domain = (
                    self.domain_of(source_machine)
                    if source_machine is not None else None
                )
                if source_domain is _dest:
                    _dest.admitted += 1
                    return True  # intra-domain: kernels trust each other
                from_name = source_domain.name if source_domain else "?"
                verdict = _dest.admission(pid, size, from_name)
                if verdict:
                    _dest.admitted += 1
                else:
                    _dest.refused += 1
                return verdict

            kernel.config.accept_migration = predicate
