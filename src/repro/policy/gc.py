"""Forwarding-address garbage collection (paper §4).

The paper leaves forwarding addresses in place ("negligible impact on
system resources") but notes that "given a long running system, however,
some form of garbage collection will eventually have to be used" and
sketches two schemes: reference counts (the optimum) and removal on
process death via backward pointers (implemented in the kernel,
:meth:`repro.kernel.kernel.Kernel.terminate`).

This module adds the long-running-system piece: an age-based sweeper that
periodically collects forwarding addresses older than a threshold.  The
trade-off is explicit — a swept entry makes any *still*-stale link
undeliverable, handled by the kernel's undeliverable policy — so the
threshold should comfortably exceed the link-update convergence time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System


@dataclass
class SweeperStats:
    """What the sweeper has collected so far."""

    sweeps: int = 0
    collected: int = 0
    collected_pids: list[str] = field(default_factory=list)


class ForwardingSweeper:
    """Periodically collect forwarding addresses older than *max_age*."""

    def __init__(
        self,
        system: "System",
        interval: int = 1_000_000,
        max_age: int = 5_000_000,
    ) -> None:
        self.system = system
        self.interval = interval
        self.max_age = max_age
        self.stats = SweeperStats()
        self._stopped = False

    def install(self) -> None:
        """Start sweeping on the system's event loop."""
        self.system.loop.call_after(self.interval, self._tick)

    def stop(self) -> None:
        """Cease sweeping after the current tick."""
        self._stopped = True

    def sweep_now(self) -> int:
        """Run one sweep immediately; returns entries collected."""
        now = self.system.loop.now
        collected = 0
        for kernel in self.system.kernels:
            victims = kernel.forwarding.sweep(now, self.max_age)
            for victim in victims:
                self.stats.collected_pids.append(str(victim.pid))
                self.system.tracer.record(
                    "forward", "swept", pid=str(victim.pid),
                    machine=kernel.machine,
                    age=now - victim.created_at,
                )
            collected += len(victims)
        self.stats.sweeps += 1
        self.stats.collected += collected
        return collected

    def _tick(self) -> None:
        if self._stopped:
            return
        self.sweep_now()
        self.system.loop.call_after(self.interval, self._tick)
