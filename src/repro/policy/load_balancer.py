"""A threshold load balancer with hysteresis (paper §3.1 / §7).

"The mechanism for moving a process has been implemented, but there is
not yet a strategy routine that actually decides when to move a process"
— the paper leaves the decision rule as continuing work, and names the
three missing pieces: collecting the information in one place, a strategy
for improving system operation against migration costs, and "a hysteresis
mechanism to keep from incurring the cost of migration more often than
justified by the gains."  This module implements that strategy routine.

The balancer plays the process manager's decision role: it periodically
samples per-machine run-queue loads and, when the spread between the most
and least loaded machines exceeds a threshold for several consecutive
samples, migrates one process from the hottest to the coolest machine.
Hysteresis comes from (a) the sustained-imbalance requirement and (b) a
per-process cooldown.

**Latency-aware mode** (:class:`SloPolicy`): instead of run-queue
spread, the trigger is the *users'* experience — the p99 of the request
latency histogram over the last sampling interval, read as cumulative-
snapshot deltas (:meth:`~repro.obs.metrics.HistogramSnapshot.
delta_since`).  When the windowed p99 breaches the SLO for ``sustain``
consecutive samples, one process migrates from the hottest to the
coolest machine; a clear band (breach streaks only reset once p99 drops
below ``clear_factor * slo``) plus a firing cooldown keep an
oscillating tail from causing a migration storm.  The decision state
machine itself is the pure :class:`SloTrigger`, property-tested in
isolation.  All inputs are per-machine or registry-local, so a
:class:`DomainLoadBalancer` in latency mode stays shard-local: it reads
its own domain's ``metric{domain=...}`` series from the shard registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.ids import ProcessId
from repro.obs.metrics import HistogramSnapshot
from repro.policy.metrics import imbalance, machine_loads, migratable_processes
from repro.stats.migration_cost import MigrationCostRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System

#: System processes a balancer must not move by default (they are "often
#: tied to unmovable resources", §5 — here, it is just unhelpful).
DEFAULT_EXCLUDE = frozenset({
    "switchboard", "process_manager", "memory_scheduler",
    "command_interpreter", "disk_driver", "buffer_manager",
    "directory_manager", "file_system",
})


@dataclass(frozen=True)
class SloPolicy:
    """Configuration for the latency-aware (SLO) trigger."""

    #: the service-level objective: windowed p99 must stay below this
    p99_slo_us: float
    #: histogram the pool publishes request latencies into; a
    #: :class:`DomainLoadBalancer` reads its ``domain=<label>`` series
    metric: str = "workload.request_latency_us"
    #: consecutive breached samples required before a migration fires
    sustain: int = 2
    #: minimum time between SLO-triggered migrations, microseconds
    cooldown: int = 200_000
    #: breach streaks reset only once p99 < clear_factor * slo — the
    #: hysteresis band that stops oscillation around the SLO thrashing
    clear_factor: float = 0.8
    #: windows with fewer observations than this are ignored (a single
    #: unlucky request is not an SLO violation)
    min_window_count: int = 8

    def validate(self) -> None:
        if self.p99_slo_us <= 0:
            raise ValueError("p99_slo_us must be positive")
        if self.sustain < 1:
            raise ValueError("sustain must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if not 0.0 < self.clear_factor <= 1.0:
            raise ValueError("clear_factor must be in (0, 1]")
        if self.min_window_count < 1:
            raise ValueError("min_window_count must be >= 1")


class SloTrigger:
    """The pure SLO decision state machine (sustain / clear / cooldown).

    ``observe`` consumes one windowed (p99, count) sample at time *now*
    and says whether a migration should fire.  Guarantees, independent
    of the input sequence (property-tested):

    - two fires are always >= ``cooldown`` apart;
    - a fire needs ``sustain`` breached samples since the last reset,
      so a single spike cannot trigger anything when ``sustain > 1``.
    """

    def __init__(self, policy: SloPolicy) -> None:
        policy.validate()
        self.policy = policy
        self.breaches = 0
        self.last_fired: int | None = None

    def observe(self, p99: float | None, count: int, now: int) -> bool:
        """Feed one window; True when a migration should fire now."""
        policy = self.policy
        if p99 is None or count < policy.min_window_count:
            # An idle window says nothing about the tail; treat it as
            # healthy so stale breach streaks cannot fire later.
            self.breaches = 0
            return False
        if (
            self.last_fired is not None
            and now - self.last_fired < policy.cooldown
        ):
            return False
        if p99 > policy.p99_slo_us:
            self.breaches += 1
            if self.breaches >= policy.sustain:
                self.breaches = 0
                self.last_fired = now
                return True
            return False
        if p99 <= policy.clear_factor * policy.p99_slo_us:
            self.breaches = 0
        return False


@dataclass
class BalancerStats:
    """What the balancer did, for benchmark reporting."""

    samples: int = 0
    imbalanced_samples: int = 0
    migrations_started: int = 0
    migrations_succeeded: int = 0
    migrations_failed: int = 0
    #: latency mode: samples whose windowed p99 breached the SLO, and
    #: trigger firings the load picture gave no useful move for
    slo_breach_samples: int = 0
    slo_no_target: int = 0
    moves: list[tuple[str, int, int]] = field(default_factory=list)
    #: simulated time of each move, parallel to :attr:`moves`
    move_times: list[int] = field(default_factory=list)

    def publish(self, registry, **labels) -> None:
        """Mirror the balancer's decisions into a metrics registry.

        *labels* distinguish concurrent balancers (e.g. one per
        topology domain) so their series do not collide when per-shard
        snapshots are merged.
        """
        for name in (
            "samples", "imbalanced_samples", "migrations_started",
            "migrations_succeeded", "migrations_failed",
            "slo_breach_samples", "slo_no_target",
        ):
            registry.counter(
                f"policy.balancer.{name}", **labels
            ).set_total(getattr(self, name))


class ThresholdLoadBalancer:
    """Periodic sample -> sustained imbalance -> migrate one process."""

    def __init__(
        self,
        system: "System",
        interval: int = 10_000,
        threshold: int = 2,
        sustain: int = 2,
        cooldown: int = 50_000,
        exclude_names: frozenset[str] = DEFAULT_EXCLUDE,
        victim_strategy: str = "first",
        slo: SloPolicy | None = None,
    ) -> None:
        self.system = system
        self.interval = interval
        self.threshold = threshold
        self.sustain = sustain
        self.cooldown = cooldown
        self.exclude_names = exclude_names
        #: latency-aware mode: when set, samples watch the windowed p99
        #: of ``slo.metric`` instead of the run-queue spread
        self.slo = slo
        self._slo_trigger = SloTrigger(slo) if slo is not None else None
        self._slo_prev: HistogramSnapshot | None = None
        #: labels selecting the histogram series to watch; a domain
        #: balancer narrows this to its own ``domain=<label>`` series
        self._slo_labels: dict[str, str] = {}
        if victim_strategy not in ("first", "hungriest", "cheapest"):
            raise ValueError(
                f"unknown victim strategy {victim_strategy!r}"
            )
        #: how to choose which process leaves the hot machine (§3.1:
        #: "the ability to evaluate the resource use patterns of
        #: processes"): "first" is arbitrary (as in the paper's tests),
        #: "hungriest" moves the biggest CPU consumer, "cheapest" the
        #: process with the least state to transfer.
        self.victim_strategy = victim_strategy
        self.stats = BalancerStats()
        self._consecutive = 0
        self._last_moved: dict[ProcessId, int] = {}
        self._stopped = False

    def install(self) -> None:
        """Start sampling on the system's event loop."""
        self.system.metrics.register_collector(self.stats.publish)
        self.system.loop.call_after(self.interval, self._tick)

    def stop(self) -> None:
        """Cease sampling after the current tick."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.stats.samples += 1
        self._sample()
        self.system.loop.call_after(self.interval, self._tick)

    def _sample(self) -> None:
        if self._slo_trigger is not None:
            self._sample_slo()
            return
        loads = machine_loads(self.system)
        spread = imbalance(loads)
        if spread < self.threshold:
            self._consecutive = 0
            return
        self.stats.imbalanced_samples += 1
        self._consecutive += 1
        if self._consecutive < self.sustain:
            return
        self._consecutive = 0
        hottest = max(loads, key=lambda m: (loads[m], m))
        coolest = min(loads, key=lambda m: (loads[m], -m))
        victim = self._pick_victim(hottest)
        if victim is None:
            return
        now = self.system.loop.now
        self._last_moved[victim] = now
        self.stats.migrations_started += 1
        self.stats.moves.append((str(victim), hottest, coolest))
        self.stats.move_times.append(now)
        self.system.tracer.record(
            "policy", "balance", pid=str(victim),
            source=hottest, dest=coolest, spread=spread,
        )
        self.system.kernel(hottest).migration.start(
            victim, coolest, on_done=self._on_done,
        )

    def _sample_slo(self) -> None:
        """Latency-aware sample: windowed p99 vs the SLO.

        Freezes the watched latency histogram, diffs it against the
        previous sample's snapshot (:meth:`HistogramSnapshot.
        delta_since`) and feeds the window's p99 to the pure
        :class:`SloTrigger`.  When the trigger fires, the *placement*
        decision reuses the run-queue picture: one movable process
        leaves the hottest machine for the coolest — latency tells us
        *when* to act, load tells us *where*.
        """
        assert self.slo is not None and self._slo_trigger is not None
        current = self.system.metrics.latency_histogram(
            self.slo.metric, **self._slo_labels
        ).freeze()
        previous = self._slo_prev
        self._slo_prev = current
        window = (
            current if previous is None else current.delta_since(previous)
        )
        p99 = window.percentile(0.99)
        if p99 is not None and p99 > self.slo.p99_slo_us:
            self.stats.slo_breach_samples += 1
        now = self.system.loop.now
        if not self._slo_trigger.observe(p99, window.count, now):
            return
        self.stats.imbalanced_samples += 1
        loads = machine_loads(self.system)
        hottest = max(loads, key=lambda m: (loads[m], m))
        coolest = min(loads, key=lambda m: (loads[m], -m))
        if hottest == coolest or loads[hottest] == loads[coolest]:
            # The tail is bad but every machine is equally busy — a
            # move would just shuffle the overload around.
            self.stats.slo_no_target += 1
            return
        victim = self._pick_victim(hottest)
        if victim is None:
            self.stats.slo_no_target += 1
            return
        self._last_moved[victim] = now
        self.stats.migrations_started += 1
        self.stats.moves.append((str(victim), hottest, coolest))
        self.stats.move_times.append(now)
        self.system.tracer.record(
            "policy", "slo_balance", pid=str(victim),
            source=hottest, dest=coolest,
            p99=p99, slo=self.slo.p99_slo_us, window=window.count,
        )
        self.system.kernel(hottest).migration.start(
            victim, coolest, on_done=self._on_done,
        )

    def _pick_victim(self, machine: int) -> ProcessId | None:
        """Choose a movable process, respecting the per-pid cooldown."""
        now = self.system.loop.now
        candidates = [
            pid
            for pid in migratable_processes(
                self.system, machine, self.exclude_names,
            )
            if now - self._last_moved.get(pid, -self.cooldown)
            >= self.cooldown
        ]
        if not candidates:
            return None
        if self.victim_strategy == "first":
            return candidates[0]
        kernel = self.system.kernel(machine)
        if self.victim_strategy == "hungriest":
            return max(
                candidates,
                key=lambda pid: (
                    kernel.processes[pid].accounting.cpu_time, str(pid),
                ),
            )
        # "cheapest": least state to transfer (program + system state).
        return min(
            candidates,
            key=lambda pid: (
                kernel.processes[pid].program_bytes
                + kernel.processes[pid].swappable_state_bytes,
                str(pid),
            ),
        )

    def _on_done(self, success: bool, record: MigrationCostRecord) -> None:
        if success:
            self.stats.migrations_succeeded += 1
        else:
            self.stats.migrations_failed += 1


class DomainLoadBalancer(ThresholdLoadBalancer):
    """A threshold balancer scoped to one topology neighbourhood.

    Runs against a :class:`repro.sim.shard.DomainView` — a torus row, a
    clique, any machine set the shard partitioner keeps whole — instead
    of the global system.  Its inputs (the domain's run-queue loads) and
    outputs (an intra-domain migration) are functions of per-machine
    state only, which is what makes its decisions identical across
    shard layouts and lets it run inside a forked worker.  One balancer
    per domain replaces the global :class:`ThresholdLoadBalancer` in
    sharded scenarios; stats publish with a ``domain`` label so the
    merged snapshot keeps each domain's series distinct.
    """

    def __init__(self, view, domain, **kwargs) -> None:
        super().__init__(view, **kwargs)
        #: label identifying this domain in metrics and traces
        self.domain = domain
        # In latency mode, watch this domain's own series: the client
        # pool labels each service's latencies with its domain, so the
        # balancer's inputs stay local to the machines it can act on.
        self._slo_labels = {"domain": domain}

    def install(self) -> None:
        """Start sampling on the domain's shard loop."""
        self.system.metrics.register_collector(
            lambda registry: self.stats.publish(
                registry, domain=self.domain
            )
        )
        self.system.loop.call_after(self.interval, self._tick)
