"""A threshold load balancer with hysteresis (paper §3.1 / §7).

"The mechanism for moving a process has been implemented, but there is
not yet a strategy routine that actually decides when to move a process"
— the paper leaves the decision rule as continuing work, and names the
three missing pieces: collecting the information in one place, a strategy
for improving system operation against migration costs, and "a hysteresis
mechanism to keep from incurring the cost of migration more often than
justified by the gains."  This module implements that strategy routine.

The balancer plays the process manager's decision role: it periodically
samples per-machine run-queue loads and, when the spread between the most
and least loaded machines exceeds a threshold for several consecutive
samples, migrates one process from the hottest to the coolest machine.
Hysteresis comes from (a) the sustained-imbalance requirement and (b) a
per-process cooldown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.ids import ProcessId
from repro.policy.metrics import imbalance, machine_loads, migratable_processes
from repro.stats.migration_cost import MigrationCostRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System

#: System processes a balancer must not move by default (they are "often
#: tied to unmovable resources", §5 — here, it is just unhelpful).
DEFAULT_EXCLUDE = frozenset({
    "switchboard", "process_manager", "memory_scheduler",
    "command_interpreter", "disk_driver", "buffer_manager",
    "directory_manager", "file_system",
})


@dataclass
class BalancerStats:
    """What the balancer did, for benchmark reporting."""

    samples: int = 0
    imbalanced_samples: int = 0
    migrations_started: int = 0
    migrations_succeeded: int = 0
    migrations_failed: int = 0
    moves: list[tuple[str, int, int]] = field(default_factory=list)

    def publish(self, registry, **labels) -> None:
        """Mirror the balancer's decisions into a metrics registry.

        *labels* distinguish concurrent balancers (e.g. one per
        topology domain) so their series do not collide when per-shard
        snapshots are merged.
        """
        for name in (
            "samples", "imbalanced_samples", "migrations_started",
            "migrations_succeeded", "migrations_failed",
        ):
            registry.counter(
                f"policy.balancer.{name}", **labels
            ).set_total(getattr(self, name))


class ThresholdLoadBalancer:
    """Periodic sample -> sustained imbalance -> migrate one process."""

    def __init__(
        self,
        system: "System",
        interval: int = 10_000,
        threshold: int = 2,
        sustain: int = 2,
        cooldown: int = 50_000,
        exclude_names: frozenset[str] = DEFAULT_EXCLUDE,
        victim_strategy: str = "first",
    ) -> None:
        self.system = system
        self.interval = interval
        self.threshold = threshold
        self.sustain = sustain
        self.cooldown = cooldown
        self.exclude_names = exclude_names
        if victim_strategy not in ("first", "hungriest", "cheapest"):
            raise ValueError(
                f"unknown victim strategy {victim_strategy!r}"
            )
        #: how to choose which process leaves the hot machine (§3.1:
        #: "the ability to evaluate the resource use patterns of
        #: processes"): "first" is arbitrary (as in the paper's tests),
        #: "hungriest" moves the biggest CPU consumer, "cheapest" the
        #: process with the least state to transfer.
        self.victim_strategy = victim_strategy
        self.stats = BalancerStats()
        self._consecutive = 0
        self._last_moved: dict[ProcessId, int] = {}
        self._stopped = False

    def install(self) -> None:
        """Start sampling on the system's event loop."""
        self.system.metrics.register_collector(self.stats.publish)
        self.system.loop.call_after(self.interval, self._tick)

    def stop(self) -> None:
        """Cease sampling after the current tick."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.stats.samples += 1
        self._sample()
        self.system.loop.call_after(self.interval, self._tick)

    def _sample(self) -> None:
        loads = machine_loads(self.system)
        spread = imbalance(loads)
        if spread < self.threshold:
            self._consecutive = 0
            return
        self.stats.imbalanced_samples += 1
        self._consecutive += 1
        if self._consecutive < self.sustain:
            return
        self._consecutive = 0
        hottest = max(loads, key=lambda m: (loads[m], m))
        coolest = min(loads, key=lambda m: (loads[m], -m))
        victim = self._pick_victim(hottest)
        if victim is None:
            return
        now = self.system.loop.now
        self._last_moved[victim] = now
        self.stats.migrations_started += 1
        self.stats.moves.append((str(victim), hottest, coolest))
        self.system.tracer.record(
            "policy", "balance", pid=str(victim),
            source=hottest, dest=coolest, spread=spread,
        )
        self.system.kernel(hottest).migration.start(
            victim, coolest, on_done=self._on_done,
        )

    def _pick_victim(self, machine: int) -> ProcessId | None:
        """Choose a movable process, respecting the per-pid cooldown."""
        now = self.system.loop.now
        candidates = [
            pid
            for pid in migratable_processes(
                self.system, machine, self.exclude_names,
            )
            if now - self._last_moved.get(pid, -self.cooldown)
            >= self.cooldown
        ]
        if not candidates:
            return None
        if self.victim_strategy == "first":
            return candidates[0]
        kernel = self.system.kernel(machine)
        if self.victim_strategy == "hungriest":
            return max(
                candidates,
                key=lambda pid: (
                    kernel.processes[pid].accounting.cpu_time, str(pid),
                ),
            )
        # "cheapest": least state to transfer (program + system state).
        return min(
            candidates,
            key=lambda pid: (
                kernel.processes[pid].program_bytes
                + kernel.processes[pid].swappable_state_bytes,
                str(pid),
            ),
        )

    def _on_done(self, success: bool, record: MigrationCostRecord) -> None:
        if success:
            self.stats.migrations_succeeded += 1
        else:
            self.stats.migrations_failed += 1


class DomainLoadBalancer(ThresholdLoadBalancer):
    """A threshold balancer scoped to one topology neighbourhood.

    Runs against a :class:`repro.sim.shard.DomainView` — a torus row, a
    clique, any machine set the shard partitioner keeps whole — instead
    of the global system.  Its inputs (the domain's run-queue loads) and
    outputs (an intra-domain migration) are functions of per-machine
    state only, which is what makes its decisions identical across
    shard layouts and lets it run inside a forked worker.  One balancer
    per domain replaces the global :class:`ThresholdLoadBalancer` in
    sharded scenarios; stats publish with a ``domain`` label so the
    merged snapshot keeps each domain's series distinct.
    """

    def __init__(self, view, domain, **kwargs) -> None:
        super().__init__(view, **kwargs)
        #: label identifying this domain in metrics and traces
        self.domain = domain

    def install(self) -> None:
        """Start sampling on the domain's shard loop."""
        self.system.metrics.register_collector(
            lambda registry: self.stats.publish(
                registry, domain=self.domain
            )
        )
        self.system.loop.call_after(self.interval, self._tick)
