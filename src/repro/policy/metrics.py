"""Load and communication metrics for migration decision rules.

The paper (§3.1) lists what a decision rule needs: per-machine processor
loading and memory demand, per-process resource-use patterns, and —
hardest of all — communication costs.  "Collection of the communication
data is beyond the ability of most current systems"; here the tracer is
the accounting subsystem, and :class:`CommunicationMatrix` builds the
per-pair message counts from delivery records.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.kernel.ids import ProcessId
from repro.kernel.process_state import ProcessStatus
from repro.sim.trace import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System


def machine_loads(system: "System") -> dict[int, int]:
    """Run-queue length (plus running) per machine."""
    return {
        kernel.machine: kernel.scheduler.load for kernel in system.kernels
    }


def memory_demand(system: "System") -> dict[int, int]:
    """Bytes of real memory in use per machine."""
    return {
        kernel.machine: kernel.memory.used_bytes for kernel in system.kernels
    }


def imbalance(loads: dict[int, int]) -> int:
    """Spread between the most and least loaded machines."""
    if not loads:
        return 0
    return max(loads.values()) - min(loads.values())


def migratable_processes(
    system: "System",
    machine: int,
    exclude_names: frozenset[str] = frozenset(),
) -> list[ProcessId]:
    """Processes on *machine* a balancer may move: runnable or waiting
    user work, not already in motion, not excluded servers."""
    kernel = system.kernel(machine)
    movable = []
    for pid, state in kernel.processes.items():
        if state.status in (
            ProcessStatus.IN_MIGRATION, ProcessStatus.TERMINATED,
        ):
            continue
        if state.name in exclude_names:
            continue
        movable.append(pid)
    return sorted(movable, key=str)


class CommunicationMatrix:
    """Per-(sender, receiver) message counts, fed by the tracer.

    Subscribe before the workload runs::

        matrix = CommunicationMatrix()
        system.tracer.subscribe(matrix.observe)
    """

    def __init__(self) -> None:
        self.counts: Counter[tuple[str, str]] = Counter()

    def observe(self, record: TraceRecord) -> None:
        """Tracer listener: count kernel.deliver records."""
        if record.category == "kernel" and record.event == "deliver":
            sender = record.fields.get("sender")
            receiver = record.fields.get("pid")
            if sender and receiver:
                self.counts[(sender, receiver)] += 1

    def traffic_between(self, a: str, b: str) -> int:
        """Messages exchanged between processes *a* and *b* (both ways)."""
        return self.counts[(a, b)] + self.counts[(b, a)]

    def heaviest_pairs(
        self, top: int = 5
    ) -> list[tuple[tuple[str, str], int]]:
        """The busiest (sender, receiver) pairs."""
        return self.counts.most_common(top)
