"""Placement with destination autonomy (paper §3.2).

"The crucial questions for autonomous processors are 'Is the process
willing to be moved?' and 'Will the destination machine accept it?' ...
If the destination machine refuses, the process cannot be migrated.
The source processor, once rebuffed, has the option of looking
elsewhere."

:class:`FallbackMigration` is that "looking elsewhere": it tries a
preference list of destinations in order, moving on after each refusal,
and reports where the process finally landed (or that everyone refused).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.kernel.ids import ProcessId
from repro.net.topology import MachineId
from repro.stats.migration_cost import MigrationCostRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System


@dataclass
class FallbackOutcome:
    """Result of a fallback migration attempt."""

    pid: ProcessId
    placed_on: MachineId | None = None
    refusals: list[tuple[MachineId, str]] = field(default_factory=list)
    records: list[MigrationCostRecord] = field(default_factory=list)
    done: bool = False

    @property
    def succeeded(self) -> bool:
        """Whether the process eventually landed somewhere."""
        return self.placed_on is not None


class FallbackMigration:
    """Try destinations in preference order until one accepts."""

    def __init__(
        self,
        system: "System",
        pid: ProcessId,
        preferences: list[MachineId],
        on_done: Callable[[FallbackOutcome], None] | None = None,
    ) -> None:
        self.system = system
        self.pid = pid
        self.preferences = list(preferences)
        self.outcome = FallbackOutcome(pid)
        self._on_done = on_done
        self._index = 0

    def start(self) -> FallbackOutcome:
        """Kick off the first attempt; returns the (live) outcome."""
        self._try_next()
        return self.outcome

    def _try_next(self) -> None:
        if self._index >= len(self.preferences):
            self._finish()
            return
        dest = self.preferences[self._index]
        self._index += 1
        kernel = self.system.kernel_hosting(self.pid)
        if kernel is None:
            self._finish()
            return
        if dest == kernel.machine:
            # Already there; that counts as placed.
            self.outcome.placed_on = dest
            self._finish()
            return
        initiated = kernel.migration.start(
            self.pid, dest, on_done=self._attempt_done,
        )
        if not initiated:
            self._try_next()

    def _attempt_done(
        self, success: bool, record: MigrationCostRecord
    ) -> None:
        self.outcome.records.append(record)
        if success:
            self.outcome.placed_on = record.dest
            self._finish()
            return
        self.outcome.refusals.append(
            (record.dest, record.refusal_reason or "refused"),
        )
        self.system.tracer.record(
            "policy", "rebuffed", pid=str(self.pid), dest=record.dest,
            reason=record.refusal_reason,
        )
        self._try_next()

    def _finish(self) -> None:
        self.outcome.done = True
        if self._on_done is not None:
            self._on_done(self.outcome)


def migrate_with_fallback(
    system: "System",
    pid: ProcessId,
    preferences: list[MachineId],
    on_done: Callable[[FallbackOutcome], None] | None = None,
) -> FallbackOutcome:
    """Convenience wrapper: start a fallback migration immediately."""
    return FallbackMigration(system, pid, preferences, on_done).start()
