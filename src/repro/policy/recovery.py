"""Fail-stop crash recovery (paper §1 and §4).

"If the information necessary to transport a process is saved in stable
storage, it may be possible to 'migrate' a process from a processor that
has crashed to a working one." (§1)

"It is possible for the processor that is holding forwarding address to
crash.  Since forwarding addresses are (degenerate) processes, the same
recovery mechanism that works for processes works for forwarding
addresses.  Process migration assumes that reliable message delivery is
provided by some lower level mechanism, for example, published
communications." (§4)

:class:`CrashRecoveryManager` models exactly that:

- **stable storage** is modelled as perfect continuous publication: at
  the crash instant the manager recovers each *protected* process's
  authoritative state (in DEMOS/MP the publishing mechanism would have
  mirrored it; in the simulation the state object is the mirror);
- the crashed machine's **forwarding addresses** are recovered onto the
  executor machine, and the network redirects traffic addressed to the
  dead machine there — the published-communications takeover;
- **unprotected** processes are casualties: messages to them get the
  normal dead-process treatment (sender notified the link is unusable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.kernel.ids import ProcessId
from repro.kernel.process_state import ProcessState, ProcessStatus
from repro.net.topology import MachineId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System
    from repro.sim.shard import ShardedSystem

    AnySystem = System | ShardedSystem


def _kernels(system: "AnySystem"):
    """Every kernel in machine order, on either engine."""
    if hasattr(system, "shards"):
        return system.kernels_in_machine_order()
    return list(system.kernels)


def _now(system: "AnySystem") -> int:
    """The engine clock: one loop classically, the barrier clock sharded.

    Under sharding, recovery only ever runs inside a barrier action,
    where every shard clock has been frozen to the action time — so the
    max over shard clocks *is* the crash instant.
    """
    if hasattr(system, "shards"):
        return system.now()
    return system.loop.now


def _tracer(system: "AnySystem", machine: MachineId):
    """The tracer that owns *machine* (the shard's, or the global one)."""
    if hasattr(system, "shards"):
        return system.shard_for(machine).tracer
    return system.tracer


def _crash_transport(
    system: "AnySystem", machine: MachineId, executor: MachineId
) -> None:
    """Fail-stop the transport on either engine."""
    if hasattr(system, "shards"):
        system.crash_transport(machine, executor)
    else:
        system.network.crash_machine(machine, executor)


@dataclass
class CrashReport:
    """What one crash did."""

    machine: MachineId
    executor: MachineId
    recovered: list[ProcessId] = field(default_factory=list)
    casualties: list[ProcessId] = field(default_factory=list)
    forwarding_recovered: int = 0
    migrations_aborted: int = 0


class CrashRecoveryManager:
    """Fail-stop crashes with stable-storage process recovery.

    Duck-types over :class:`~repro.core.system.System` and
    :class:`~repro.sim.shard.ShardedSystem` (serial executor).  Sharded
    crashes must run inside a barrier action
    (:meth:`~repro.sim.shard.ShardedSystem.call_at_barrier`): the
    recovery sequence mutates several shards' state atomically, which
    is only sound between windows with every shard clock frozen at the
    crash instant.
    """

    def __init__(self, system: "AnySystem") -> None:
        self.system = system
        self._protected: set[ProcessId] = set()
        self.reports: list[CrashReport] = []

    def protect(self, pid: ProcessId) -> None:
        """Mark *pid* as saved to stable storage (recoverable)."""
        self._protected.add(pid)

    def protect_all(self, machine: MachineId) -> None:
        """Protect every process currently on *machine*."""
        for pid in self.system.kernel(machine).processes:
            self.protect(pid)

    def crash(
        self, machine: MachineId, executor: MachineId
    ) -> CrashReport:
        """Fail-stop *machine*; recover its protected contents on
        *executor*."""
        if machine == executor:
            raise KernelError("executor must be a different machine")
        system = self.system
        dead = system.kernel(machine)
        alive = system.kernel(executor)
        if dead.crashed:
            raise KernelError(f"machine {machine} already crashed")
        if alive.crashed:
            raise KernelError(f"executor {executor} is itself dead")
        report = CrashReport(machine, executor)

        # The instant of failure: the kernel stops doing anything, and
        # the delivery substrate (published communications) hands its
        # streams and its traffic to the executor.
        dead.crashed = True
        _crash_transport(system, machine, executor)

        # Abort outbound migrations from *any* machine that were headed
        # to the dead one (their destination state is gone).
        for kernel in _kernels(system):
            if kernel is dead or kernel.crashed:
                continue
            for pid in list(kernel.migration.outgoing_pids()):
                entry = kernel.migration._outgoing.get(pid)
                if entry is None or entry.dest != machine:
                    continue
                state = kernel.processes.get(pid)
                entry.record.success = False
                entry.record.refusal_reason = "destination crashed"
                entry.record.completed_at = _now(system)
                if state is not None:
                    kernel.restore_aborted_migration(state)
                kernel.migration._finish_source(entry, success=False)
                report.migrations_aborted += 1

        # Resolve inbound migrations *from* the dead machine anywhere in
        # the system.  If the destination already holds the installed
        # state (all three data moves done), it finishes the move in
        # place — the dead source's remaining duties (forwarding an
        # already-lost pending queue, cleanup) are moot.  Otherwise the
        # transfer is incomplete and is cancelled; the frozen state is
        # still at the source and is recovered below if protected.
        for kernel in _kernels(system):
            if kernel is dead or kernel.crashed:
                continue
            for pid, entry in list(kernel.migration._incoming.items()):
                if entry.source != machine:
                    continue
                installed = (
                    entry.phase == "installed"
                    and pid in kernel.processes
                )
                del kernel.migration._incoming[pid]
                if installed:
                    # The same state object is still referenced by the
                    # dead source's table; claim it exclusively first.
                    dead.processes.pop(pid, None)
                    kernel.restart_migrated_process(kernel.processes[pid])
                    # The dead source died before its step-7 cleanup, so
                    # the forwarding address it owed was lost with it.
                    # The executor answers for the dead machine's routing
                    # (the transport redirect), so it holds the pointer —
                    # without it, traffic still addressed to the source
                    # redirects to the executor and is undeliverable.
                    if kernel is not alive:
                        alive.forwarding.install(
                            pid, kernel.machine, _now(system),
                        )
                        report.forwarding_recovered += 1
                    _tracer(system, kernel.machine).record(
                        "recover", "inbound-completed", pid=str(pid),
                        at=kernel.machine,
                    )
                else:
                    kernel.memory.cancel_reservation(pid)
                    kernel.processes.pop(pid, None)
                    report.migrations_aborted += 1
                    _tracer(system, kernel.machine).record(
                        "recover", "inbound-cancelled", pid=str(pid),
                        at=kernel.machine,
                    )

        # Recover forwarding addresses: degenerate processes, recovered
        # like processes (§4).  Skip entries the executor can answer
        # better itself — the process is resident here, or the executor
        # holds its own (later-on-the-path) pointer; installing the dead
        # machine's copy would shadow it with a staler or self-pointing
        # one.  Exception: an executor entry pointing *at* the dead
        # machine must be overwritten — the dead machine's copy is the
        # next link of that very chain (strictly fresher), and keeping
        # the stale pointer would combine with the transport redirect
        # (dead -> executor) into a routing cycle that forwards forever.
        for entry in dead.forwarding.entries():
            if entry.pid in alive.processes:
                continue
            own = alive.forwarding.lookup(entry.pid)
            if own is not None and own.machine != machine:
                continue
            alive.forwarding.install(
                entry.pid, entry.machine, _now(system),
            )
            report.forwarding_recovered += 1

        # Recover protected processes; unprotected ones are casualties.
        for pid, state in list(dead.processes.items()):
            del dead.processes[pid]
            if pid in self._protected:
                self._recover(dead, alive, state)
                report.recovered.append(pid)
            else:
                dead_mark = alive  # executor answers for the casualties
                dead_mark.dead.add(pid)
                report.casualties.append(pid)
                _tracer(system, alive.machine).record(
                    "recover", "casualty", pid=str(pid), machine=machine,
                )

        self.reports.append(report)
        _tracer(system, executor).record(
            "recover", "crash", machine=machine, executor=executor,
            recovered=len(report.recovered),
            casualties=len(report.casualties),
        )
        return report

    def audit(self) -> list[str]:
        """Cross-check recovery bookkeeping against live system state.

        Meant to run at quiescence (the chaos survivor-invariant gate):
        returns one human-readable problem per inconsistency, empty when
        recovery left no orphaned state behind.  Checks:

        - crashed kernels hold no process state and no open migration
          protocol entries;
        - no process is resident on two machines at once;
        - every *recovered* process is either alive on exactly one
          working machine or properly exited (dead-marked) — never
          silently vanished;
        - every *casualty* is dead everywhere and dead-marked somewhere
          (its executor answers for it);
        - no working kernel still has migration protocol entries open.
        """
        system = self.system
        problems: list[str] = []
        hosts: dict[ProcessId, list[MachineId]] = {}
        for kernel in _kernels(system):
            if kernel.crashed:
                if kernel.processes:
                    problems.append(
                        f"crashed machine {kernel.machine} still holds "
                        f"{len(kernel.processes)} process state(s)"
                    )
                continue
            for pid in kernel.processes:
                hosts.setdefault(pid, []).append(kernel.machine)
            open_entries = kernel.migration.in_progress
            if open_entries:
                problems.append(
                    f"machine {kernel.machine} has {open_entries} "
                    f"migration protocol entr(y/ies) still open"
                )
        for pid, machines in sorted(hosts.items(), key=lambda kv: str(kv[0])):
            if len(machines) > 1:
                problems.append(
                    f"{pid} is resident on {len(machines)} machines "
                    f"at once: {machines}"
                )

        def dead_marked(pid: ProcessId) -> bool:
            return any(pid in k.dead for k in _kernels(system))

        for report in self.reports:
            for pid in report.recovered:
                if pid in hosts or dead_marked(pid):
                    continue
                problems.append(
                    f"recovered {pid} (crash of machine {report.machine}) "
                    f"is neither alive nor dead-marked — orphaned"
                )
            for pid in report.casualties:
                if pid in hosts:
                    problems.append(
                        f"casualty {pid} (crash of machine "
                        f"{report.machine}) is still alive on "
                        f"{hosts[pid]}"
                    )
                elif not dead_marked(pid):
                    problems.append(
                        f"casualty {pid} (crash of machine "
                        f"{report.machine}) is not dead-marked anywhere"
                    )
        return problems

    def _recover(self, dead, alive, state: ProcessState) -> None:
        """Reinstate one process on the executor."""
        pid = state.pid
        # Freeze exactly as migration step 1 would: a process caught on
        # the dead CPU restarts READY; blocked waits keep their nature.
        if state.status is ProcessStatus.RUNNING:
            state.status = ProcessStatus.READY
        if state.status is ProcessStatus.IN_MIGRATION:
            # Mid-outbound-migration at the crash: restore its recorded
            # state; the (aborted) protocol record was handled above.
            state.abort_migration()
        dead.scheduler.remove(pid)
        dead_timer = dead._timers.pop(pid, None)
        if dead_timer is not None:
            dead.loop.cancel(dead_timer)
        if state.wake_deadline is not None:
            state.wake_remaining = max(
                0, state.wake_deadline - _now(self.system),
            )
            state.wake_deadline = None

        alive.memory.attach(pid, state.memory)
        alive.processes[pid] = state
        alive.forwarding.collect(pid)
        state.residence_history.append(alive.machine)
        if state.context is not None:
            state.context.rebind(alive)
        state.accounting.migrations += 1  # a recovery is a forced move
        alive._unfreeze(state)
        _tracer(self.system, alive.machine).record(
            "recover", "recovered", pid=str(pid), to=alive.machine,
        )
