"""DEMOS/MP system processes (paper Figure 2-3).

Switchboard, process manager, memory scheduler, the four-process file
system, and the command interpreter — all ordinary programs reached only
through links, and therefore all migratable.
"""

from repro.servers.command_interpreter import command_interpreter_program
from repro.servers.common import Correlator, lookup_service, rpc, serve_reply
from repro.servers.filesystem import (
    BLOCK_SIZE,
    FileClient,
    boot_file_system,
    buffer_manager_program,
    directory_manager_program,
    disk_driver_program,
    file_server_program,
)
from repro.servers.memory_scheduler import memory_scheduler_program
from repro.servers.process_manager import process_manager_program
from repro.servers.switchboard import register_service, switchboard_program

__all__ = [
    "BLOCK_SIZE",
    "Correlator",
    "FileClient",
    "boot_file_system",
    "buffer_manager_program",
    "command_interpreter_program",
    "directory_manager_program",
    "disk_driver_program",
    "file_server_program",
    "lookup_service",
    "memory_scheduler_program",
    "process_manager_program",
    "register_service",
    "rpc",
    "serve_reply",
    "switchboard_program",
]
