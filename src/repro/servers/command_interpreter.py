"""The command interpreter (§2.3): interactive access to DEMOS/MP.

Accepts ``command`` messages carrying a text line, drives the process
manager (and friends) to execute it, and replies with a text result.
Examples:

- ``run pingpong on 2 name=experiment``  — create a process
- ``migrate 2.5 3``                      — move process p2.5 to machine 3
- ``stop 2.5`` / ``start 2.5``           — suspend / resume
- ``ps``                                 — list known processes
- ``where 2.5``                          — locate a process
- ``help``
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.kernel.context import ProcessContext
from repro.kernel.ids import ProcessId
from repro.kernel.messages import Message
from repro.servers.common import serve_reply
from repro.servers.filesystem import _serial_rpc

HELP_TEXT = (
    "commands: run <program> [on <machine>] [key=value ...] | "
    "migrate <pid> <machine> | stop <pid> | start <pid> | "
    "where <pid> | ps | help"
)


def _parse_pid(token: str) -> ProcessId | None:
    """Parse 'creating.local' into a ProcessId."""
    parts = token.split(".")
    if len(parts) != 2:
        return None
    try:
        return ProcessId(int(parts[0]), int(parts[1]))
    except ValueError:
        return None


def _parse_value(text: str) -> Any:
    """Best-effort literal parsing for key=value command arguments."""
    try:
        return int(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def command_interpreter_program(
    ctx: ProcessContext,
) -> Generator[Any, Any, None]:
    """The command-interpreter server loop."""
    backlog: deque[Message] = deque()
    pm_link = ctx.bootstrap["process_manager"]

    while True:
        if backlog:
            msg = backlog.popleft()
        else:
            msg = yield ctx.receive()
        if msg.op != "command":
            # Stray replies from past interactions; drop.
            continue
        line = (msg.payload or {}).get("line", "").strip()
        tokens = line.split()
        result: dict[str, Any]

        if not tokens or tokens[0] == "help":
            result = {"ok": True, "text": HELP_TEXT}

        elif tokens[0] == "run" and len(tokens) >= 2:
            program = tokens[1]
            machine: int | None = None
            params: dict[str, Any] = {}
            name = program
            rest = tokens[2:]
            i = 0
            while i < len(rest):
                if rest[i] == "on" and i + 1 < len(rest):
                    machine = int(rest[i + 1])
                    i += 2
                elif "=" in rest[i]:
                    key, _, value = rest[i].partition("=")
                    if key == "name":
                        name = value
                    else:
                        params[key] = _parse_value(value)
                    i += 1
                else:
                    i += 1
            reply = yield from _serial_rpc(
                ctx, backlog, pm_link, "create-process",
                {"program": program, "machine": machine,
                 "params": params, "name": name},
            )
            body = reply.payload
            if body.get("ok"):
                result = {
                    "ok": True,
                    "pid": body["pid"],
                    "text": f"started {body['pid']} on machine "
                            f"{body['machine']}",
                }
            else:
                result = {"ok": False,
                          "text": f"run failed: {body.get('error')}"}

        elif tokens[0] == "migrate" and len(tokens) == 3:
            pid = _parse_pid(tokens[1])
            if pid is None:
                result = {"ok": False, "text": f"bad pid {tokens[1]!r}"}
            else:
                reply = yield from _serial_rpc(
                    ctx, backlog, pm_link, "migrate",
                    {"pid": pid, "dest": int(tokens[2])},
                )
                ok = reply.payload.get("ok", False)
                result = {
                    "ok": ok,
                    "text": (f"migration of {pid} to {tokens[2]} initiated"
                             if ok else
                             f"migrate failed: {reply.payload.get('error')}"),
                }

        elif tokens[0] in ("stop", "start") and len(tokens) == 2:
            pid = _parse_pid(tokens[1])
            if pid is None:
                result = {"ok": False, "text": f"bad pid {tokens[1]!r}"}
            else:
                reply = yield from _serial_rpc(
                    ctx, backlog, pm_link, tokens[0], {"pid": pid},
                )
                ok = reply.payload.get("ok", False)
                result = {"ok": ok,
                          "text": f"{tokens[0]} {pid}: "
                                  f"{'ok' if ok else 'failed'}"}

        elif tokens[0] == "where" and len(tokens) == 2:
            pid = _parse_pid(tokens[1])
            if pid is None:
                result = {"ok": False, "text": f"bad pid {tokens[1]!r}"}
            else:
                reply = yield from _serial_rpc(
                    ctx, backlog, pm_link, "where-is", {"pid": pid},
                )
                body = reply.payload
                if body.get("ok"):
                    result = {"ok": True, "machine": body["machine"],
                              "text": f"{pid} is on machine "
                                      f"{body['machine']}"}
                else:
                    result = {"ok": False, "text": f"{pid} not found"}

        elif tokens[0] == "ps":
            reply = yield from _serial_rpc(
                ctx, backlog, pm_link, "status", {},
            )
            processes = reply.payload.get("processes", {})
            lines = [
                f"{pid_text} {info['name']} machine={info['machine']}"
                f"{'' if info['alive'] else ' (exited)'}"
                for pid_text, info in sorted(processes.items())
            ]
            result = {"ok": True, "processes": processes,
                      "text": "\n".join(lines) or "(no known processes)"}

        else:
            result = {"ok": False, "text": f"unknown command {line!r}"}

        yield from serve_reply(
            ctx, msg, "command-reply", result,
            payload_bytes=16 + len(result.get("text", "")),
        )
