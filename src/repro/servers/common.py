"""Conventions shared by the system processes and their clients.

Requests are messages whose first enclosed link is a *reply link* — the
paper's short-lived link used exactly once to respond.  ``serve_reply``
answers on it and destroys it; ``rpc`` is the client half: create a reply
link, send, wait for the answer.

These helpers are sub-generators: call them with ``yield from`` inside a
program.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ServerError
from repro.kernel.context import ProcessContext
from repro.kernel.messages import Message
from repro.kernel.ops import OP_UNDELIVERABLE


def serve_reply(
    ctx: ProcessContext,
    request: Message,
    op: str,
    payload: Any = None,
    payload_bytes: int = 32,
    links: tuple[int, ...] = (),
) -> Generator[Any, Any, None]:
    """Answer *request* on its reply link, then destroy the reply link.

    If the request carried a ``req_id`` (the correlation convention used
    by servers that fan out sub-requests), the reply payload echoes it —
    overriding any stale ``req_id`` the payload may have picked up from a
    forwarded sub-reply.
    """
    if not request.delivered_link_ids:
        return  # fire-and-forget request; nothing to answer on
    if isinstance(payload, dict):
        request_payload = (
            request.payload if isinstance(request.payload, dict) else {}
        )
        payload = dict(payload)
        payload["req_id"] = request_payload.get("req_id")
    reply_link = request.delivered_link_ids[0]
    yield ctx.send(
        reply_link, op=op, payload=payload,
        payload_bytes=payload_bytes, links=links,
    )
    yield ctx.destroy_link(reply_link)


def rpc(
    ctx: ProcessContext,
    service_link: int,
    op: str,
    payload: Any = None,
    payload_bytes: int = 32,
    links: tuple[int, ...] = (),
    timeout: int | None = None,
) -> Generator[Any, Any, Message | None]:
    """Send a request and wait for the single reply.

    Returns the reply message (links it carried are already materialised
    as ``delivered_link_ids``), or None on timeout.  Raises
    :class:`ServerError` if the system reports the service unreachable.
    Intended for clients with no other concurrent traffic.
    """
    reply_link = yield ctx.create_link()
    yield ctx.send(
        service_link, op=op, payload=payload,
        payload_bytes=payload_bytes, links=(reply_link, *links),
    )
    message = yield ctx.receive(timeout=timeout)
    yield ctx.destroy_link(reply_link)
    if message is None:
        return None
    if message.op == OP_UNDELIVERABLE:
        raise ServerError(
            f"request {op!r} undeliverable: {message.payload}"
        )
    return message


def lookup_service(
    ctx: ProcessContext,
    name: str,
    timeout: int | None = None,
) -> Generator[Any, Any, int]:
    """Resolve *name* via the switchboard; returns a link id to it.

    The switchboard holds unknown lookups until the service registers, so
    boot races resolve themselves.
    """
    reply = yield from rpc(
        ctx, ctx.bootstrap["switchboard"], "lookup",
        payload={"name": name}, timeout=timeout,
    )
    if reply is None or not reply.payload.get("ok"):
        raise ServerError(f"switchboard lookup failed for {name!r}")
    # delivered_link_ids[0] is the service link enclosed in the reply
    return reply.delivered_link_ids[0]


class Correlator:
    """Matches asynchronous replies back to the request that caused them.

    Servers that fan out sub-requests (the file-system front end, the
    process manager) tag each with a fresh id and stash a continuation
    record here.
    """

    def __init__(self) -> None:
        self._next = 0
        self._pending: dict[int, Any] = {}

    def register(self, state: Any) -> int:
        """Stash *state*; returns the request id to tag the message with."""
        self._next += 1
        self._pending[self._next] = state
        return self._next

    def pop(self, req_id: int) -> Any:
        """Retrieve and forget the state for *req_id* (None if unknown)."""
        return self._pending.pop(req_id, None)

    def __len__(self) -> int:
        return len(self._pending)
