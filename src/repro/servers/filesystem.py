"""The DEMOS/MP file system: four cooperating server processes (§2.3).

Mirroring the DEMOS file system [Powell 77], the service is split into:

- **request interpreter** (the well-known ``file_system`` front end):
  speaks the client protocol (create/open/read/write/delete/list/stat)
  and orchestrates the other three;
- **directory manager**: file names, inodes, sizes, and block allocation;
- **buffer manager**: an LRU block cache, write-through to the disk;
- **disk driver**: the block store itself, with a seek delay per access.

"The file system is the same as that implemented for the uni-processor
DEMOS, with the added freedom that the file system processes can be
located on different processors."  All four talk only via links, so any
of them — most interestingly the front end, while clients are mid-I/O —
can be migrated (the paper's own test example, reproduced as E6).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Any, Generator

from repro.kernel.context import ProcessContext
from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import Message
from repro.servers.common import rpc, serve_reply

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System

#: Default file-system block size, bytes.
BLOCK_SIZE = 512


# =====================================================================
# Disk driver
# =====================================================================

def disk_driver_program(
    ctx: ProcessContext,
    seek_time: int = 1_500,
    block_size: int = BLOCK_SIZE,
) -> Generator[Any, Any, None]:
    """A serial block device: every access pays one seek."""
    storage: dict[int, bytes] = {}
    reads = writes = 0

    while True:
        msg = yield ctx.receive()
        payload = msg.payload or {}
        req_id = payload.get("req_id")

        if msg.op == "disk-read":
            yield ctx.sleep(seek_time)
            reads += 1
            data = storage.get(payload["block"], bytes(block_size))
            yield from serve_reply(
                ctx, msg, "disk-read-reply",
                {"ok": True, "data": data, "req_id": req_id},
                payload_bytes=8 + len(data),
            )

        elif msg.op == "disk-write":
            yield ctx.sleep(seek_time)
            writes += 1
            data: bytes = payload["data"]
            if len(data) != block_size:
                data = data[:block_size].ljust(block_size, b"\0")
            storage[payload["block"]] = data
            yield from serve_reply(
                ctx, msg, "disk-write-reply",
                {"ok": True, "req_id": req_id},
            )

        elif msg.op == "disk-stats":
            yield from serve_reply(
                ctx, msg, "disk-stats-reply",
                {"ok": True, "reads": reads, "writes": writes,
                 "blocks_used": len(storage), "req_id": req_id},
            )

        else:
            yield from serve_reply(
                ctx, msg, "error-reply",
                {"ok": False, "error": f"unknown op {msg.op!r}",
                 "req_id": req_id},
            )


# =====================================================================
# Buffer manager
# =====================================================================

def buffer_manager_program(
    ctx: ProcessContext,
    capacity: int = 64,
) -> Generator[Any, Any, None]:
    """An LRU block cache, write-through to the disk driver.

    Serial: one outstanding disk operation at a time, which keeps the
    cache trivially consistent (and models a single disk arm anyway).
    """
    cache: "OrderedDict[int, bytes]" = OrderedDict()
    backlog: deque[Message] = deque()
    hits = misses = 0
    disk_link = ctx.bootstrap["disk_driver"]

    def _touch(block: int, data: bytes) -> None:
        cache[block] = data
        cache.move_to_end(block)
        while len(cache) > capacity:
            cache.popitem(last=False)

    while True:
        if backlog:
            msg = backlog.popleft()
        else:
            msg = yield ctx.receive()
        payload = msg.payload or {}
        req_id = payload.get("req_id")

        if msg.op == "bread":
            block = payload["block"]
            if block in cache:
                hits += 1
                _touch(block, cache[block])
                yield from serve_reply(
                    ctx, msg, "bread-reply",
                    {"ok": True, "data": cache[block], "req_id": req_id},
                    payload_bytes=8 + len(cache[block]),
                )
                continue
            misses += 1
            disk_reply = yield from _serial_rpc(
                ctx, backlog, disk_link, "disk-read", {"block": block},
            )
            data = disk_reply.payload["data"]
            _touch(block, data)
            yield from serve_reply(
                ctx, msg, "bread-reply",
                {"ok": True, "data": data, "req_id": req_id},
                payload_bytes=8 + len(data),
            )

        elif msg.op == "bwrite":
            block, data = payload["block"], payload["data"]
            _touch(block, data)
            yield from _serial_rpc(
                ctx, backlog, disk_link, "disk-write",
                {"block": block, "data": data},
                payload_bytes=8 + len(data),
            )
            yield from serve_reply(
                ctx, msg, "bwrite-reply", {"ok": True, "req_id": req_id},
            )

        elif msg.op == "buffer-stats":
            yield from serve_reply(
                ctx, msg, "buffer-stats-reply",
                {"ok": True, "hits": hits, "misses": misses,
                 "cached": len(cache), "req_id": req_id},
            )

        else:
            yield from serve_reply(
                ctx, msg, "error-reply",
                {"ok": False, "error": f"unknown op {msg.op!r}",
                 "req_id": req_id},
            )


# =====================================================================
# Directory manager
# =====================================================================

def directory_manager_program(
    ctx: ProcessContext,
) -> Generator[Any, Any, None]:
    """Names, inodes, file sizes, and block allocation."""
    names: dict[str, int] = {}
    files: dict[int, dict[str, Any]] = {}  # inode -> {size, blocks, name}
    next_inode = 0
    next_block = 0

    while True:
        msg = yield ctx.receive()
        payload = msg.payload or {}
        req_id = payload.get("req_id")
        name = payload.get("name", "")

        if msg.op == "dir-create":
            if name in names:
                yield from serve_reply(
                    ctx, msg, "dir-create-reply",
                    {"ok": False, "error": "exists", "req_id": req_id},
                )
                continue
            next_inode += 1
            names[name] = next_inode
            files[next_inode] = {"size": 0, "blocks": [], "name": name}
            yield from serve_reply(
                ctx, msg, "dir-create-reply",
                {"ok": True, "inode": next_inode, "req_id": req_id},
            )

        elif msg.op == "dir-lookup":
            inode = names.get(name)
            if inode is None:
                yield from serve_reply(
                    ctx, msg, "dir-lookup-reply",
                    {"ok": False, "error": "no such file", "req_id": req_id},
                )
            else:
                meta = files[inode]
                yield from serve_reply(
                    ctx, msg, "dir-lookup-reply",
                    {"ok": True, "inode": inode, "size": meta["size"],
                     "blocks": list(meta["blocks"]), "req_id": req_id},
                )

        elif msg.op == "dir-stat":
            meta = files.get(payload.get("inode"))
            if meta is None:
                yield from serve_reply(
                    ctx, msg, "dir-stat-reply",
                    {"ok": False, "error": "bad inode", "req_id": req_id},
                )
            else:
                yield from serve_reply(
                    ctx, msg, "dir-stat-reply",
                    {"ok": True, "size": meta["size"],
                     "blocks": list(meta["blocks"]),
                     "name": meta["name"], "req_id": req_id},
                )

        elif msg.op == "dir-extend":
            # Grow a file: allocate blocks to cover new_size, update size.
            meta = files.get(payload.get("inode"))
            if meta is None:
                yield from serve_reply(
                    ctx, msg, "dir-extend-reply",
                    {"ok": False, "error": "bad inode", "req_id": req_id},
                )
                continue
            new_size = payload["size"]
            block_size = payload.get("block_size", BLOCK_SIZE)
            needed = -(-new_size // block_size)  # ceil division
            while len(meta["blocks"]) < needed:
                meta["blocks"].append(next_block)
                next_block += 1
            meta["size"] = max(meta["size"], new_size)
            yield from serve_reply(
                ctx, msg, "dir-extend-reply",
                {"ok": True, "size": meta["size"],
                 "blocks": list(meta["blocks"]), "req_id": req_id},
            )

        elif msg.op == "dir-delete":
            inode = names.pop(name, None)
            if inode is not None:
                del files[inode]
            yield from serve_reply(
                ctx, msg, "dir-delete-reply",
                {"ok": inode is not None, "req_id": req_id},
            )

        elif msg.op == "dir-list":
            yield from serve_reply(
                ctx, msg, "dir-list-reply",
                {"ok": True, "names": sorted(names), "req_id": req_id},
            )

        else:
            yield from serve_reply(
                ctx, msg, "error-reply",
                {"ok": False, "error": f"unknown op {msg.op!r}",
                 "req_id": req_id},
            )


# =====================================================================
# Request interpreter (front end)
# =====================================================================

def file_server_program(
    ctx: ProcessContext,
    block_size: int = BLOCK_SIZE,
) -> Generator[Any, Any, None]:
    """The client-facing file server.

    Serial request interpreter: each client operation runs to completion
    (its sub-requests to the directory/buffer managers may interleave with
    *arriving* client traffic, which is simply backlogged).  Migrating
    this process mid-operation is the paper's showcase test: the frozen
    generator, its backlog, and its links all travel in the process state.
    """
    backlog: deque[Message] = deque()
    handles: dict[int, int] = {}  # handle -> inode
    next_handle = 0
    operations = 0
    dir_link = ctx.bootstrap["directory_manager"]
    buf_link = ctx.bootstrap["buffer_manager"]

    while True:
        if backlog:
            msg = backlog.popleft()
        else:
            msg = yield ctx.receive()
        payload = msg.payload or {}
        operations += 1

        if msg.op == "fs-create":
            reply = yield from _serial_rpc(
                ctx, backlog, dir_link, "dir-create",
                {"name": payload["name"]},
            )
            yield from serve_reply(
                ctx, msg, "fs-create-reply", dict(reply.payload),
            )

        elif msg.op == "fs-open":
            reply = yield from _serial_rpc(
                ctx, backlog, dir_link, "dir-lookup",
                {"name": payload["name"]},
            )
            if not reply.payload["ok"]:
                yield from serve_reply(
                    ctx, msg, "fs-open-reply", dict(reply.payload),
                )
                continue
            next_handle += 1
            handles[next_handle] = reply.payload["inode"]
            yield from serve_reply(
                ctx, msg, "fs-open-reply",
                {"ok": True, "handle": next_handle,
                 "size": reply.payload["size"]},
            )

        elif msg.op == "fs-close":
            ok = handles.pop(payload.get("handle"), None) is not None
            yield from serve_reply(ctx, msg, "fs-close-reply", {"ok": ok})

        elif msg.op == "fs-read":
            yield from _fs_read(
                ctx, backlog, msg, handles, dir_link, buf_link, block_size,
            )

        elif msg.op == "fs-write":
            yield from _fs_write(
                ctx, backlog, msg, handles, dir_link, buf_link, block_size,
            )

        elif msg.op == "fs-delete":
            reply = yield from _serial_rpc(
                ctx, backlog, dir_link, "dir-delete",
                {"name": payload["name"]},
            )
            yield from serve_reply(
                ctx, msg, "fs-delete-reply", dict(reply.payload),
            )

        elif msg.op == "fs-list":
            reply = yield from _serial_rpc(
                ctx, backlog, dir_link, "dir-list", {},
            )
            yield from serve_reply(
                ctx, msg, "fs-list-reply", dict(reply.payload),
            )

        elif msg.op == "fs-stat":
            reply = yield from _serial_rpc(
                ctx, backlog, dir_link, "dir-lookup",
                {"name": payload["name"]},
            )
            yield from serve_reply(
                ctx, msg, "fs-stat-reply", dict(reply.payload),
            )

        elif msg.op == "fs-ops":
            yield from serve_reply(
                ctx, msg, "fs-ops-reply",
                {"ok": True, "operations": operations,
                 "machine": ctx.machine},
            )

        else:
            yield from serve_reply(
                ctx, msg, "error-reply",
                {"ok": False, "error": f"unknown op {msg.op!r}"},
            )


def _fs_read(
    ctx: ProcessContext,
    backlog: deque,
    msg: Message,
    handles: dict[int, int],
    dir_link: int,
    buf_link: int,
    block_size: int,
) -> Generator[Any, Any, None]:
    payload = msg.payload
    inode = handles.get(payload.get("handle"))
    if inode is None:
        yield from serve_reply(
            ctx, msg, "fs-read-reply", {"ok": False, "error": "bad handle"},
        )
        return
    stat = yield from _serial_rpc(
        ctx, backlog, dir_link, "dir-stat", {"inode": inode},
    )
    if not stat.payload["ok"]:
        yield from serve_reply(ctx, msg, "fs-read-reply", dict(stat.payload))
        return
    size, blocks = stat.payload["size"], stat.payload["blocks"]
    offset = payload.get("offset", 0)
    length = min(payload.get("length", size), max(0, size - offset))
    pieces: list[bytes] = []
    remaining, pos = length, offset
    while remaining > 0:
        index, within = divmod(pos, block_size)
        take = min(block_size - within, remaining)
        if index >= len(blocks):
            break
        bread = yield from _serial_rpc(
            ctx, backlog, buf_link, "bread", {"block": blocks[index]},
        )
        pieces.append(bread.payload["data"][within:within + take])
        remaining -= take
        pos += take
    data = b"".join(pieces)
    yield from serve_reply(
        ctx, msg, "fs-read-reply",
        {"ok": True, "data": data, "eof": offset + length >= size},
        payload_bytes=8 + len(data),
    )


def _fs_write(
    ctx: ProcessContext,
    backlog: deque,
    msg: Message,
    handles: dict[int, int],
    dir_link: int,
    buf_link: int,
    block_size: int,
) -> Generator[Any, Any, None]:
    payload = msg.payload
    inode = handles.get(payload.get("handle"))
    if inode is None:
        yield from serve_reply(
            ctx, msg, "fs-write-reply", {"ok": False, "error": "bad handle"},
        )
        return
    offset: int = payload.get("offset", 0)
    data: bytes = payload["data"]
    end = offset + len(data)
    extend = yield from _serial_rpc(
        ctx, backlog, dir_link, "dir-extend",
        {"inode": inode, "size": end, "block_size": block_size},
    )
    if not extend.payload["ok"]:
        yield from serve_reply(
            ctx, msg, "fs-write-reply", dict(extend.payload),
        )
        return
    blocks = extend.payload["blocks"]
    pos, written = offset, 0
    while written < len(data):
        index, within = divmod(pos, block_size)
        take = min(block_size - within, len(data) - written)
        chunk = data[written:written + take]
        if take == block_size:
            merged = chunk
        else:
            bread = yield from _serial_rpc(
                ctx, backlog, buf_link, "bread", {"block": blocks[index]},
            )
            old = bread.payload["data"]
            merged = old[:within] + chunk + old[within + take:]
        yield from _serial_rpc(
            ctx, backlog, buf_link, "bwrite",
            {"block": blocks[index], "data": merged},
            payload_bytes=8 + len(merged),
        )
        written += take
        pos += take
    yield from serve_reply(
        ctx, msg, "fs-write-reply", {"ok": True, "bytes": written},
    )


# =====================================================================
# Serial sub-request helper
# =====================================================================

_serial_req_counter = 0


def _serial_rpc(
    ctx: ProcessContext,
    backlog: deque,
    link: int,
    op: str,
    payload: dict,
    payload_bytes: int = 32,
) -> Generator[Any, Any, Message]:
    """Issue one sub-request and wait for *its* reply.

    Messages that arrive meanwhile (new client requests, stray replies)
    are pushed onto *backlog* for the main loop.
    """
    global _serial_req_counter
    _serial_req_counter += 1
    req_id = ("srpc", _serial_req_counter)
    reply_link = yield ctx.create_link()
    request = dict(payload)
    request["req_id"] = req_id
    yield ctx.send(
        link, op=op, payload=request, payload_bytes=payload_bytes,
        links=(reply_link,),
    )
    while True:
        msg = yield ctx.receive()
        reply_payload = msg.payload or {}
        if (
            isinstance(reply_payload, dict)
            and reply_payload.get("req_id") == req_id
        ):
            yield ctx.destroy_link(reply_link)
            return msg
        backlog.append(msg)


# =====================================================================
# Boot and client helpers
# =====================================================================

def boot_file_system(system: "System", machine: int) -> dict[str, Any]:
    """Spawn the four file-system processes on *machine*.

    Registers ``file_system`` (the front end) as a well-known service and
    records all four pids in ``system.server_pids``.  Returns the
    name -> pid mapping.
    """
    kernel = system.kernel(machine)

    disk_pid = kernel.spawn(disk_driver_program, name="disk_driver")
    disk_addr = ProcessAddress(disk_pid, machine)

    buffer_pid = kernel.spawn(
        buffer_manager_program, name="buffer_manager",
        extra_links={"disk_driver": disk_addr},
    )
    buffer_addr = ProcessAddress(buffer_pid, machine)

    dir_pid = kernel.spawn(directory_manager_program, name="directory_manager")
    dir_addr = ProcessAddress(dir_pid, machine)

    server_pid = kernel.spawn(
        file_server_program, name="file_system",
        extra_links={
            "buffer_manager": buffer_addr,
            "directory_manager": dir_addr,
        },
    )
    system.well_known["file_system"] = ProcessAddress(server_pid, machine)
    pids = {
        "disk_driver": disk_pid,
        "buffer_manager": buffer_pid,
        "directory_manager": dir_pid,
        "file_system": server_pid,
    }
    system.server_pids.update(pids)
    return pids


class FileClient:
    """Sub-generator helpers for talking to the file system.

    Use inside a program::

        fs = FileClient(ctx)
        yield from fs.create("log")
        handle = yield from fs.open("log")
        yield from fs.write(handle, 0, b"hello")
        data = yield from fs.read(handle, 0, 5)
    """

    def __init__(self, ctx: ProcessContext, link: int | None = None) -> None:
        self.ctx = ctx
        self.link = link if link is not None else ctx.bootstrap["file_system"]

    def _call(
        self, op: str, payload: dict, payload_bytes: int = 32
    ) -> Generator[Any, Any, dict]:
        reply = yield from rpc(
            self.ctx, self.link, op, payload, payload_bytes=payload_bytes,
        )
        assert reply is not None
        return reply.payload

    def create(self, name: str) -> Generator[Any, Any, dict]:
        """Create an empty file."""
        return (yield from self._call("fs-create", {"name": name}))

    def open(self, name: str) -> Generator[Any, Any, int]:
        """Open a file; returns its handle."""
        reply = yield from self._call("fs-open", {"name": name})
        if not reply.get("ok"):
            from repro.errors import FileSystemError

            raise FileSystemError(f"open {name!r}: {reply.get('error')}")
        return reply["handle"]

    def read(
        self, handle: int, offset: int, length: int
    ) -> Generator[Any, Any, bytes]:
        """Read up to *length* bytes at *offset*."""
        reply = yield from self._call(
            "fs-read", {"handle": handle, "offset": offset, "length": length},
        )
        if not reply.get("ok"):
            from repro.errors import FileSystemError

            raise FileSystemError(f"read: {reply.get('error')}")
        return reply["data"]

    def write(
        self, handle: int, offset: int, data: bytes
    ) -> Generator[Any, Any, int]:
        """Write *data* at *offset*; returns bytes written."""
        reply = yield from self._call(
            "fs-write", {"handle": handle, "offset": offset, "data": data},
            payload_bytes=8 + len(data),
        )
        if not reply.get("ok"):
            from repro.errors import FileSystemError

            raise FileSystemError(f"write: {reply.get('error')}")
        return reply["bytes"]

    def close(self, handle: int) -> Generator[Any, Any, bool]:
        """Release a handle."""
        reply = yield from self._call("fs-close", {"handle": handle})
        return bool(reply.get("ok"))

    def delete(self, name: str) -> Generator[Any, Any, bool]:
        """Remove a file."""
        reply = yield from self._call("fs-delete", {"name": name})
        return bool(reply.get("ok"))

    def list(self) -> Generator[Any, Any, list[str]]:
        """All file names."""
        reply = yield from self._call("fs-list", {})
        return reply.get("names", [])

    def stat(self, name: str) -> Generator[Any, Any, dict]:
        """Metadata for *name*."""
        return (yield from self._call("fs-stat", {"name": name}))
