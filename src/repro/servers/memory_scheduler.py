"""The memory scheduler (§2.3).

Tracks per-machine memory occupancy from reports and answers placement
queries: "which machine should a process of this size be created on?"
With no reports yet it falls back to round-robin, which is also the
uniform-load answer.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.kernel.context import ProcessContext
from repro.servers.common import serve_reply


def memory_scheduler_program(
    ctx: ProcessContext, machines: int = 0
) -> Generator[Any, Any, None]:
    """The memory-scheduler server loop.

    *machines* bounds round-robin placement; zero means "learn machine
    ids from reports only".
    """
    free_bytes: dict[int, int] = {}
    rr_next = 0

    while True:
        msg = yield ctx.receive()
        payload = msg.payload or {}

        if msg.op == "report-memory":
            free_bytes[payload["machine"]] = payload["free"]
            yield from serve_reply(
                ctx, msg, "report-memory-reply", {"ok": True},
            )

        elif msg.op == "place":
            needed = payload.get("bytes", 0)
            candidates = {
                m: free for m, free in free_bytes.items() if free >= needed
            }
            if candidates:
                machine = max(candidates, key=lambda m: (candidates[m], -m))
            elif machines > 0:
                machine = rr_next % machines
                rr_next += 1
            elif free_bytes:
                machine = max(free_bytes, key=lambda m: (free_bytes[m], -m))
            else:
                machine = 0
            yield from serve_reply(
                ctx, msg, "place-reply",
                {"ok": True, "machine": machine,
                 "req_id": payload.get("req_id")},
            )

        elif msg.op == "status":
            yield from serve_reply(
                ctx, msg, "status-reply",
                {"ok": True, "free_bytes": dict(free_bytes)},
            )

        else:
            yield from serve_reply(
                ctx, msg, "error-reply",
                {"ok": False, "error": f"unknown op {msg.op!r}"},
            )
