"""The process manager (§2.3, §3.1).

"The process and memory managers handle all the high-level scheduling
decisions for processes. ... They control processes by sending messages
to kernels to manipulate process states.  For example, although the
kernel implements the mechanisms of migrating a process, the process
manager makes the decision of when and to where to migrate a process."

This server:

- creates processes by name (asking the memory scheduler for placement
  when the requester does not care which machine);
- keeps a registry of where every process it knows about lives, updated
  by kernel notifications — including a DELIVERTOKERNEL control link per
  process, so stop/start/migrate directives follow the process around;
- answers ``where-is`` queries from kernels, which is what makes the
  return-to-sender ablation (§4) workable at all;
- accepts load reports, the raw material for migration decision rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.kernel.context import ProcessContext
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.ops import (
    OP_MIGRATE_PROCESS,
    OP_SPAWN,
    OP_SPAWN_REPLY,
    OP_START_PROCESS,
    OP_STOP_PROCESS,
    OP_WHERE_IS_REPLY,
)
from repro.servers.common import serve_reply


@dataclass
class _KnownProcess:
    """What the process manager remembers about one process."""

    pid: ProcessId
    machine: int
    name: str = ""
    control_link: int | None = None  #: DELIVERTOKERNEL link id, if held
    alive: bool = True


@dataclass
class _CreateRequest:
    """An in-flight create-process request."""

    client_reply: int | None
    program: str
    params: dict
    name: str
    machine: int | None = None
    placement_link: int | None = None
    client_req_id: Any = None


def process_manager_program(ctx: ProcessContext) -> Generator[Any, Any, None]:
    """The process-manager server loop."""
    registry: dict[ProcessId, _KnownProcess] = {}
    loads: dict[int, dict] = {}
    pending: dict[int, _CreateRequest] = {}
    next_req = 0

    def _fresh_control_link(msg: Any, known: _KnownProcess) -> None:
        """Adopt a control link enclosed with a notification."""
        if msg.delivered_link_ids:
            known.control_link = msg.delivered_link_ids[0]

    while True:
        msg = yield ctx.receive()
        op = msg.op
        payload = msg.payload or {}

        # ---------------- process creation -----------------------------
        if op == "create-process":
            next_req += 1
            req_id = next_req
            request = _CreateRequest(
                client_reply=(msg.delivered_link_ids[0]
                              if msg.delivered_link_ids else None),
                program=payload["program"],
                params=payload.get("params") or {},
                name=payload.get("name", payload["program"]),
                machine=payload.get("machine"),
                client_req_id=payload.get("req_id"),
            )
            pending[req_id] = request
            if request.machine is None:
                placement_reply = yield ctx.create_link()
                request.placement_link = placement_reply
                yield ctx.send(
                    ctx.bootstrap["memory_scheduler"], op="place",
                    payload={"bytes": payload.get("bytes", 8_192),
                             "req_id": req_id},
                    links=(placement_reply,),
                )
            else:
                yield from _ask_kernel_to_spawn(ctx, request, req_id)

        elif op == "place-reply":
            req_id = payload.get("req_id")
            request = pending.get(req_id)
            if request is None:
                continue
            request.machine = payload["machine"]
            if request.placement_link is not None:
                yield ctx.destroy_link(request.placement_link)
                request.placement_link = None
            yield from _ask_kernel_to_spawn(ctx, request, req_id)

        elif op == OP_SPAWN_REPLY:
            req_id = payload.get("req_id")
            request = pending.pop(req_id, None)
            if request is None:
                continue
            if payload.get("ok"):
                pid: ProcessId = payload["pid"]
                known = _KnownProcess(
                    pid, payload["machine"], request.name,
                )
                _fresh_control_link(msg, known)
                registry[pid] = known
            if request.client_reply is not None:
                yield ctx.send(
                    request.client_reply, op="create-process-reply",
                    payload={
                        "ok": payload.get("ok", False),
                        "pid": payload.get("pid"),
                        "machine": payload.get("machine"),
                        "error": payload.get("error"),
                        "req_id": request.client_req_id,
                    },
                )
                yield ctx.destroy_link(request.client_reply)

        # ---------------- control operations ---------------------------
        elif op in ("migrate", "stop", "start"):
            pid = payload["pid"]
            known = registry.get(pid)
            ok = (
                known is not None
                and known.alive
                and known.control_link is not None
            )
            if ok:
                assert known is not None and known.control_link is not None
                control_op = {
                    "migrate": OP_MIGRATE_PROCESS,
                    "stop": OP_STOP_PROCESS,
                    "start": OP_START_PROCESS,
                }[op]
                control_payload = (
                    {"dest": payload["dest"]} if op == "migrate" else {}
                )
                yield ctx.send(
                    known.control_link, op=control_op,
                    payload=control_payload, payload_bytes=8,
                    deliver_to_kernel=True,
                )
                if op == "migrate":
                    # Optimistically track; the "migrated" notification
                    # (with a fresh control link) confirms.
                    known.machine = payload["dest"]
            yield from serve_reply(
                ctx, msg, f"{op}-reply",
                {"ok": ok, "pid": pid,
                 "error": None if ok else "unknown process"},
            )

        # ---------------- kernel notifications -------------------------
        elif op == "process-created":
            pid = payload["pid"]
            known = registry.get(pid) or _KnownProcess(
                pid, payload["machine"], payload.get("name", ""),
            )
            known.machine = payload["machine"]
            _fresh_control_link(msg, known)
            registry[pid] = known

        elif op == "migrated":
            pid = payload["pid"]
            known = registry.get(pid) or _KnownProcess(pid, payload["to"])
            known.machine = payload["to"]
            _fresh_control_link(msg, known)
            registry[pid] = known

        elif op == "process-exited":
            known = registry.get(payload["pid"])
            if known is not None:
                known.alive = False

        elif op == "report-load":
            loads[payload["machine"]] = payload

        # ---------------- queries --------------------------------------
        elif op == "where-is":
            pid = payload["pid"]
            known = registry.get(pid)
            machine = (
                known.machine if known is not None and known.alive else None
            )
            reply_machine = payload.get("reply_machine")
            kernel_link = ctx.bootstrap.get(f"kernel:{reply_machine}")
            if kernel_link is not None:
                yield ctx.send(
                    kernel_link, op=OP_WHERE_IS_REPLY,
                    payload={"pid": pid, "machine": machine},
                    payload_bytes=8,
                )
            elif msg.delivered_link_ids:
                yield from serve_reply(
                    ctx, msg, "where-is-reply-user",
                    {"ok": machine is not None, "pid": pid,
                     "machine": machine},
                )

        elif op == "status":
            yield from serve_reply(
                ctx, msg, "status-reply",
                {
                    "ok": True,
                    "processes": {
                        str(k.pid): {"machine": k.machine, "name": k.name,
                                     "alive": k.alive}
                        for k in registry.values()
                    },
                    "loads": dict(loads),
                },
                payload_bytes=64,
            )

        else:
            yield from serve_reply(
                ctx, msg, "error-reply",
                {"ok": False, "error": f"unknown op {op!r}"},
            )


def _ask_kernel_to_spawn(
    ctx: ProcessContext, request: _CreateRequest, req_id: int
) -> Generator[Any, Any, None]:
    """Forward a create request to the chosen machine's kernel."""
    machine = request.machine if request.machine is not None else 0
    kernel_link = ctx.bootstrap[f"kernel:{machine}"]
    yield ctx.send(
        kernel_link, op=OP_SPAWN,
        payload={
            "program": request.program,
            "params": request.params,
            "name": request.name,
            "reply_to": ProcessAddress(ctx.pid, ctx.machine),
            "req_id": req_id,
        },
        payload_bytes=24,
    )
