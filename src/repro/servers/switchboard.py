"""The switchboard: "a server that distributes links by name" (§2.3).

Services register a link to themselves under a name; any process can then
look the name up and receive a duplicate of that link.  Lookups for names
not yet registered are parked and answered the moment the registration
arrives, which makes boot ordering a non-issue.

Because the registered links live in the switchboard's own link table,
they are context independent: a service may migrate and the stored link
keeps working (stale copies get patched by the link-update mechanism as
they are used).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.kernel.context import ProcessContext
from repro.servers.common import serve_reply


def switchboard_program(ctx: ProcessContext) -> Generator[Any, Any, None]:
    """The switchboard server loop."""
    registry: dict[str, int] = {}  # name -> link id in my table
    parked: dict[str, list[int]] = {}  # name -> waiting reply link ids

    while True:
        msg = yield ctx.receive()
        op = msg.op
        payload = msg.payload or {}
        name = payload.get("name", "")

        if op == "register":
            # links: (reply, service)
            if len(msg.delivered_link_ids) < 2:
                yield from serve_reply(
                    ctx, msg, "register-reply",
                    {"ok": False, "error": "no service link enclosed"},
                )
                continue
            service_link = msg.delivered_link_ids[1]
            replaced = name in registry
            if replaced:
                yield ctx.destroy_link(registry[name])
            registry[name] = service_link
            yield from serve_reply(
                ctx, msg, "register-reply",
                {"ok": True, "replaced": replaced},
            )
            for reply_link in parked.pop(name, []):
                yield ctx.send(
                    reply_link, op="lookup-reply",
                    payload={"ok": True, "name": name},
                    links=(service_link,),
                )
                yield ctx.destroy_link(reply_link)

        elif op == "lookup":
            if name in registry:
                yield from serve_reply(
                    ctx, msg, "lookup-reply",
                    {"ok": True, "name": name},
                    links=(registry[name],),
                )
            elif payload.get("wait", True) and msg.delivered_link_ids:
                parked.setdefault(name, []).append(
                    msg.delivered_link_ids[0]
                )
            else:
                yield from serve_reply(
                    ctx, msg, "lookup-reply",
                    {"ok": False, "name": name, "error": "unknown name"},
                )

        elif op == "unregister":
            link_id = registry.pop(name, None)
            if link_id is not None:
                yield ctx.destroy_link(link_id)
            yield from serve_reply(
                ctx, msg, "unregister-reply",
                {"ok": link_id is not None, "name": name},
            )

        elif op == "list":
            yield from serve_reply(
                ctx, msg, "list-reply",
                {"ok": True, "names": sorted(registry)},
            )

        else:
            yield from serve_reply(
                ctx, msg, "error-reply",
                {"ok": False, "error": f"unknown op {op!r}"},
            )


def register_service(
    ctx: ProcessContext, name: str
) -> Generator[Any, Any, int]:
    """Sub-generator: create a link to myself and register it as *name*.

    Returns the local id of the service link (keep it; destroying it does
    not unregister the copy the switchboard holds).
    """
    service_link = yield ctx.create_link()
    reply_link = yield ctx.create_link()
    yield ctx.send(
        ctx.bootstrap["switchboard"], op="register",
        payload={"name": name}, links=(reply_link, service_link),
    )
    ack = yield ctx.receive()
    yield ctx.destroy_link(reply_link)
    if not (ack.op == "register-reply" and ack.payload.get("ok")):
        from repro.errors import SwitchboardError

        raise SwitchboardError(f"registration of {name!r} failed: {ack!r}")
    return service_link
