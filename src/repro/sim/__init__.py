"""Deterministic discrete-event simulation substrate.

This package is the "hardware" of the reproduction: an integer-microsecond
clock, an event loop with FIFO tie-breaking, named random streams, and a
structured tracer.  Everything above it (network, kernels, servers) is
driven purely by events scheduled here.
"""

from repro.sim.clock import (
    MSEC,
    SEC,
    USEC,
    SimClock,
    format_time,
    msec,
    sec,
    usec,
)
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.loop import EventLoop
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "MSEC",
    "SEC",
    "USEC",
    "EventLoop",
    "EventQueue",
    "RandomStreams",
    "ScheduledEvent",
    "SimClock",
    "TraceRecord",
    "Tracer",
    "format_time",
    "msec",
    "sec",
    "usec",
]
