"""Conservative time-window barriers for sharded execution.

The sharded engine (:mod:`repro.sim.shard`) partitions the machine set
into shards, each with its own :class:`~repro.sim.loop.EventLoop`.  The
machines only interact through the network, and every wire has a
non-zero latency, so a packet put on a wire at time ``t`` cannot affect
any machine before ``t + L`` where ``L`` is the smallest wire latency in
the topology.  That is the classic conservative-PDES lookahead argument:
all events in the half-open window ``[s, s + L)`` are causally
independent across shards and safe to execute in parallel.

Two rules make the result not merely *equivalent* but *byte-identical*
for every shard count (the repo's determinism gate diffs ``shards=1``
against ``shards=4``):

- **Every** inter-machine hop — including hops whose source and
  destination land in the same shard — is converted into a
  :class:`HopRecord` and injected at a barrier, never scheduled
  directly.  Records pending at a barrier are sorted by the canonical
  key ``(arrival, src, dst, wire_seq)`` before injection, so the
  relative ``(time, seq)`` order of deliveries on any one machine's
  loop is a function of the simulation state alone, not of how machines
  were grouped into shards.
- The window length is the minimum latency over **all** wires, not the
  minimum over wires that happen to cross a shard boundary.  A
  boundary-crossing minimum would be a function of the partition (and
  undefined at ``shards=1``); the global minimum is never larger, so it
  is still a sound lookahead, and it makes the window grid — and hence
  which records share a barrier — identical for every shard count.

Windows are aligned to a fixed grid (``[k*L, (k+1)*L)``), and globally
empty windows are skipped: a barrier where no shard has work injects
nothing and assigns no event sequence numbers, so fast-forwarding over
it cannot perturb later ordering.

Two runners share the schedule: :class:`SerialBarrierRunner` drives all
shards in one process (the reference executor, also used for
``shards=1``), and :class:`WorkerBarrier` drives a single shard inside
a forked worker, exchanging records with its peers over pairwise pipes.
Both compute the same global next-event time each round, so they follow
exactly the same window sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING, Any, Iterable, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection


@dataclass(frozen=True, slots=True)
class HopRecord:
    """One packet hop travelling along one wire, barrier-to-barrier.

    ``wire_seq`` is a per-directed-wire monotone counter owned by the
    wire's source shard; together with ``(arrival, src, dst)`` it gives
    every record pending at a barrier a total order that does not
    depend on the shard layout.
    """

    arrival: int  #: simulated time the hop completes at ``dst``
    src: int  #: machine the hop leaves from
    dst: int  #: machine the hop arrives at (next hop, not final dest)
    wire_seq: int  #: per-wire transmit counter (duplicates get their own)
    packet: Any  #: the in-flight :class:`~repro.net.packet.Packet`


#: Canonical barrier injection order (see module docstring).
RECORD_KEY = attrgetter("arrival", "src", "dst", "wire_seq")


def sort_records(records: Iterable[HopRecord]) -> list[HopRecord]:
    """Records in canonical injection order."""
    return sorted(records, key=RECORD_KEY)


def window_end(time: int, lookahead: int) -> int:
    """End of the grid-aligned window containing *time*."""
    return (time // lookahead + 1) * lookahead


class ShardPeer(Protocol):
    """What a barrier runner needs from one shard's runtime."""

    def next_event_time(self) -> int | None:
        """Earliest pending event on this shard's loop, or None."""
        ...  # pragma: no cover

    def run_window(self, deadline: int) -> None:
        """Execute all events with ``time <= deadline``."""
        ...  # pragma: no cover

    def advance_to(self, time: int) -> None:
        """Move the clock to *time* (no events there by contract)."""
        ...  # pragma: no cover

    def drain_outboxes(self) -> dict[int, list[HopRecord]]:
        """Take (and clear) pending records, keyed by dest shard."""
        ...  # pragma: no cover

    def inject(self, records: list[HopRecord]) -> None:
        """Schedule canonically ordered *records* on this shard's loop."""
        ...  # pragma: no cover


def _next_time(*candidates: int | None) -> int | None:
    """Minimum of the non-None candidates (None when all are None)."""
    live = [c for c in candidates if c is not None]
    return min(live) if live else None


class SerialBarrierRunner:
    """Drive every shard in one process on the shared window schedule.

    This is both the ``shards=1`` executor and the reference semantics
    the forked executor must match: the two runners make identical
    window decisions because they compute the same global next-event
    time from the same inputs each round.
    """

    def __init__(self, peers: list[ShardPeer], lookahead: int) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.peers = peers
        self.lookahead = lookahead
        #: windows executed (diagnostics; identical for any shard count)
        self.windows = 0
        #: hop records exchanged at barriers (diagnostics)
        self.records_exchanged = 0

    def run(self, horizon: int | None = None) -> None:
        """Execute windows until quiescence (or the *horizon* clock)."""
        peers = self.peers
        lookahead = self.lookahead
        while True:
            self._exchange_all()
            nxt = _next_time(*(p.next_event_time() for p in peers))
            if nxt is None or (horizon is not None and nxt > horizon):
                break
            end = window_end(nxt, lookahead)
            deadline = end - 1 if horizon is None else min(end - 1, horizon)
            for peer in peers:
                peer.run_window(deadline)
            self.windows += 1
            if horizon is not None and deadline >= horizon:
                self._exchange_all()
                break
        if horizon is not None:
            for peer in peers:
                peer.advance_to(horizon)

    def _exchange_all(self) -> None:
        """Move every pending record to its destination shard, in
        canonical order per destination."""
        by_dest: dict[int, list[HopRecord]] = {}
        for peer in self.peers:
            for dest, records in peer.drain_outboxes().items():
                by_dest.setdefault(dest, []).extend(records)
        for dest, records in by_dest.items():
            self.records_exchanged += len(records)
            self.peers[dest].inject(sort_records(records))


class WorkerBarrier:
    """Drive one shard inside a worker process on the shared schedule.

    Each barrier round is a pairwise exchange with every peer worker:
    worker *i* sends ``(records bound for j, i's next event time, the
    earliest arrival among everything i is sending this round)`` and
    receives the same triple from *j*.  The third element lets every
    worker compute the same global next-event time even for records
    exchanged between two *other* workers, without an extra round trip.

    Pipes are used in index order (lower index sends first), so the
    rendezvous pattern is deterministic and deadlock-free for the small
    worker counts the engine targets.
    """

    def __init__(
        self,
        index: int,
        peer_conns: dict[int, "Connection"],
        lookahead: int,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.index = index
        self.peer_conns = peer_conns
        self.lookahead = lookahead
        self.windows = 0
        self.records_exchanged = 0

    def _exchange(self, peer: ShardPeer) -> int | None:
        """One barrier round; injects inbound records and returns the
        global next-event time (None == global quiescence)."""
        outboxes = peer.drain_outboxes()
        head = peer.next_event_time()
        min_out = _next_time(
            *(
                record.arrival
                for records in outboxes.values()
                for record in records
            )
        )
        inbound: list[HopRecord] = list(outboxes.pop(self.index, ()))
        nxt = _next_time(head, min_out)
        for j in sorted(self.peer_conns):
            conn = self.peer_conns[j]
            message = (outboxes.pop(j, []), head, min_out)
            if self.index < j:
                conn.send(message)
                their_records, their_head, their_min_out = conn.recv()
            else:
                their_records, their_head, their_min_out = conn.recv()
                conn.send(message)
            inbound.extend(their_records)
            nxt = _next_time(nxt, their_head, their_min_out)
        if outboxes:
            leftover = sorted(outboxes)
            raise RuntimeError(
                f"shard {self.index} produced records for unknown "
                f"shards {leftover}"
            )
        if inbound:
            self.records_exchanged += len(inbound)
            peer.inject(sort_records(inbound))
        return nxt

    def run(self, peer: ShardPeer, horizon: int | None = None) -> None:
        """Execute windows until global quiescence (or *horizon*)."""
        lookahead = self.lookahead
        while True:
            nxt = self._exchange(peer)
            if nxt is None or (horizon is not None and nxt > horizon):
                break
            end = window_end(nxt, lookahead)
            deadline = end - 1 if horizon is None else min(end - 1, horizon)
            peer.run_window(deadline)
            self.windows += 1
            if horizon is not None and deadline >= horizon:
                self._exchange(peer)
                break
        if horizon is not None:
            peer.advance_to(horizon)
