"""Conservative time-window barriers for sharded execution.

The sharded engine (:mod:`repro.sim.shard`) partitions the machine set
into shards, each with its own :class:`~repro.sim.loop.EventLoop`.  The
machines only interact through the network, and every wire has a
non-zero latency, so a packet put on a wire at time ``t`` cannot affect
any machine before ``t + L`` where ``L`` is the smallest wire latency in
the topology.  That is the classic conservative-PDES lookahead argument:
all events in the half-open window ``[s, s + L)`` are causally
independent across shards and safe to execute in parallel.

Two rules make the result not merely *equivalent* but *byte-identical*
for every shard count (the repo's determinism gate diffs ``shards=1``
against ``shards=4``):

- **Every** inter-machine hop — including hops whose source and
  destination land in the same shard — is converted into a
  :class:`HopRecord` and injected at a barrier, never scheduled
  directly.  Records pending at a barrier are sorted by the canonical
  key ``(arrival, src, dst, wire_seq)`` before injection, so the
  relative ``(time, seq)`` order of deliveries on any one machine's
  loop is a function of the simulation state alone, not of how machines
  were grouped into shards.
- The window length is the minimum latency over **all** wires, not the
  minimum over wires that happen to cross a shard boundary.  A
  boundary-crossing minimum would be a function of the partition (and
  undefined at ``shards=1``); the global minimum is never larger, so it
  is still a sound lookahead, and it makes the window grid — and hence
  which records share a barrier — identical for every shard count.

Windows are aligned to a fixed grid (``[k*L, (k+1)*L)``), and globally
empty windows are skipped: a barrier where no shard has work injects
nothing and assigns no event sequence numbers, so fast-forwarding over
it cannot perturb later ordering.

Two runners share the schedule: :class:`SerialBarrierRunner` drives all
shards in one process (the reference executor, also used for
``shards=1``), and :class:`WorkerBarrier` drives a single shard inside
a forked worker, exchanging records with its peers over pairwise pipes.
Both compute the same global next-event time each round, so they follow
exactly the same window sequence.

**Barrier elision** (``SystemConfig.barrier_elision``) decouples the
injection grid from the communication cadence.  The grid — which
window a record belongs to, and hence its tie-break slot — stays the
global minimum wire latency, but it is carried *in the record* (the
``gen`` tag) and enforced by the keyed event loop
(:class:`~repro.sim.loop.KeyedEventLoop`), not by injection timing.
That frees the runners to exchange each shard *pair* only every
``period(i, j)`` ticks, where the period is the largest grid multiple
not exceeding the minimum latency over wires crossing that pair: a
record produced after one rendezvous cannot arrive before the next, so
handing it over at the next rendezvous is still conservatively early.
Pairs with no connecting wire never rendezvous at all during the
horizon phase (hops traverse physical wires, so no record can be
addressed to a wireless pair); the drain phase keeps all-pairs rounds
— global quiescence is not locally detectable on a sparse exchange
graph — but strides each round by the shard's minimum incident pair
period (:func:`drain_step`).

**Run-ahead** makes the rendezvous schedule event-driven instead of
purely periodic.  At each meeting the two sides exchange, alongside
their records, their next pending event time and the earliest
rendezvous of any *other* incident pair; from those both compute the
same *activity bound* — the earliest instant either shard can possibly
execute anything new (its own head, a record just injected, or an
injection by a third shard, whose records never arrive before the
meeting that delivers them).  Any record produced by an event at
``p >= act`` arrives at ``>= p + period``, so the pair's next meeting
is pushed out to ``min(act_i, act_j) + period`` snapped down to the
period grid: every grid window in between runs back-to-back with no
barrier touch.  A pair with no wake source at all *parks* (meets again
only when re-armed).  Two clamps keep the meeting-before-arrival
invariant when new work appears from outside the simulation: entering
``run()`` re-arms every pair to its first period multiple after the
resumed clock (driver code may have scheduled anything), and firing a
barrier action re-arms every pair to its first period multiple after
the action tick (the action may have scheduled events or emitted
records).  Extra meetings are always safe; late ones never happen.

:class:`ElidedSerialRunner` and :class:`ElidedWorkerBarrier` implement
the schedule; both count their synchronisation traffic in
:class:`SyncStats` (rounds, records, bytes).  Byte counts are
*executor-exact*: every cross-shard record is pickled once, at
production time (:func:`pack_record` — the producing shard's state at
that instant is identical under every executor), and rendezvous frames
carry those per-record blobs, so the serial runner counts the very
bytes a forked worker ships.  A payload that cannot pickle (a live
process generator mid-migration) is *captured*: the frame carries a
:class:`CapturedPayload` stand-in with deterministic bytes while the
live record object rides the serial runners' in-process injection
untouched — so live-generator migration works on both serial engines;
only the forked executor, which must rehydrate from the blob, refuses
it.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from heapq import merge as _heapq_merge
from operator import attrgetter
from typing import TYPE_CHECKING, Any, Iterable, Protocol

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection


@dataclass(frozen=True, slots=True)
class HopRecord:
    """One packet hop travelling along one wire, barrier-to-barrier.

    ``wire_seq`` is a per-directed-wire monotone counter owned by the
    wire's source shard; together with ``(arrival, src, dst)`` it gives
    every record pending at a barrier a total order that does not
    depend on the shard layout.  ``gen`` is the grid window the hop was
    *produced* in — the slot the keyed event loop files it under, so a
    record can be injected at any barrier without moving in the order.
    """

    arrival: int  #: simulated time the hop completes at ``dst``
    src: int  #: machine the hop leaves from
    dst: int  #: machine the hop arrives at (next hop, not final dest)
    wire_seq: int  #: per-wire transmit counter (duplicates get their own)
    packet: Any  #: the in-flight :class:`~repro.net.packet.Packet`
    gen: int = 0  #: grid window of production (barrier-elision key)

    def __getstate__(self) -> tuple:
        """Positional wire state: every record blob repeats this class,
        so field-name dict keys would be pure overhead on the pipe."""
        return (
            self.arrival, self.src, self.dst, self.wire_seq,
            self.packet, self.gen,
        )

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)


#: Canonical barrier injection order (see module docstring).
RECORD_KEY = attrgetter("arrival", "src", "dst", "wire_seq")

#: Pipes carry pre-pickled blobs (one per peer per round) so each
#: rendezvous is a single send/recv syscall pair and its size is
#: countable; the protocol is pinned so byte counts are deterministic
#: across interpreter versions.
WIRE_PICKLE_PROTOCOL = min(pickle.HIGHEST_PROTOCOL, 5)


def pack_blob(payload: Any) -> bytes:
    """Pickle one barrier message into the blob the pipe carries."""
    return pickle.dumps(payload, WIRE_PICKLE_PROTOCOL)


@dataclass(frozen=True, slots=True)
class CapturedPayload:
    """Wire stand-in for a packet that cannot pickle (capture envelope).

    A live process generator mid-migration has no byte form, but its
    hop record still needs a deterministic wire frame: the record's
    blob carries this pure-data surrogate instead (same declared sizes,
    so byte accounting stays executor-independent), while the live
    record object itself is what the serial runners inject.  A forked
    worker that rehydrates one of these refuses the run — there is no
    live object on its side of the pipe to fall back to.
    """

    kind: str  #: class name of the packet that could not pickle
    size_bytes: int  #: the packet's declared wire size


#: lazily built identity-stable objects every record blob references —
#: the classes and enum members of the wire vocabulary.  Packing each
#: record standalone loses the memo sharing a whole-outbox pickle gets,
#: so these are replaced by short persistent-id tokens instead of
#: repeating ``module.QualName`` boilerplate in every blob.
_WIRE_ATOMS: tuple[Any, ...] = ()
_WIRE_ATOM_TOKENS: dict[int, int] = {}


def _wire_atom_tokens() -> dict[int, int]:
    global _WIRE_ATOMS, _WIRE_ATOM_TOKENS
    if not _WIRE_ATOMS:
        from repro.kernel.ids import ProcessAddress, ProcessId
        from repro.kernel.links import (
            DataArea,
            Link,
            LinkAttribute,
            LinkSnapshot,
        )
        from repro.kernel.messages import Message, MessageKind
        from repro.net.packet import Packet, PacketKind

        _WIRE_ATOMS = (
            HopRecord, CapturedPayload,
            Packet, PacketKind, *PacketKind,
            Message, MessageKind, *MessageKind,
            ProcessId, ProcessAddress,
            LinkSnapshot, LinkAttribute, *LinkAttribute,
            DataArea, Link,
        )
        _WIRE_ATOM_TOKENS = {
            id(atom): token for token, atom in enumerate(_WIRE_ATOMS)
        }
    return _WIRE_ATOM_TOKENS


class _RecordPickler(pickle.Pickler):
    """Record pickler with the wire vocabulary tokenised."""

    def persistent_id(self, obj: Any) -> int | None:
        return _wire_atom_tokens().get(id(obj))


class _RecordUnpickler(pickle.Unpickler):
    """Inverse of :class:`_RecordPickler`."""

    def persistent_load(self, pid: int) -> Any:
        _wire_atom_tokens()
        return _WIRE_ATOMS[pid]


def unpack_record(blob: bytes) -> HopRecord:
    """One record back from its :func:`pack_record` wire blob."""
    return _RecordUnpickler(io.BytesIO(blob)).load()


def pack_record(record: HopRecord) -> bytes:
    """One cross-shard record's wire blob, packed at production time.

    Packing at the production instant — not at the rendezvous — is
    what makes byte counts executor-exact: the producing shard's
    object graph at that instant is identical whether it runs in the
    shared serial process or in a forked worker, whereas by rendezvous
    time a serial peer may have mutated shared state a worker could
    never see.  Payloads that cannot pickle are captured (see
    :class:`CapturedPayload`).
    """
    try:
        return _pack_record_blob(record)
    except Exception:
        packet = record.packet
        surrogate = HopRecord(
            record.arrival,
            record.src,
            record.dst,
            record.wire_seq,
            CapturedPayload(
                type(packet).__name__,
                getattr(packet, "size_bytes", 0),
            ),
            record.gen,
        )
        return _pack_record_blob(surrogate)


def _pack_record_blob(record: HopRecord) -> bytes:
    buffer = io.BytesIO()
    _RecordPickler(buffer, WIRE_PICKLE_PROTOCOL).dump(record)
    return buffer.getvalue()


def record_entry_key(entry: "tuple[HopRecord, bytes]"):
    """Canonical order for the ``(record, blob)`` outbox entries the
    elided engine keeps (the blob tags along, the record decides)."""
    return RECORD_KEY(entry[0])


def merge_sorted_records(
    lists: Iterable[list[HopRecord]],
) -> list[HopRecord]:
    """Merge per-source pre-sorted record lists into canonical order.

    Every list is already sorted by :data:`RECORD_KEY` (outboxes are
    sorted when drained) and the key is globally unique, so a k-way
    merge produces exactly what re-sorting the concatenation would —
    without the O(n log n) comparison bill at every barrier.
    """
    return list(_heapq_merge(*lists, key=RECORD_KEY))


def sort_records(records: Iterable[HopRecord]) -> list[HopRecord]:
    """Records in canonical injection order."""
    return sorted(records, key=RECORD_KEY)


def window_end(time: int, lookahead: int) -> int:
    """End of the grid-aligned window containing *time*."""
    return (time // lookahead + 1) * lookahead


@dataclass(frozen=True, slots=True)
class BarrierAction:
    """One global action pinned to a barrier on the window grid.

    ``key`` is pure data (kind string + machine ids) and totally orders
    same-tick actions the way :data:`RECORD_KEY` orders hop records:
    the firing order is a function of the schedule alone, never of the
    shard layout or of registration order.
    """

    at: int  #: fire time; must be a multiple of the window grid
    key: tuple  #: pure-data tie-break among same-tick actions
    callback: Any
    args: tuple


class BarrierActionQueue:
    """Pending global actions for a sharded run (fail-stop crashes).

    A crash mutates state on several shards at once, so it cannot be a
    loop event — it fires *between* windows, at a barrier where every
    shard has finished all events strictly before the action time.
    Restricting action times to the window grid makes that barrier
    exist by construction: windows are grid-aligned half-open
    intervals, so no window ever straddles a grid point.
    """

    def __init__(self, lookahead: int) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.lookahead = lookahead
        self._pending: list[BarrierAction] = []
        self.fired = 0

    def add(self, at: int, key: tuple, callback: Any, *args: Any) -> None:
        """Register *callback* to fire at the barrier at time *at*."""
        if at < 0 or at % self.lookahead:
            raise ValueError(
                f"barrier action at t={at} is not aligned to the "
                f"{self.lookahead}us window grid (a mid-window global "
                f"action has no barrier to fire at)"
            )
        self._pending.append(BarrierAction(at, key, callback, args))

    def pending(self) -> int:
        """Actions registered but not yet fired."""
        return len(self._pending)

    def next_time(self) -> int | None:
        """Earliest pending action time, or None."""
        if not self._pending:
            return None
        return min(action.at for action in self._pending)

    def take_due(self, at: int) -> list[BarrierAction]:
        """Pop every action scheduled for *at*, in key order."""
        due = [a for a in self._pending if a.at == at]
        self._pending = [a for a in self._pending if a.at != at]
        due.sort(key=lambda a: a.key)
        self.fired += len(due)
        return due


class SyncStats:
    """Synchronisation-overhead counters for one shard.

    Everything here is deterministic — rounds and record counts follow
    the (deterministic) schedule, and byte counts measure the pickled
    blobs with a pinned protocol — so benchmarks gate these numbers
    exactly, per artifact.  They are *not* part of the shard-count
    parity set: a ``shards=1`` run has no peers and therefore no
    synchronisation traffic at all.
    """

    __slots__ = (
        "rounds",
        "records_sent",
        "records_received",
        "bytes_sent",
        "bytes_received",
        "windows_elided",
    )

    def __init__(self) -> None:
        self.rounds = 0  #: pairwise exchanges this shard took part in
        self.records_sent = 0
        self.records_received = 0
        self.bytes_sent = 0  #: pickled blob bytes shipped to peers
        self.bytes_received = 0
        #: grid windows crossed between rendezvous without a barrier
        self.windows_elided = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (benchmark artifacts)."""
        return {name: getattr(self, name) for name in self.__slots__}


def drain_step(
    pair_periods: dict[tuple[int, int], int], shard: int, lookahead: int
) -> int:
    """How far *shard* may run past a drain exchange's global floor.

    After an all-pairs exchange every worker knows the global
    next-event time ``nxt`` and holds every already-produced record;
    any *new* cross-shard influence originates at an event >= ``nxt``
    and must traverse a wire crossing one of the shard's incident
    pairs, so it cannot arrive before ``nxt + period(pair)``.  The
    minimum incident period is therefore a sound per-round stride —
    the drain-phase analogue of the rendezvous cadence (a shard with
    no incident pairs keeps the classic one-window stride; it receives
    nothing either way).
    """
    incident = [
        period
        for (i, j), period in pair_periods.items()
        if shard in (i, j)
    ]
    return min(incident, default=lookahead)


def rendezvous_schedule(
    pair_periods: dict[tuple[int, int], int], horizon: int
) -> list[tuple[int, int, int]]:
    """Every ``(time, i, j)`` rendezvous up to *horizon*, globally sorted.

    The *static* cadence: pair ``(i, j)`` meets at every multiple of
    its period.  Run-ahead (the dynamic schedule the runners actually
    walk) only ever *skips* meetings from this set forward along the
    period grid, so this is its upper bound — benchmarks compare the
    two to measure rounds saved.  The sorted order is the processing
    order on every worker: each worker walks its own pairs' events in
    this order, and because the globally least unprocessed rendezvous
    is the least *local* rendezvous of both its participants, some
    pair can always meet — no deadlock (the same argument covers the
    dynamic schedule: both members of a pair agree on its next meeting
    time, so the total ``(t, i, j)`` order is still shared).
    """
    events = [
        (t, i, j)
        for (i, j), period in pair_periods.items()
        for t in range(period, horizon + 1, period)
    ]
    events.sort()
    return events


def first_multiple_after(period: int, time: int) -> int:
    """Smallest multiple of *period* strictly after *time*."""
    return (time // period + 1) * period


def agree_next_meeting(
    t: int, period: int, act_a: int | None, act_b: int | None
) -> int | None:
    """The next rendezvous both sides of a pair commit to at meeting *t*.

    ``act_*`` is one side's earliest possible future activity: its next
    pending event, the earliest arrival this meeting just injected into
    it, or the soonest rendezvous of any *other* incident pair — third
    shards only influence it at meetings, and a record is always
    delivered at or before its arrival time, so nothing woken by that
    meeting runs earlier than the meeting itself.  Any record produced
    by an event at ``p >= act`` arrives at ``>= p + period``, so the
    partner may run unsynchronised through ``min(act) + period - 1``;
    the next meeting is that ceiling snapped *down* to the period grid
    (meetings stay on the grid so ``windows_elided`` accounting and the
    re-arm clamps compose), never earlier than ``t + period``.  Both
    sides with no wake source at all park the pair (``None``): each is
    provably idle until a ``run()`` re-entry or barrier action re-arms
    every pair.
    """
    act = _next_time(act_a, act_b)
    if act is None:
        return None
    aligned = (act + period) // period * period
    return max(aligned, t + period)


class ShardPeer(Protocol):
    """What a barrier runner needs from one shard's runtime."""

    def next_event_time(self) -> int | None:
        """Earliest pending event on this shard's loop, or None."""
        ...  # pragma: no cover

    def run_window(self, deadline: int) -> None:
        """Execute all events with ``time <= deadline``."""
        ...  # pragma: no cover

    def advance_to(self, time: int) -> None:
        """Move the clock to *time* (no events there by contract)."""
        ...  # pragma: no cover

    def freeze_at(self, time: int) -> None:
        """Pin the clock at *time* without executing events there.

        Used before firing barrier actions: every event strictly before
        *time* has run, and events *at* *time* must still be pending —
        a barrier action fires before the window that contains it.
        """
        ...  # pragma: no cover

    def drain_outboxes(self) -> dict[int, list]:
        """Take (and clear) pending records, keyed by dest shard.

        Each list comes back pre-sorted in canonical order, so barriers
        merge instead of re-sorting (see :func:`merge_sorted_records`).
        Classic runners see plain :class:`HopRecord` lists; the elided
        runners see ``(record, blob)`` entries — the blob packed at
        production time by :func:`pack_record`.
        """
        ...  # pragma: no cover

    def take_outbox(self, dest: int) -> list:
        """Take (and clear) pending records for one destination shard,
        pre-sorted — the pairwise-rendezvous flavour of
        :meth:`drain_outboxes` (same per-engine entry shape)."""
        ...  # pragma: no cover

    def inject(self, records: list[HopRecord]) -> None:
        """Schedule canonically ordered *records* on this shard's loop."""
        ...  # pragma: no cover


def _next_time(*candidates: int | None) -> int | None:
    """Minimum of the non-None candidates (None when all are None)."""
    live = [c for c in candidates if c is not None]
    return min(live) if live else None


class SerialBarrierRunner:
    """Drive every shard in one process on the shared window schedule.

    This is both the ``shards=1`` executor and the reference semantics
    the forked executor must match: the two runners make identical
    window decisions because they compute the same global next-event
    time from the same inputs each round.
    """

    def __init__(
        self,
        peers: list[ShardPeer],
        lookahead: int,
        actions: BarrierActionQueue | None = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.peers = peers
        self.lookahead = lookahead
        #: global (cross-shard) actions fired between windows
        self.actions = actions
        #: windows executed (diagnostics; identical for any shard count)
        self.windows = 0
        #: hop records exchanged at barriers (diagnostics)
        self.records_exchanged = 0

    def run(self, horizon: int | None = None) -> None:
        """Execute windows until quiescence (or the *horizon* clock)."""
        peers = self.peers
        lookahead = self.lookahead
        while True:
            self._exchange_all()
            nxt = _next_time(*(p.next_event_time() for p in peers))
            if self._fire_actions(nxt, horizon):
                # Actions may schedule events and emit records; rerun
                # the exchange and recompute the global next time.
                continue
            if nxt is None or (horizon is not None and nxt > horizon):
                break
            end = window_end(nxt, lookahead)
            deadline = end - 1 if horizon is None else min(end - 1, horizon)
            for peer in peers:
                peer.run_window(deadline)
            self.windows += 1
            if horizon is not None and deadline >= horizon:
                self._exchange_all()
                break
        if horizon is not None:
            for peer in peers:
                peer.advance_to(horizon)

    def _fire_actions(self, nxt: int | None, horizon: int | None) -> bool:
        """Fire barrier actions due before the next window, if any.

        An action at grid time T fires once every event strictly before
        T has executed (``nxt`` has climbed to T or beyond, or global
        quiescence).  Windows are grid-aligned, so no window straddles
        T: events at T are still pending when the action fires — the
        same "crash runs first at its tick" semantics the classic
        engine gets from scheduling the crash callback at install time.
        """
        queue = self.actions
        if queue is None:
            return False
        at = queue.next_time()
        if at is None:
            return False
        if horizon is not None and at > horizon:
            return False
        if nxt is not None and nxt < at:
            return False
        for peer in self.peers:
            peer.freeze_at(at)
        for action in queue.take_due(at):
            action.callback(*action.args)
        return True

    def _exchange_all(self) -> None:
        """Move every pending record to its destination shard, merging
        the per-source pre-sorted lists into canonical order."""
        by_dest: dict[int, list[list[HopRecord]]] = {}
        for peer in self.peers:
            for dest, records in peer.drain_outboxes().items():
                if records:
                    by_dest.setdefault(dest, []).append(records)
        for dest, lists in by_dest.items():
            merged = merge_sorted_records(lists)
            self.records_exchanged += len(merged)
            self.peers[dest].inject(merged)


class WorkerBarrier:
    """Drive one shard inside a worker process on the shared schedule.

    Each barrier round is a pairwise exchange with every peer worker:
    worker *i* sends ``(records bound for j, i's next event time, the
    earliest arrival among everything i is sending this round)`` and
    receives the same triple from *j*.  The third element lets every
    worker compute the same global next-event time even for records
    exchanged between two *other* workers, without an extra round trip.

    Pipes are used in index order (lower index sends first), so the
    rendezvous pattern is deterministic and deadlock-free for the small
    worker counts the engine targets.  Each message travels as one
    pre-pickled blob (:func:`pack_blob`) rather than per-object
    ``Connection.send`` calls, and its size feeds :class:`SyncStats`.
    """

    def __init__(
        self,
        index: int,
        peer_conns: dict[int, "Connection"],
        lookahead: int,
        sync: SyncStats | None = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.index = index
        self.peer_conns = peer_conns
        self.lookahead = lookahead
        self.sync = sync if sync is not None else SyncStats()
        self.windows = 0
        self.records_exchanged = 0

    def _exchange(self, peer: ShardPeer) -> int | None:
        """One barrier round; injects inbound records and returns the
        global next-event time (None == global quiescence)."""
        sync = self.sync
        outboxes = peer.drain_outboxes()
        head = peer.next_event_time()
        min_out = _next_time(
            *(
                record.arrival
                for records in outboxes.values()
                for record in records
            )
        )
        inbound: list[list[HopRecord]] = []
        own = outboxes.pop(self.index, None)
        if own:
            inbound.append(own)
        nxt = _next_time(head, min_out)
        for j in sorted(self.peer_conns):
            conn = self.peer_conns[j]
            sending = outboxes.pop(j, [])
            blob = pack_blob((sending, head, min_out))
            if self.index < j:
                conn.send_bytes(blob)
                data = conn.recv_bytes()
            else:
                data = conn.recv_bytes()
                conn.send_bytes(blob)
            their_records, their_head, their_min_out = pickle.loads(data)
            sync.rounds += 1
            sync.bytes_sent += len(blob)
            sync.bytes_received += len(data)
            sync.records_sent += len(sending)
            sync.records_received += len(their_records)
            if their_records:
                inbound.append(their_records)
            nxt = _next_time(nxt, their_head, their_min_out)
        if outboxes:
            leftover = sorted(outboxes)
            raise RuntimeError(
                f"shard {self.index} produced records for unknown "
                f"shards {leftover}"
            )
        if inbound:
            merged = merge_sorted_records(inbound)
            self.records_exchanged += len(merged)
            peer.inject(merged)
        return nxt

    def run(self, peer: ShardPeer, horizon: int | None = None) -> None:
        """Execute windows until global quiescence (or *horizon*)."""
        lookahead = self.lookahead
        while True:
            nxt = self._exchange(peer)
            if nxt is None or (horizon is not None and nxt > horizon):
                break
            end = window_end(nxt, lookahead)
            deadline = end - 1 if horizon is None else min(end - 1, horizon)
            peer.run_window(deadline)
            self.windows += 1
            if horizon is not None and deadline >= horizon:
                self._exchange(peer)
                break
        if horizon is not None:
            peer.advance_to(horizon)


class ElidedSerialRunner:
    """All shards in one process on the run-ahead rendezvous schedule.

    The horizon phase walks a dynamic meeting heap: only wire-connected
    shard pairs ever exchange, each meeting agrees on the pair's next
    one (:func:`agree_next_meeting`), and every shard free-runs through
    the whole safe range between its rendezvous — the keyed event loop
    makes injection timing irrelevant to ordering, so there is no
    per-window lockstep.  Barrier actions are supported: every shard is
    driven to the action tick, frozen, the due actions fire in key
    order, and all pairs re-arm to their first period multiple after
    the tick (whatever the action did starts there, so its influence
    cannot arrive before tick + period).  The drain phase — quiescence
    is a *global* property, undetectable on a sparse exchange graph —
    keeps all-pairs rounds but strides them by each shard's
    :func:`drain_step`.

    Per-shard :class:`SyncStats` are filled the way the forked workers
    fill theirs: the same meeting agreements (computed from exchanged
    data both executors see identically, so ``rounds``, record counts
    and ``windows_elided`` are executor-exact) and byte counts measured
    on the same frames — per-record blobs packed at production time
    (:func:`pack_record`) wrapped in the same rendezvous frame a worker
    ships, so ``bytes_*`` are executor-exact too.  Records themselves
    are injected as the original live objects (this process shares one
    address space), which is what lets live-generator migration run
    under elision: the unpicklable payload is captured in the frame
    (:class:`CapturedPayload`) but never rehydrated here.
    """

    def __init__(
        self,
        peers: list[ShardPeer],
        lookahead: int,
        pair_periods: dict[tuple[int, int], int],
        syncs: list[SyncStats] | None = None,
        actions: BarrierActionQueue | None = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.peers = peers
        self.lookahead = lookahead
        self.pair_periods = dict(pair_periods)
        self.syncs = (
            syncs if syncs is not None else [SyncStats() for _ in peers]
        )
        #: global (cross-shard) actions fired between meetings
        self.actions = actions
        self.windows = 0  #: drain-phase windows (diagnostics)
        self.records_exchanged = 0
        #: last rendezvous time completed per pair — persisted across
        #: ``run`` calls so a resumed horizon never replays a meeting
        self._last_met = dict.fromkeys(self.pair_periods, 0)
        #: the dynamic schedule: each pair's agreed next meeting time
        #: (None == parked); persisted across ``run`` calls and clamped
        #: at every re-entry
        self._next_meet: dict[tuple[int, int], int | None] = {}
        #: clock every shard has been advanced to by completed runs
        self._completed_through = 0
        self._drain_steps = [
            drain_step(pair_periods, s, lookahead)
            for s in range(len(peers))
        ]

    def run(self, horizon: int | None = None) -> None:
        """Rendezvous schedule up to *horizon*; strided drain without."""
        if horizon is None:
            self._drain()
            return
        peers = self.peers
        next_meet = self._next_meet
        base = self._completed_through
        # Re-arm clamp: driver code may have scheduled events at >= base
        # between runs, so every pair must look again within one period.
        for pair, period in self.pair_periods.items():
            clamp = first_multiple_after(period, base)
            agreed = next_meet.get(pair)
            next_meet[pair] = (
                clamp if agreed is None else min(agreed, clamp)
            )
        heap = [
            (t, i, j)
            for (i, j), t in next_meet.items()
            if t is not None and t <= horizon
        ]
        heapify(heap)
        # Tick each shard has already executed through (run_until is
        # inclusive, so a rendezvous at t needs execution through t-1).
        frontier = [base] * len(peers)
        while True:
            at = self._next_action_time(horizon)
            bound = horizon if at is None else at
            while heap and heap[0][0] <= bound:
                t, i, j = heappop(heap)
                if t != next_meet[(i, j)]:
                    continue  # superseded by a re-arm clamp
                self._meet(t, i, j, frontier, heap, horizon)
            if at is None:
                break
            for s, peer in enumerate(peers):
                if at - 1 > frontier[s]:
                    peer.run_window(at - 1)
                    frontier[s] = at - 1
            for peer in peers:
                peer.freeze_at(at)
            for action in self.actions.take_due(at):
                action.callback(*action.args)
            # Whatever the action scheduled or emitted starts at `at`,
            # so its influence cannot arrive before `at + period`:
            # clamping every pair to its first period multiple after
            # `at` restores meeting-before-arrival.  Extra meetings are
            # always safe.
            for pair, period in self.pair_periods.items():
                clamp = first_multiple_after(period, at)
                agreed = next_meet[pair]
                if agreed is None or clamp < agreed:
                    next_meet[pair] = clamp
                    if clamp <= horizon:
                        heappush(heap, (clamp, *pair))
        for s, peer in enumerate(peers):
            if horizon > frontier[s]:
                peer.run_window(horizon)
            peer.advance_to(horizon)
        self._completed_through = horizon

    def _next_action_time(self, horizon: int) -> int | None:
        queue = self.actions
        if queue is None:
            return None
        at = queue.next_time()
        if at is None or at > horizon:
            return None
        return at

    def _other_pair_bound(
        self, shard: int, exclude: tuple[int, int]
    ) -> int | None:
        """Earliest *other* rendezvous of *shard* — the soonest any
        third shard can inject new work into it (records injected at a
        meeting never have arrivals before the meeting time)."""
        times = [
            t
            for pair, t in self._next_meet.items()
            if pair != exclude and shard in pair and t is not None
        ]
        return min(times) if times else None

    def _meet(
        self,
        t: int,
        i: int,
        j: int,
        frontier: list[int],
        heap: list[tuple[int, int, int]],
        horizon: int,
    ) -> None:
        """One rendezvous of pair ``(i, j)`` at time *t*: run both
        sides to ``t - 1``, exchange, and agree on the next meeting."""
        peers = self.peers
        syncs = self.syncs
        pair = (i, j)
        last = self._last_met[pair]
        if t <= last:
            raise SimulationError(
                f"rendezvous replay: pair {pair} met at {last}, "
                f"scheduled again at {t}"
            )
        for s in (i, j):
            if t - 1 > frontier[s]:
                peers[s].run_window(t - 1)
                frontier[s] = t - 1
        out_ij = peers[i].take_outbox(j)
        out_ji = peers[j].take_outbox(i)
        head_i = peers[i].next_event_time()
        head_j = peers[j].next_event_time()
        bound_i = self._other_pair_bound(i, pair)
        bound_j = self._other_pair_bound(j, pair)
        frame_ij = pack_blob(
            ([blob for _, blob in out_ij], head_i, bound_i)
        )
        frame_ji = pack_blob(
            ([blob for _, blob in out_ji], head_j, bound_j)
        )
        skipped = (t - last) // self.lookahead - 1
        for here, sent, received, frame_out, frame_in in (
            (i, out_ij, out_ji, frame_ij, frame_ji),
            (j, out_ji, out_ij, frame_ji, frame_ij),
        ):
            sync = syncs[here]
            sync.rounds += 1
            sync.bytes_sent += len(frame_out)
            sync.bytes_received += len(frame_in)
            sync.records_sent += len(sent)
            sync.records_received += len(received)
            if skipped > 0:
                sync.windows_elided += skipped
        self._last_met[pair] = t
        records_ij = [record for record, _ in out_ij]
        records_ji = [record for record, _ in out_ji]
        self.records_exchanged += len(records_ij) + len(records_ji)
        if records_ij:
            peers[j].inject(records_ij)
        if records_ji:
            peers[i].inject(records_ji)
        act_i = _next_time(
            head_i, bound_i, *(r.arrival for r in records_ji)
        )
        act_j = _next_time(
            head_j, bound_j, *(r.arrival for r in records_ij)
        )
        nxt = agree_next_meeting(
            t, self.pair_periods[pair], act_i, act_j
        )
        self._next_meet[pair] = nxt
        if nxt is not None and nxt <= horizon:
            heappush(heap, (nxt, i, j))

    def _drain(self) -> None:
        """All-pairs rounds to global quiescence, strided per shard.

        Mirrors what every :class:`ElidedWorkerBarrier` does in its
        drain phase — the same rounds, frames and per-shard strides —
        so serial and forked executions report identical sync
        schedules and byte counts.  Barrier actions registered past the
        horizon fire here, between rounds, exactly as the classic
        runner fires them.
        """
        peers = self.peers
        syncs = self.syncs
        count = len(peers)
        lookahead = self.lookahead
        queue = self.actions
        while True:
            outs = [peer.drain_outboxes() for peer in peers]
            heads = [peer.next_event_time() for peer in peers]
            min_outs = [
                _next_time(
                    *(
                        record.arrival
                        for entries in out.values()
                        for record, _ in entries
                    )
                )
                for out in outs
            ]
            inbound: list[list[list[HopRecord]]] = [[] for _ in peers]
            for s in range(count):
                own = outs[s].pop(s, None)
                if own:
                    inbound[s].append([record for record, _ in own])
            for i in range(count):
                for j in range(i + 1, count):
                    sent_ij = outs[i].pop(j, [])
                    sent_ji = outs[j].pop(i, [])
                    frame_ij = pack_blob((
                        [blob for _, blob in sent_ij],
                        heads[i],
                        min_outs[i],
                    ))
                    frame_ji = pack_blob((
                        [blob for _, blob in sent_ji],
                        heads[j],
                        min_outs[j],
                    ))
                    syncs[i].rounds += 1
                    syncs[j].rounds += 1
                    syncs[i].bytes_sent += len(frame_ij)
                    syncs[i].bytes_received += len(frame_ji)
                    syncs[j].bytes_sent += len(frame_ji)
                    syncs[j].bytes_received += len(frame_ij)
                    syncs[i].records_sent += len(sent_ij)
                    syncs[i].records_received += len(sent_ji)
                    syncs[j].records_sent += len(sent_ji)
                    syncs[j].records_received += len(sent_ij)
                    if sent_ij:
                        inbound[j].append(
                            [record for record, _ in sent_ij]
                        )
                    if sent_ji:
                        inbound[i].append(
                            [record for record, _ in sent_ji]
                        )
            for s in range(count):
                if outs[s]:
                    leftover = sorted(outs[s])
                    raise RuntimeError(
                        f"shard {s} produced records for unknown "
                        f"shards {leftover}"
                    )
                if inbound[s]:
                    merged = merge_sorted_records(inbound[s])
                    self.records_exchanged += len(merged)
                    peers[s].inject(merged)
            nxt = _next_time(*heads, *min_outs)
            at = queue.next_time() if queue is not None else None
            if at is not None and (nxt is None or nxt >= at):
                for peer in peers:
                    peer.freeze_at(at)
                for action in queue.take_due(at):
                    action.callback(*action.args)
                continue
            if nxt is None:
                break
            # Per-shard stride: nothing new can cross into shard s
            # before nxt + its minimum incident pair period, so each
            # round covers period/lookahead grid windows, not one —
            # clamped under a pending action, which must fire before
            # any shard executes events at its tick.
            floor = window_end(nxt, lookahead) - 1
            for s, peer in enumerate(peers):
                deadline = floor + self._drain_steps[s] - lookahead
                if at is not None:
                    deadline = min(deadline, at - 1)
                peer.run_window(deadline)
            self.windows += 1


class ElidedWorkerBarrier(WorkerBarrier):
    """One forked shard on the run-ahead rendezvous schedule.

    The horizon phase walks this worker's slice of the dynamic meeting
    heap: only wire-connected pairs, each meeting agreeing on the
    pair's next one from data both sides exchange, so every worker
    computes the identical schedule the serial runner does — and the
    worker touches its pipes *only* at meetings (a dead peer therefore
    surfaces at the next rendezvous, not at a per-window barrier).  The
    drain phase keeps the all-pairs exchange but strides each round by
    this shard's :func:`drain_step`.  All-pairs pipes still exist —
    unconnected pairs stay silent until the drain.

    Inbound records are rehydrated from the per-record blobs in the
    frame; a :class:`CapturedPayload` surrogate (a live object that
    could not pickle) cannot cross a process boundary, so meeting one
    aborts the worker with a pointer at the serial executors.
    """

    def __init__(
        self,
        index: int,
        peer_conns: dict[int, "Connection"],
        lookahead: int,
        pair_periods: dict[tuple[int, int], int],
        sync: SyncStats | None = None,
    ) -> None:
        super().__init__(index, peer_conns, lookahead, sync=sync)
        #: only this worker's incident pairs — its slice of the schedule
        self.pair_periods = {
            pair: period
            for pair, period in pair_periods.items()
            if index in pair
        }
        self._last_met = dict.fromkeys(self.pair_periods, 0)
        self._next_meet: dict[tuple[int, int], int | None] = {}
        self._completed_through = 0
        self._drain_step = drain_step(
            self.pair_periods, index, lookahead
        )

    def _rehydrate(self, blob: bytes, sender: int) -> HopRecord:
        """One inbound record from its production-time blob."""
        record = unpack_record(blob)
        if isinstance(record.packet, CapturedPayload):
            raise SimulationError(
                f"shard {self.index} received a captured "
                f"{record.packet.kind} payload from shard {sender}: a "
                "live cross-shard payload (e.g. a migrating process "
                "generator) cannot cross a fork boundary — run this "
                "scenario on a serial executor"
            )
        return record

    def _other_pair_bound(self, exclude: tuple[int, int]) -> int | None:
        """Earliest *other* rendezvous of this worker (see
        :meth:`ElidedSerialRunner._other_pair_bound`)."""
        times = [
            t
            for pair, t in self._next_meet.items()
            if pair != exclude and t is not None
        ]
        return min(times) if times else None

    def _exchange_elided(self, peer: ShardPeer) -> int | None:
        """One all-pairs drain round over ``(record, blob)`` outboxes;
        same frames (and counted bytes) as the serial drain."""
        sync = self.sync
        outboxes = peer.drain_outboxes()
        head = peer.next_event_time()
        min_out = _next_time(
            *(
                record.arrival
                for entries in outboxes.values()
                for record, _ in entries
            )
        )
        inbound: list[list[HopRecord]] = []
        own = outboxes.pop(self.index, None)
        if own:
            inbound.append([record for record, _ in own])
        nxt = _next_time(head, min_out)
        for j in sorted(self.peer_conns):
            conn = self.peer_conns[j]
            sending = outboxes.pop(j, [])
            frame = pack_blob(
                ([blob for _, blob in sending], head, min_out)
            )
            if self.index < j:
                conn.send_bytes(frame)
                data = conn.recv_bytes()
            else:
                data = conn.recv_bytes()
                conn.send_bytes(frame)
            their_blobs, their_head, their_min_out = pickle.loads(data)
            their_records = [
                self._rehydrate(blob, j) for blob in their_blobs
            ]
            sync.rounds += 1
            sync.bytes_sent += len(frame)
            sync.bytes_received += len(data)
            sync.records_sent += len(sending)
            sync.records_received += len(their_records)
            if their_records:
                inbound.append(their_records)
            nxt = _next_time(nxt, their_head, their_min_out)
        if outboxes:
            leftover = sorted(outboxes)
            raise RuntimeError(
                f"shard {self.index} produced records for unknown "
                f"shards {leftover}"
            )
        if inbound:
            merged = merge_sorted_records(inbound)
            self.records_exchanged += len(merged)
            peer.inject(merged)
        return nxt

    def _drain(self, peer: ShardPeer) -> None:
        """All-pairs rounds to quiescence, striding at this shard's
        minimum incident pair period per round (see
        :func:`drain_step`) instead of one grid window."""
        lookahead = self.lookahead
        while True:
            nxt = self._exchange_elided(peer)
            if nxt is None:
                break
            floor = window_end(nxt, lookahead) - 1
            peer.run_window(floor + self._drain_step - lookahead)
            self.windows += 1

    def run(self, peer: ShardPeer, horizon: int | None = None) -> None:
        if horizon is None:
            self._drain(peer)
            return
        sync = self.sync
        index = self.index
        next_meet = self._next_meet
        base = self._completed_through
        # Re-arm clamp at every run() entry — identical to the serial
        # runner's, so both executors rebuild the same meeting heap.
        for pair, period in self.pair_periods.items():
            clamp = first_multiple_after(period, base)
            agreed = next_meet.get(pair)
            next_meet[pair] = (
                clamp if agreed is None else min(agreed, clamp)
            )
        heap = [
            (t, i, j)
            for (i, j), t in next_meet.items()
            if t is not None and t <= horizon
        ]
        heapify(heap)
        frontier = base
        while heap:
            t, i, j = heappop(heap)
            if t != next_meet[(i, j)]:
                continue  # superseded by a re-arm clamp
            pair = (i, j)
            last = self._last_met[pair]
            if t <= last:
                raise SimulationError(
                    f"rendezvous replay: pair {pair} met at {last}, "
                    f"scheduled again at {t}"
                )
            if t - 1 > frontier:
                peer.run_window(t - 1)
                frontier = t - 1
            other = j if index == i else i
            conn = self.peer_conns[other]
            out = peer.take_outbox(other)
            head = peer.next_event_time()
            bound = self._other_pair_bound(pair)
            frame = pack_blob(
                ([blob for _, blob in out], head, bound)
            )
            if index < other:
                conn.send_bytes(frame)
                data = conn.recv_bytes()
            else:
                data = conn.recv_bytes()
                conn.send_bytes(frame)
            their_blobs, their_head, their_bound = pickle.loads(data)
            inbound = [
                self._rehydrate(blob, other) for blob in their_blobs
            ]
            sync.rounds += 1
            sync.bytes_sent += len(frame)
            sync.bytes_received += len(data)
            sync.records_sent += len(out)
            sync.records_received += len(inbound)
            skipped = (t - last) // self.lookahead - 1
            if skipped > 0:
                sync.windows_elided += skipped
            self._last_met[pair] = t
            if inbound:
                self.records_exchanged += len(inbound)
                peer.inject(inbound)
            act_mine = _next_time(
                head, bound, *(r.arrival for r in inbound)
            )
            act_theirs = _next_time(
                their_head,
                their_bound,
                *(record.arrival for record, _ in out),
            )
            nxt = agree_next_meeting(
                t, self.pair_periods[pair], act_mine, act_theirs
            )
            next_meet[pair] = nxt
            if nxt is not None and nxt <= horizon:
                heappush(heap, (nxt, i, j))
        if horizon > frontier:
            peer.run_window(horizon)
        peer.advance_to(horizon)
        self._completed_through = horizon
