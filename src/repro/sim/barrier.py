"""Conservative time-window barriers for sharded execution.

The sharded engine (:mod:`repro.sim.shard`) partitions the machine set
into shards, each with its own :class:`~repro.sim.loop.EventLoop`.  The
machines only interact through the network, and every wire has a
non-zero latency, so a packet put on a wire at time ``t`` cannot affect
any machine before ``t + L`` where ``L`` is the smallest wire latency in
the topology.  That is the classic conservative-PDES lookahead argument:
all events in the half-open window ``[s, s + L)`` are causally
independent across shards and safe to execute in parallel.

Two rules make the result not merely *equivalent* but *byte-identical*
for every shard count (the repo's determinism gate diffs ``shards=1``
against ``shards=4``):

- **Every** inter-machine hop — including hops whose source and
  destination land in the same shard — is converted into a
  :class:`HopRecord` and injected at a barrier, never scheduled
  directly.  Records pending at a barrier are sorted by the canonical
  key ``(arrival, src, dst, wire_seq)`` before injection, so the
  relative ``(time, seq)`` order of deliveries on any one machine's
  loop is a function of the simulation state alone, not of how machines
  were grouped into shards.
- The window length is the minimum latency over **all** wires, not the
  minimum over wires that happen to cross a shard boundary.  A
  boundary-crossing minimum would be a function of the partition (and
  undefined at ``shards=1``); the global minimum is never larger, so it
  is still a sound lookahead, and it makes the window grid — and hence
  which records share a barrier — identical for every shard count.

Windows are aligned to a fixed grid (``[k*L, (k+1)*L)``), and globally
empty windows are skipped: a barrier where no shard has work injects
nothing and assigns no event sequence numbers, so fast-forwarding over
it cannot perturb later ordering.

Two runners share the schedule: :class:`SerialBarrierRunner` drives all
shards in one process (the reference executor, also used for
``shards=1``), and :class:`WorkerBarrier` drives a single shard inside
a forked worker, exchanging records with its peers over pairwise pipes.
Both compute the same global next-event time each round, so they follow
exactly the same window sequence.

**Barrier elision** (``SystemConfig.barrier_elision``) decouples the
injection grid from the communication cadence.  The grid — which
window a record belongs to, and hence its tie-break slot — stays the
global minimum wire latency, but it is carried *in the record* (the
``gen`` tag) and enforced by the keyed event loop
(:class:`~repro.sim.loop.KeyedEventLoop`), not by injection timing.
That frees the runners to exchange each shard *pair* only every
``period(i, j)`` ticks, where the period is the largest grid multiple
not exceeding the minimum latency over wires crossing that pair: a
record produced after one rendezvous cannot arrive before the next, so
handing it over at the next rendezvous is still conservatively early.
Pairs with no connecting wire never rendezvous at all during the
horizon phase (hops traverse physical wires, so no record can be
addressed to a wireless pair); the drain phase keeps all-pairs rounds
— global quiescence is not locally detectable on a sparse exchange
graph — but strides each round by the shard's minimum incident pair
period (:func:`drain_step`).  :class:`ElidedSerialRunner` and
:class:`ElidedWorkerBarrier` implement the schedule; both count their
synchronisation traffic in :class:`SyncStats` (rounds, records, bytes
— the bytes of the same pickled blobs the fork transport ships).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from heapq import merge as _heapq_merge
from operator import attrgetter
from typing import TYPE_CHECKING, Any, Iterable, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection


@dataclass(frozen=True, slots=True)
class HopRecord:
    """One packet hop travelling along one wire, barrier-to-barrier.

    ``wire_seq`` is a per-directed-wire monotone counter owned by the
    wire's source shard; together with ``(arrival, src, dst)`` it gives
    every record pending at a barrier a total order that does not
    depend on the shard layout.  ``gen`` is the grid window the hop was
    *produced* in — the slot the keyed event loop files it under, so a
    record can be injected at any barrier without moving in the order.
    """

    arrival: int  #: simulated time the hop completes at ``dst``
    src: int  #: machine the hop leaves from
    dst: int  #: machine the hop arrives at (next hop, not final dest)
    wire_seq: int  #: per-wire transmit counter (duplicates get their own)
    packet: Any  #: the in-flight :class:`~repro.net.packet.Packet`
    gen: int = 0  #: grid window of production (barrier-elision key)


#: Canonical barrier injection order (see module docstring).
RECORD_KEY = attrgetter("arrival", "src", "dst", "wire_seq")

#: Pipes carry pre-pickled blobs (one per peer per round) so each
#: rendezvous is a single send/recv syscall pair and its size is
#: countable; the protocol is pinned so byte counts are deterministic
#: across interpreter versions.
WIRE_PICKLE_PROTOCOL = min(pickle.HIGHEST_PROTOCOL, 5)


def pack_blob(payload: Any) -> bytes:
    """Pickle one barrier message into the blob the pipe carries."""
    return pickle.dumps(payload, WIRE_PICKLE_PROTOCOL)


def merge_sorted_records(
    lists: Iterable[list[HopRecord]],
) -> list[HopRecord]:
    """Merge per-source pre-sorted record lists into canonical order.

    Every list is already sorted by :data:`RECORD_KEY` (outboxes are
    sorted when drained) and the key is globally unique, so a k-way
    merge produces exactly what re-sorting the concatenation would —
    without the O(n log n) comparison bill at every barrier.
    """
    return list(_heapq_merge(*lists, key=RECORD_KEY))


def sort_records(records: Iterable[HopRecord]) -> list[HopRecord]:
    """Records in canonical injection order."""
    return sorted(records, key=RECORD_KEY)


def window_end(time: int, lookahead: int) -> int:
    """End of the grid-aligned window containing *time*."""
    return (time // lookahead + 1) * lookahead


@dataclass(frozen=True, slots=True)
class BarrierAction:
    """One global action pinned to a barrier on the window grid.

    ``key`` is pure data (kind string + machine ids) and totally orders
    same-tick actions the way :data:`RECORD_KEY` orders hop records:
    the firing order is a function of the schedule alone, never of the
    shard layout or of registration order.
    """

    at: int  #: fire time; must be a multiple of the window grid
    key: tuple  #: pure-data tie-break among same-tick actions
    callback: Any
    args: tuple


class BarrierActionQueue:
    """Pending global actions for a sharded run (fail-stop crashes).

    A crash mutates state on several shards at once, so it cannot be a
    loop event — it fires *between* windows, at a barrier where every
    shard has finished all events strictly before the action time.
    Restricting action times to the window grid makes that barrier
    exist by construction: windows are grid-aligned half-open
    intervals, so no window ever straddles a grid point.
    """

    def __init__(self, lookahead: int) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.lookahead = lookahead
        self._pending: list[BarrierAction] = []
        self.fired = 0

    def add(self, at: int, key: tuple, callback: Any, *args: Any) -> None:
        """Register *callback* to fire at the barrier at time *at*."""
        if at < 0 or at % self.lookahead:
            raise ValueError(
                f"barrier action at t={at} is not aligned to the "
                f"{self.lookahead}us window grid (a mid-window global "
                f"action has no barrier to fire at)"
            )
        self._pending.append(BarrierAction(at, key, callback, args))

    def pending(self) -> int:
        """Actions registered but not yet fired."""
        return len(self._pending)

    def next_time(self) -> int | None:
        """Earliest pending action time, or None."""
        if not self._pending:
            return None
        return min(action.at for action in self._pending)

    def take_due(self, at: int) -> list[BarrierAction]:
        """Pop every action scheduled for *at*, in key order."""
        due = [a for a in self._pending if a.at == at]
        self._pending = [a for a in self._pending if a.at != at]
        due.sort(key=lambda a: a.key)
        self.fired += len(due)
        return due


class SyncStats:
    """Synchronisation-overhead counters for one shard.

    Everything here is deterministic — rounds and record counts follow
    the (deterministic) schedule, and byte counts measure the pickled
    blobs with a pinned protocol — so benchmarks gate these numbers
    exactly, per artifact.  They are *not* part of the shard-count
    parity set: a ``shards=1`` run has no peers and therefore no
    synchronisation traffic at all.
    """

    __slots__ = (
        "rounds",
        "records_sent",
        "records_received",
        "bytes_sent",
        "bytes_received",
        "windows_elided",
    )

    def __init__(self) -> None:
        self.rounds = 0  #: pairwise exchanges this shard took part in
        self.records_sent = 0
        self.records_received = 0
        self.bytes_sent = 0  #: pickled blob bytes shipped to peers
        self.bytes_received = 0
        #: grid windows crossed between rendezvous without a barrier
        self.windows_elided = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (benchmark artifacts)."""
        return {name: getattr(self, name) for name in self.__slots__}


def drain_step(
    pair_periods: dict[tuple[int, int], int], shard: int, lookahead: int
) -> int:
    """How far *shard* may run past a drain exchange's global floor.

    After an all-pairs exchange every worker knows the global
    next-event time ``nxt`` and holds every already-produced record;
    any *new* cross-shard influence originates at an event >= ``nxt``
    and must traverse a wire crossing one of the shard's incident
    pairs, so it cannot arrive before ``nxt + period(pair)``.  The
    minimum incident period is therefore a sound per-round stride —
    the drain-phase analogue of the rendezvous cadence (a shard with
    no incident pairs keeps the classic one-window stride; it receives
    nothing either way).
    """
    incident = [
        period
        for (i, j), period in pair_periods.items()
        if shard in (i, j)
    ]
    return min(incident, default=lookahead)


def rendezvous_schedule(
    pair_periods: dict[tuple[int, int], int], horizon: int
) -> list[tuple[int, int, int]]:
    """Every ``(time, i, j)`` rendezvous up to *horizon*, globally sorted.

    Pair ``(i, j)`` meets at every multiple of its period.  The sorted
    order is the processing order on every worker: each worker walks
    its own pairs' events in this order, and because the globally
    least unprocessed rendezvous is the least *local* rendezvous of
    both its participants, some pair can always meet — no deadlock.
    """
    events = [
        (t, i, j)
        for (i, j), period in pair_periods.items()
        for t in range(period, horizon + 1, period)
    ]
    events.sort()
    return events


class ShardPeer(Protocol):
    """What a barrier runner needs from one shard's runtime."""

    def next_event_time(self) -> int | None:
        """Earliest pending event on this shard's loop, or None."""
        ...  # pragma: no cover

    def run_window(self, deadline: int) -> None:
        """Execute all events with ``time <= deadline``."""
        ...  # pragma: no cover

    def advance_to(self, time: int) -> None:
        """Move the clock to *time* (no events there by contract)."""
        ...  # pragma: no cover

    def freeze_at(self, time: int) -> None:
        """Pin the clock at *time* without executing events there.

        Used before firing barrier actions: every event strictly before
        *time* has run, and events *at* *time* must still be pending —
        a barrier action fires before the window that contains it.
        """
        ...  # pragma: no cover

    def drain_outboxes(self) -> dict[int, list[HopRecord]]:
        """Take (and clear) pending records, keyed by dest shard.

        Each list comes back pre-sorted in canonical order, so barriers
        merge instead of re-sorting (see :func:`merge_sorted_records`).
        """
        ...  # pragma: no cover

    def take_outbox(self, dest: int) -> list[HopRecord]:
        """Take (and clear) pending records for one destination shard,
        pre-sorted — the pairwise-rendezvous flavour of
        :meth:`drain_outboxes`."""
        ...  # pragma: no cover

    def inject(self, records: list[HopRecord]) -> None:
        """Schedule canonically ordered *records* on this shard's loop."""
        ...  # pragma: no cover


def _next_time(*candidates: int | None) -> int | None:
    """Minimum of the non-None candidates (None when all are None)."""
    live = [c for c in candidates if c is not None]
    return min(live) if live else None


class SerialBarrierRunner:
    """Drive every shard in one process on the shared window schedule.

    This is both the ``shards=1`` executor and the reference semantics
    the forked executor must match: the two runners make identical
    window decisions because they compute the same global next-event
    time from the same inputs each round.
    """

    def __init__(
        self,
        peers: list[ShardPeer],
        lookahead: int,
        actions: BarrierActionQueue | None = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.peers = peers
        self.lookahead = lookahead
        #: global (cross-shard) actions fired between windows
        self.actions = actions
        #: windows executed (diagnostics; identical for any shard count)
        self.windows = 0
        #: hop records exchanged at barriers (diagnostics)
        self.records_exchanged = 0

    def run(self, horizon: int | None = None) -> None:
        """Execute windows until quiescence (or the *horizon* clock)."""
        peers = self.peers
        lookahead = self.lookahead
        while True:
            self._exchange_all()
            nxt = _next_time(*(p.next_event_time() for p in peers))
            if self._fire_actions(nxt, horizon):
                # Actions may schedule events and emit records; rerun
                # the exchange and recompute the global next time.
                continue
            if nxt is None or (horizon is not None and nxt > horizon):
                break
            end = window_end(nxt, lookahead)
            deadline = end - 1 if horizon is None else min(end - 1, horizon)
            for peer in peers:
                peer.run_window(deadline)
            self.windows += 1
            if horizon is not None and deadline >= horizon:
                self._exchange_all()
                break
        if horizon is not None:
            for peer in peers:
                peer.advance_to(horizon)

    def _fire_actions(self, nxt: int | None, horizon: int | None) -> bool:
        """Fire barrier actions due before the next window, if any.

        An action at grid time T fires once every event strictly before
        T has executed (``nxt`` has climbed to T or beyond, or global
        quiescence).  Windows are grid-aligned, so no window straddles
        T: events at T are still pending when the action fires — the
        same "crash runs first at its tick" semantics the classic
        engine gets from scheduling the crash callback at install time.
        """
        queue = self.actions
        if queue is None:
            return False
        at = queue.next_time()
        if at is None:
            return False
        if horizon is not None and at > horizon:
            return False
        if nxt is not None and nxt < at:
            return False
        for peer in self.peers:
            peer.freeze_at(at)
        for action in queue.take_due(at):
            action.callback(*action.args)
        return True

    def _exchange_all(self) -> None:
        """Move every pending record to its destination shard, merging
        the per-source pre-sorted lists into canonical order."""
        by_dest: dict[int, list[list[HopRecord]]] = {}
        for peer in self.peers:
            for dest, records in peer.drain_outboxes().items():
                if records:
                    by_dest.setdefault(dest, []).append(records)
        for dest, lists in by_dest.items():
            merged = merge_sorted_records(lists)
            self.records_exchanged += len(merged)
            self.peers[dest].inject(merged)


class WorkerBarrier:
    """Drive one shard inside a worker process on the shared schedule.

    Each barrier round is a pairwise exchange with every peer worker:
    worker *i* sends ``(records bound for j, i's next event time, the
    earliest arrival among everything i is sending this round)`` and
    receives the same triple from *j*.  The third element lets every
    worker compute the same global next-event time even for records
    exchanged between two *other* workers, without an extra round trip.

    Pipes are used in index order (lower index sends first), so the
    rendezvous pattern is deterministic and deadlock-free for the small
    worker counts the engine targets.  Each message travels as one
    pre-pickled blob (:func:`pack_blob`) rather than per-object
    ``Connection.send`` calls, and its size feeds :class:`SyncStats`.
    """

    def __init__(
        self,
        index: int,
        peer_conns: dict[int, "Connection"],
        lookahead: int,
        sync: SyncStats | None = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.index = index
        self.peer_conns = peer_conns
        self.lookahead = lookahead
        self.sync = sync if sync is not None else SyncStats()
        self.windows = 0
        self.records_exchanged = 0

    def _exchange(self, peer: ShardPeer) -> int | None:
        """One barrier round; injects inbound records and returns the
        global next-event time (None == global quiescence)."""
        sync = self.sync
        outboxes = peer.drain_outboxes()
        head = peer.next_event_time()
        min_out = _next_time(
            *(
                record.arrival
                for records in outboxes.values()
                for record in records
            )
        )
        inbound: list[list[HopRecord]] = []
        own = outboxes.pop(self.index, None)
        if own:
            inbound.append(own)
        nxt = _next_time(head, min_out)
        for j in sorted(self.peer_conns):
            conn = self.peer_conns[j]
            sending = outboxes.pop(j, [])
            blob = pack_blob((sending, head, min_out))
            if self.index < j:
                conn.send_bytes(blob)
                data = conn.recv_bytes()
            else:
                data = conn.recv_bytes()
                conn.send_bytes(blob)
            their_records, their_head, their_min_out = pickle.loads(data)
            sync.rounds += 1
            sync.bytes_sent += len(blob)
            sync.bytes_received += len(data)
            sync.records_sent += len(sending)
            sync.records_received += len(their_records)
            if their_records:
                inbound.append(their_records)
            nxt = _next_time(nxt, their_head, their_min_out)
        if outboxes:
            leftover = sorted(outboxes)
            raise RuntimeError(
                f"shard {self.index} produced records for unknown "
                f"shards {leftover}"
            )
        if inbound:
            merged = merge_sorted_records(inbound)
            self.records_exchanged += len(merged)
            peer.inject(merged)
        return nxt

    def run(self, peer: ShardPeer, horizon: int | None = None) -> None:
        """Execute windows until global quiescence (or *horizon*)."""
        lookahead = self.lookahead
        while True:
            nxt = self._exchange(peer)
            if nxt is None or (horizon is not None and nxt > horizon):
                break
            end = window_end(nxt, lookahead)
            deadline = end - 1 if horizon is None else min(end - 1, horizon)
            peer.run_window(deadline)
            self.windows += 1
            if horizon is not None and deadline >= horizon:
                self._exchange(peer)
                break
        if horizon is not None:
            peer.advance_to(horizon)


class ElidedSerialRunner:
    """All shards in one process on the pairwise-rendezvous schedule.

    The horizon phase walks :func:`rendezvous_schedule`: only
    wire-connected shard pairs ever exchange, each at its own cadence,
    and every shard free-runs between its rendezvous (the keyed event
    loop makes injection timing irrelevant to ordering, so there is no
    per-window lockstep).  The drain phase — quiescence is a *global*
    property, undetectable on a sparse exchange graph — keeps all-pairs
    rounds but strides them by each shard's :func:`drain_step`.

    Per-shard :class:`SyncStats` are filled the way the forked workers
    fill theirs: the same schedule (so ``rounds``, record counts and
    ``windows_elided`` are executor-exact) and the same pickled blobs.
    Byte counts can drift from the forked numbers by a fraction of a
    percent: this process shares one object graph across shards, so a
    peer's address-space-private mutations (packet serial counters,
    lazily grown dicts) are visible here at pack time but not in an
    isolated worker.  Pickling every cross-shard record also means the
    elided serial runner — unlike :class:`SerialBarrierRunner` — needs
    picklable cross-shard payloads; keep live-generator cross-shard
    migration on the classic engine.
    """

    def __init__(
        self,
        peers: list[ShardPeer],
        lookahead: int,
        pair_periods: dict[tuple[int, int], int],
        syncs: list[SyncStats] | None = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.peers = peers
        self.lookahead = lookahead
        self.pair_periods = dict(pair_periods)
        self.syncs = (
            syncs if syncs is not None else [SyncStats() for _ in peers]
        )
        self.windows = 0  #: drain-phase windows (diagnostics)
        self.records_exchanged = 0
        #: last rendezvous time completed per pair — persisted across
        #: ``run`` calls so a resumed horizon never replays a meeting
        self._last_met = dict.fromkeys(self.pair_periods, 0)
        self._drain_steps = [
            drain_step(pair_periods, s, lookahead)
            for s in range(len(peers))
        ]

    def run(self, horizon: int | None = None) -> None:
        """Rendezvous schedule up to *horizon*; classic drain without."""
        if horizon is None:
            self._drain()
            return
        peers = self.peers
        syncs = self.syncs
        lookahead = self.lookahead
        # Tick each shard has already executed through (run_until is
        # inclusive, so a rendezvous at t needs execution through t-1).
        frontier = [-1] * len(peers)
        last_met = self._last_met
        for t, i, j in rendezvous_schedule(self.pair_periods, horizon):
            if t <= last_met[(i, j)]:
                continue  # met during an earlier run() call
            for s in (i, j):
                if t - 1 > frontier[s]:
                    peers[s].run_window(t - 1)
                    frontier[s] = t - 1
            out_ij = peers[i].take_outbox(j)
            out_ji = peers[j].take_outbox(i)
            blob_ij = pack_blob(out_ij)
            blob_ji = pack_blob(out_ji)
            skipped = (t - last_met[(i, j)]) // lookahead - 1
            for here, sent, received, blob_out, blob_in in (
                (i, out_ij, out_ji, blob_ij, blob_ji),
                (j, out_ji, out_ij, blob_ji, blob_ij),
            ):
                sync = syncs[here]
                sync.rounds += 1
                sync.bytes_sent += len(blob_out)
                sync.bytes_received += len(blob_in)
                sync.records_sent += len(sent)
                sync.records_received += len(received)
                if skipped > 0:
                    sync.windows_elided += skipped
            last_met[(i, j)] = t
            self.records_exchanged += len(out_ij) + len(out_ji)
            if out_ij:
                peers[j].inject(out_ij)
            if out_ji:
                peers[i].inject(out_ji)
        for s, peer in enumerate(peers):
            if horizon > frontier[s]:
                peer.run_window(horizon)
            peer.advance_to(horizon)

    def _drain(self) -> None:
        """All-pairs rounds to global quiescence, strided per shard.

        Mirrors what every :class:`ElidedWorkerBarrier` does in its
        drain phase — the same rounds, blobs and per-shard strides —
        so serial and forked executions report identical sync
        schedules.
        """
        peers = self.peers
        syncs = self.syncs
        count = len(peers)
        lookahead = self.lookahead
        while True:
            outs = [peer.drain_outboxes() for peer in peers]
            heads = [peer.next_event_time() for peer in peers]
            min_outs = [
                _next_time(
                    *(
                        record.arrival
                        for records in out.values()
                        for record in records
                    )
                )
                for out in outs
            ]
            inbound: list[list[list[HopRecord]]] = [[] for _ in peers]
            for s in range(count):
                own = outs[s].pop(s, None)
                if own:
                    inbound[s].append(own)
            for i in range(count):
                for j in range(i + 1, count):
                    sent_ij = outs[i].pop(j, [])
                    sent_ji = outs[j].pop(i, [])
                    blob_ij = pack_blob((sent_ij, heads[i], min_outs[i]))
                    blob_ji = pack_blob((sent_ji, heads[j], min_outs[j]))
                    syncs[i].rounds += 1
                    syncs[j].rounds += 1
                    syncs[i].bytes_sent += len(blob_ij)
                    syncs[i].bytes_received += len(blob_ji)
                    syncs[j].bytes_sent += len(blob_ji)
                    syncs[j].bytes_received += len(blob_ij)
                    syncs[i].records_sent += len(sent_ij)
                    syncs[i].records_received += len(sent_ji)
                    syncs[j].records_sent += len(sent_ji)
                    syncs[j].records_received += len(sent_ij)
                    if sent_ij:
                        inbound[j].append(sent_ij)
                    if sent_ji:
                        inbound[i].append(sent_ji)
            for s in range(count):
                if outs[s]:
                    leftover = sorted(outs[s])
                    raise RuntimeError(
                        f"shard {s} produced records for unknown "
                        f"shards {leftover}"
                    )
                if inbound[s]:
                    merged = merge_sorted_records(inbound[s])
                    self.records_exchanged += len(merged)
                    peers[s].inject(merged)
            nxt = _next_time(*heads, *min_outs)
            if nxt is None:
                break
            # Per-shard stride: nothing new can cross into shard s
            # before nxt + its minimum incident pair period, so each
            # round covers period/lookahead grid windows, not one.
            floor = window_end(nxt, lookahead) - 1
            for s, peer in enumerate(peers):
                peer.run_window(
                    floor + self._drain_steps[s] - lookahead
                )
            self.windows += 1


class ElidedWorkerBarrier(WorkerBarrier):
    """One forked shard on the pairwise-rendezvous schedule.

    The horizon phase walks this worker's slice of
    :func:`rendezvous_schedule` (only wire-connected pairs, each at its
    own cadence); the drain phase keeps the classic all-pairs exchange
    but strides each round by this shard's :func:`drain_step`.
    All-pairs pipes still exist — unconnected pairs stay silent until
    the drain.
    """

    def __init__(
        self,
        index: int,
        peer_conns: dict[int, "Connection"],
        lookahead: int,
        pair_periods: dict[tuple[int, int], int],
        sync: SyncStats | None = None,
    ) -> None:
        super().__init__(index, peer_conns, lookahead, sync=sync)
        self.pair_periods = dict(pair_periods)
        self._last_met = dict.fromkeys(self.pair_periods, 0)
        self._drain_step = drain_step(
            self.pair_periods, index, lookahead
        )

    def _drain(self, peer: ShardPeer) -> None:
        """All-pairs rounds to quiescence, striding at this shard's
        minimum incident pair period per round (see
        :func:`drain_step`) instead of one grid window."""
        lookahead = self.lookahead
        while True:
            nxt = self._exchange(peer)
            if nxt is None:
                break
            floor = window_end(nxt, lookahead) - 1
            peer.run_window(floor + self._drain_step - lookahead)
            self.windows += 1

    def run(self, peer: ShardPeer, horizon: int | None = None) -> None:
        if horizon is None:
            self._drain(peer)
            return
        sync = self.sync
        index = self.index
        frontier = -1
        last_met = self._last_met
        for t, i, j in rendezvous_schedule(self.pair_periods, horizon):
            if index not in (i, j):
                continue
            if t <= last_met[(i, j)]:
                continue  # met during an earlier run() call
            if t - 1 > frontier:
                peer.run_window(t - 1)
                frontier = t - 1
            other = j if index == i else i
            conn = self.peer_conns[other]
            sending = peer.take_outbox(other)
            blob = pack_blob(sending)
            if index < other:
                conn.send_bytes(blob)
                data = conn.recv_bytes()
            else:
                data = conn.recv_bytes()
                conn.send_bytes(blob)
            inbound = pickle.loads(data)
            sync.rounds += 1
            sync.bytes_sent += len(blob)
            sync.bytes_received += len(data)
            sync.records_sent += len(sending)
            sync.records_received += len(inbound)
            skipped = (t - last_met[(i, j)]) // self.lookahead - 1
            if skipped > 0:
                sync.windows_elided += skipped
            last_met[(i, j)] = t
            if inbound:
                self.records_exchanged += len(inbound)
                peer.inject(inbound)
        if horizon > frontier:
            peer.run_window(horizon)
        peer.advance_to(horizon)
