"""Simulated time.

All simulated time in this library is an integer count of *microseconds*.
Integers keep the event queue deterministic (no float rounding) and make
trace output exact.  The helpers here convert between human units and the
internal representation.
"""

from __future__ import annotations

from repro.errors import ClockError

#: One microsecond, the base unit of simulated time.
USEC: int = 1
#: One millisecond in simulated time units.
MSEC: int = 1_000
#: One second in simulated time units.
SEC: int = 1_000_000


def usec(n: float) -> int:
    """Return *n* microseconds as a simulated-time integer."""
    return int(round(n))


def msec(n: float) -> int:
    """Return *n* milliseconds as a simulated-time integer."""
    return int(round(n * MSEC))


def sec(n: float) -> int:
    """Return *n* seconds as a simulated-time integer."""
    return int(round(n * SEC))


def format_time(t: int) -> str:
    """Render a simulated time as a human-readable string.

    >>> format_time(1_500)
    '1.500ms'
    >>> format_time(2_000_000)
    '2.000s'
    """
    if t < 0:
        raise ClockError(f"negative simulated time: {t}")
    if t < MSEC:
        return f"{t}us"
    if t < SEC:
        return f"{t / MSEC:.3f}ms"
    return f"{t / SEC:.3f}s"


class SimClock:
    """A monotonically advancing simulated clock.

    The clock is owned by the :class:`~repro.sim.loop.EventLoop`; everything
    else reads it through :meth:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = start

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    def advance_to(self, t: int) -> None:
        """Move the clock forward to time *t*.

        Raises :class:`ClockError` if *t* is in the past; simulated time
        never runs backwards.
        """
        if t < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {t}"
            )
        self._now = t

    def __repr__(self) -> str:
        return f"SimClock(now={format_time(self._now)})"
