"""The event queue underlying the discrete-event engine.

Events are ordered by (time, sequence-number): two events scheduled for the
same instant fire in the order they were scheduled, which keeps every run
of the simulator bit-for-bit reproducible.

:class:`ScheduledEvent` is a hand-rolled ``__slots__`` class rather than a
dataclass: the heap compares events millions of times per benchmark run and
the dataclass-generated ``__lt__`` allocates a ``(time, seq)`` tuple per
comparison, which dominated the profile at cluster scale.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import ClockError


class ScheduledEvent:
    """A callback registered to fire at a simulated instant.

    Comparison uses only ``(time, seq)`` so the heap never tries to compare
    callbacks.  Cancelling marks the event dead; the queue skips dead events
    when popping instead of paying O(n) removal.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __le__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq <= other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduledEvent):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __hash__(self) -> int:
        return hash((self.time, self.seq))

    def __repr__(self) -> str:
        return (
            f"ScheduledEvent(time={self.time}, seq={self.seq},"
            f" cancelled={self.cancelled})"
        )

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (the loop calls this, not user code)."""
        self.callback(*self.args)


class EventQueue:
    """A deterministic priority queue of :class:`ScheduledEvent`.

    The heap holds ``(time, seq, event)`` tuples rather than the events
    themselves: ``(time, seq)`` is unique, so sift comparisons resolve on
    the integer pair in C and never call back into Python.
    """

    __slots__ = ("_heap", "_next_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, ScheduledEvent]] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def push(
        self,
        time: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> ScheduledEvent:
        """Schedule *callback(*args)* at simulated time *time*."""
        if time < 0:
            raise ClockError(f"cannot schedule event at negative time {time}")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = ScheduledEvent(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def note_cancelled(self) -> None:
        """Tell the queue one of its events was cancelled externally."""
        self._live -= 1

    def peek_time(self) -> int | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the next live event, or ``None`` if empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            event = pop(heap)[2]
            if not event.cancelled:
                self._live -= 1
                return event
        return None
