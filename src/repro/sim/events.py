"""The event queue underlying the discrete-event engine.

Events are ordered by (time, sequence-number): two events scheduled for the
same instant fire in the order they were scheduled, which keeps every run
of the simulator bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ClockError


@dataclass(order=True)
class ScheduledEvent:
    """A callback registered to fire at a simulated instant.

    Comparison uses only ``(time, seq)`` so the heap never tries to compare
    callbacks.  Cancelling marks the event dead; the queue skips dead events
    when popping instead of paying O(n) removal.
    """

    time: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (the loop calls this, not user code)."""
        self.callback(*self.args)


class EventQueue:
    """A deterministic priority queue of :class:`ScheduledEvent`."""

    __slots__ = ("_heap", "_next_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def push(
        self,
        time: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> ScheduledEvent:
        """Schedule *callback(*args)* at simulated time *time*."""
        if time < 0:
            raise ClockError(f"cannot schedule event at negative time {time}")
        event = ScheduledEvent(time, self._next_seq, callback, args)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def note_cancelled(self) -> None:
        """Tell the queue one of its events was cancelled externally."""
        self._live -= 1

    def peek_time(self) -> int | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_dead()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
