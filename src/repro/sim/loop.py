"""The discrete-event loop that drives every simulated machine.

A single :class:`EventLoop` hosts the whole distributed system: kernels,
network channels, and workload generators all schedule callbacks here.
Determinism is guaranteed by the integer clock and FIFO tie-breaking in
:class:`~repro.sim.events.EventQueue`.
"""

from __future__ import annotations

from typing import Any, Callable

from heapq import heappush

from repro.errors import ClockError, SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue, ScheduledEvent


class EventLoop:
    """Deterministic discrete-event executor.

    Typical use::

        loop = EventLoop()
        loop.call_after(10, lambda: print("at t=10us"))
        loop.run()
    """

    def __init__(self, start: int = 0) -> None:
        self.clock = SimClock(start)
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        # Reads the clock's slot directly: this property is called from
        # every hot path and the extra SimClock.now property hop showed
        # up in cluster-scale profiles.
        return self.clock._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def next_event_time(self) -> int | None:
        """Time of the earliest live event, or None when the queue is
        empty.

        The windowed (sharded) executor uses this between ``run_until``
        calls to pick the next conservative time window; pure peek, no
        state change.
        """
        return self._queue.peek_time()

    def call_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self.clock.now:
            raise ClockError(
                f"cannot schedule at {time}, clock already at {self.clock.now}"
            )
        return self._queue.push(time, callback, args)

    def call_after(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule *callback* *delay* microseconds from now."""
        if delay < 0:
            raise ClockError(f"negative delay {delay}")
        # now + delay can never be in the past (nor negative), so build
        # and push the event inline instead of chaining through call_at
        # and EventQueue.push — this is the hottest scheduling entry
        # point in the simulator, called once per future event.
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        time = self.clock._now + delay
        event = ScheduledEvent(time, seq, callback, args)
        heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def call_soon(
        self,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule *callback* at the current instant (after queued peers)."""
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        time = self.clock._now
        event = ScheduledEvent(time, seq, callback, args)
        heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a scheduled event.  Idempotent."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._events_fired += 1
        event.fire()
        return True

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or *max_events* fire).

        Returns the number of events executed by this call.  A
        *max_events* bound is the standard guard against accidental
        infinite event cascades in tests.

        The pop/advance/fire sequence is inlined here (rather than
        delegating to :meth:`step`) because this loop executes every
        event in every benchmark; the heap already yields events in
        non-decreasing time order, so the clock write needs no
        backwards-motion check.
        """
        if self._running:
            raise SimulationError("event loop is already running")
        self._running = True
        fired = 0
        queue_pop = self._queue.pop
        clock = self.clock
        try:
            if max_events is None:
                while True:
                    event = queue_pop()
                    if event is None:
                        break
                    clock._now = event.time
                    fired += 1
                    self._events_fired += 1
                    event.callback(*event.args)
            else:
                while fired < max_events:
                    event = queue_pop()
                    if event is None:
                        break
                    clock._now = event.time
                    fired += 1
                    self._events_fired += 1
                    event.callback(*event.args)
        finally:
            self._running = False
        return fired

    def run_until(self, deadline: int, max_events: int | None = None) -> int:
        """Run events with time <= *deadline*, then set the clock there.

        Events scheduled beyond the deadline stay queued, so simulation can
        be resumed with further ``run_until`` calls.
        """
        if deadline < self.clock.now:
            raise ClockError(
                f"deadline {deadline} is before current time {self.clock.now}"
            )
        if self._running:
            raise SimulationError("event loop is already running")
        self._running = True
        fired = 0
        queue = self._queue
        queue_pop = queue.pop
        clock = self.clock
        try:
            if max_events is None:
                while True:
                    next_time = queue.peek_time()
                    if next_time is None or next_time > deadline:
                        break
                    event = queue_pop()
                    clock._now = event.time
                    fired += 1
                    self._events_fired += 1
                    event.callback(*event.args)
            else:
                while fired < max_events:
                    next_time = queue.peek_time()
                    if next_time is None or next_time > deadline:
                        break
                    event = queue_pop()
                    clock._now = event.time
                    fired += 1
                    self._events_fired += 1
                    event.callback(*event.args)
            self.clock.advance_to(deadline)
        finally:
            self._running = False
        return fired

    def __repr__(self) -> str:
        return (
            f"EventLoop(now={self.clock.now}, pending={self.pending_events},"
            f" fired={self._events_fired})"
        )


class KeyedEventLoop(EventLoop):
    """An event loop whose same-tick tie-break is data, not call order.

    The classic loop orders same-tick events by a monotone sequence
    number, so the interleaving of barrier-injected hop records with
    locally scheduled events depends on *when* records are injected.
    The barrier-elision executor injects records at pair-specific
    cadences (see :mod:`repro.sim.barrier`), so it needs a tie-break
    that is a pure function of the simulation state instead:

    - a **local** event scheduled while the clock sits in grid window
      ``g`` gets key ``(g, 0, n)`` with ``n`` a per-loop monotone
      counter — same relative order the classic loop would assign;
    - a **hop record** produced in grid window ``g`` gets key
      ``(g, 1, src, dst, wire_seq)`` — the canonical barrier order,
      slotted after window-``g`` locals and before window-``g + 1``
      events, exactly where the classic per-window barrier would have
      injected it.

    With these keys the heap order is independent of injection timing
    (a record may arrive one window early or five windows late and
    still lands in the same slot), which is what lets shard pairs skip
    barriers without perturbing a single tie-break.
    """

    def __init__(self, grid: int, start: int = 0) -> None:
        if grid < 1:
            raise ValueError(f"grid must be >= 1, got {grid}")
        super().__init__(start)
        self._grid = grid

    @property
    def grid(self) -> int:
        """The window-grid length keys are computed against."""
        return self._grid

    def call_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        if time < self.clock.now:
            raise ClockError(
                f"cannot schedule at {time}, clock already at {self.clock.now}"
            )
        queue = self._queue
        n = queue._next_seq
        queue._next_seq = n + 1
        seq = (self.clock._now // self._grid, 0, n)
        event = ScheduledEvent(time, seq, callback, args)
        heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def call_after(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        if delay < 0:
            raise ClockError(f"negative delay {delay}")
        queue = self._queue
        n = queue._next_seq
        queue._next_seq = n + 1
        now = self.clock._now
        seq = (now // self._grid, 0, n)
        event = ScheduledEvent(now + delay, seq, callback, args)
        heappush(queue._heap, (now + delay, seq, event))
        queue._live += 1
        return event

    def call_soon(
        self,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        queue = self._queue
        n = queue._next_seq
        queue._next_seq = n + 1
        now = self.clock._now
        seq = (now // self._grid, 0, n)
        event = ScheduledEvent(now, seq, callback, args)
        heappush(queue._heap, (now, seq, event))
        queue._live += 1
        return event

    def schedule_record(
        self,
        record: Any,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule a hop-record delivery under its canonical key.

        *record* is a :class:`~repro.sim.barrier.HopRecord` (duck-typed
        to avoid the import cycle); the key is derived entirely from
        its fields, so injecting the same records in any order — or at
        any barrier — yields the same heap order.
        """
        time = record.arrival
        if time < self.clock.now:
            raise ClockError(
                f"cannot schedule at {time}, clock already at {self.clock.now}"
            )
        queue = self._queue
        seq = (record.gen, 1, record.src, record.dst, record.wire_seq)
        event = ScheduledEvent(time, seq, callback, args)
        heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event
