"""Deterministic random-number streams.

Every stochastic component (channel fault injection, workload arrival
processes, placement policies) draws from its own named stream derived from
a single root seed, so adding randomness to one component never perturbs
another — the classic trick for reproducible systems simulation.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent, named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        The same (root_seed, name) pair always yields an identical
        sequence, regardless of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "big"))

    def __repr__(self) -> str:
        return (
            f"RandomStreams(root_seed={self.root_seed},"
            f" streams={sorted(self._streams)})"
        )
