"""The sharded parallel execution engine.

A :class:`ShardedSystem` is the multi-loop sibling of
:class:`repro.core.system.System`: the machine set is partitioned into
``config.shards`` shards, each with its own event loop, tracer, metrics
registry, :class:`~repro.net.network.ShardNetwork` and kernels.  Shards
execute conservative time windows in lockstep (see
:mod:`repro.sim.barrier`), exchanging in-flight packet hops at window
barriers — DEMOS/MP is "per-processor kernels" by construction, so the
machine boundary is exactly the distribution boundary.

Two executors share one window schedule:

- **serial** — every shard driven by one process
  (:class:`~repro.sim.barrier.SerialBarrierRunner`).  Fully general:
  live process generators may migrate across shard boundaries because
  everything shares an address space.  ``shards=1`` under this executor
  is the determinism reference.
- **fork** — one ``multiprocessing`` (fork) worker per shard
  (:class:`~repro.sim.barrier.WorkerBarrier`).  This is the throughput
  executor; everything that crosses a shard boundary must pickle, which
  holds for ordinary message payloads but *not* for a live process
  generator — scenario code that migrates processes across shards must
  keep to the serial executor (intra-shard migration is fine anywhere).

Partitioning is topology-aware: machine ids are split into contiguous
near-even ranges, snapped to an alignment that keeps each neighbourhood
co-resident — a torus row, a whole clique — so balancer domains and
bulk local traffic stay inside one shard.

Determinism: every gated counter is byte-identical for every shard
count.  The argument lives in :mod:`repro.sim.barrier`; the engine-side
obligations are (a) all hops go through barrier outboxes, (b) per-wire
state lives with the wire's source shard, (c) build-time event order is
the single global order of this module's constructors, and (d) scenario
drivers anchor decisions to per-machine state (see
:meth:`ShardedSystem.schedule_migration` and
:class:`repro.policy.load_balancer.DomainLoadBalancer`) rather than to
a cross-shard global view.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.config import SystemConfig, near_square_factor
from repro.core.registry import registered_programs
from repro.core.system import MigrationTicket, boot_standard_servers
from repro.errors import ConfigError, SimulationError, UnknownProcessError
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.kernel import Kernel
from repro.net.network import ShardNetwork
from repro.net.topology import MachineId, Topology
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.sim.barrier import (
    BarrierActionQueue,
    ElidedSerialRunner,
    ElidedWorkerBarrier,
    SerialBarrierRunner,
    WorkerBarrier,
)
from repro.sim.loop import EventLoop, KeyedEventLoop
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.barrier import HopRecord
    from repro.stats.migration_cost import MigrationCostRecord


def shard_alignment(config: SystemConfig) -> int:
    """Smallest machine-id block the partitioner must keep whole.

    Torus rows and whole cliques are the natural traffic neighbourhoods
    (and the balancer domains), so they must not straddle a shard
    boundary; every other shape partitions freely (hypercube blocks of
    ``n // shards`` are subcubes whenever the counts are powers of two,
    which ``validate()`` guarantees for the machine count).
    """
    if config.topology == "torus":
        return config.machines // near_square_factor(config.machines)
    if config.topology == "cliques":
        return near_square_factor(config.machines)
    return 1


def partition_machines(
    machines: list[MachineId], shards: int, alignment: int = 1
) -> list[list[MachineId]]:
    """Split *machines* into contiguous, near-even, aligned groups.

    Units of *alignment* consecutive machines are distributed so group
    sizes differ by at most one unit; the id ranges are contiguous, so
    a group is a band of torus rows, a run of whole cliques, or (for
    power-of-two counts) a subcube.
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if len(machines) % alignment:
        raise ConfigError(
            f"{len(machines)} machines do not divide into units "
            f"of {alignment}"
        )
    units = [
        machines[i: i + alignment]
        for i in range(0, len(machines), alignment)
    ]
    if len(units) < shards:
        raise ConfigError(
            f"cannot split {len(units)} aligned unit(s) of {alignment} "
            f"machine(s) into {shards} shards"
        )
    base, extra = divmod(len(units), shards)
    groups: list[list[MachineId]] = []
    start = 0
    for index in range(shards):
        count = base + (1 if index < extra else 0)
        chunk = units[start: start + count]
        groups.append([m for unit in chunk for m in unit])
        start += count
    return groups


@dataclass(frozen=True)
class ShardPlan:
    """How one machine set maps onto shards."""

    shards: tuple[tuple[MachineId, ...], ...]
    lookahead: int  #: conservative window length (min wire latency)
    #: per wire-connected shard pair ``(i, j)`` with ``i < j``: the
    #: exchange period in microseconds — the pair's minimum crossing
    #: latency snapped down to the window grid.  Pairs no wire crosses
    #: are absent and never rendezvous (topology-aware exchange).
    pair_periods: dict[tuple[int, int], int]
    _shard_of: dict[MachineId, int]

    @classmethod
    def build(cls, config: SystemConfig, topology: Topology) -> "ShardPlan":
        groups = partition_machines(
            topology.machines, config.shards, shard_alignment(config)
        )
        lookahead = topology.min_latency()
        if lookahead is None or lookahead < 1:
            raise ConfigError(
                "sharded execution needs every wire latency >= 1 "
                "(zero lookahead admits no conservative window)"
            )
        shard_of = {
            machine: index
            for index, group in enumerate(groups)
            for machine in group
        }
        pair_min: dict[tuple[int, int], int] = {}
        for wire in topology.wires():
            si = shard_of[wire.src]
            sj = shard_of[wire.dst]
            if si == sj:
                continue
            pair = (si, sj) if si < sj else (sj, si)
            prior = pair_min.get(pair)
            if prior is None or wire.latency < prior:
                pair_min[pair] = wire.latency
        pair_periods = {
            pair: max(lookahead, (latency // lookahead) * lookahead)
            for pair, latency in sorted(pair_min.items())
        }
        return cls(
            shards=tuple(tuple(g) for g in groups),
            lookahead=lookahead,
            pair_periods=pair_periods,
            _shard_of=shard_of,
        )

    def shard_of(self, machine: MachineId) -> int:
        """The shard index owning *machine*."""
        try:
            return self._shard_of[machine]
        except KeyError:
            raise ConfigError(f"no machine {machine}") from None


@dataclass
class Shard:
    """One shard's runtime: a loop, its kernels, and its network."""

    index: int
    machines: list[MachineId]
    loop: EventLoop
    tracer: Tracer
    metrics: MetricsRegistry
    network: ShardNetwork
    kernels: dict[MachineId, Kernel]


class ShardRuntime:
    """Adapter giving the barrier runners their ``ShardPeer`` surface."""

    __slots__ = ("shard",)

    def __init__(self, shard: Shard) -> None:
        self.shard = shard

    def next_event_time(self) -> int | None:
        return self.shard.loop.next_event_time()

    def run_window(self, deadline: int) -> None:
        # A resumed elided run can revisit rendezvous ticks the drain
        # already executed past; behind-the-clock deadlines are no-ops.
        if deadline >= self.shard.loop.now:
            self.shard.loop.run_until(deadline)

    def advance_to(self, time: int) -> None:
        if time > self.shard.loop.now:
            self.shard.loop.run_until(time)

    def freeze_at(self, time: int) -> None:
        # Barrier actions fire *before* the window containing their
        # tick: move the clock only, never execute events at `time`
        # (run_until is inclusive and would).
        clock = self.shard.loop.clock
        if time > clock.now:
            clock.advance_to(time)

    def drain_outboxes(self) -> dict[int, list["HopRecord"]]:
        return self.shard.network.take_outboxes()

    def take_outbox(self, dest: int) -> list["HopRecord"]:
        return self.shard.network.take_outbox(dest)

    def inject(self, records: list["HopRecord"]) -> None:
        receive = self.shard.network.receive_record
        for record in records:
            receive(record)


class DomainView:
    """A ``System``-shaped window onto one shard, scoped to a domain.

    :class:`~repro.policy.load_balancer.DomainLoadBalancer` (and any
    other per-neighbourhood policy) runs against this instead of the
    global system, so its decisions read only domain-local state — the
    property that keeps policy behaviour independent of the shard
    layout *and* executable inside a forked worker.
    """

    def __init__(self, shard: Shard, machines: list[MachineId]) -> None:
        missing = [m for m in machines if m not in shard.kernels]
        if missing:
            raise ConfigError(
                f"domain machines {missing} are not in shard {shard.index} "
                f"(a policy domain must sit inside one shard)"
            )
        self.shard = shard
        self.loop = shard.loop
        self.tracer = shard.tracer
        self.metrics = shard.metrics
        self.kernels = [shard.kernels[m] for m in machines]
        self._by_machine = {k.machine: k for k in self.kernels}

    def kernel(self, machine: MachineId) -> Kernel:
        try:
            return self._by_machine[machine]
        except KeyError:
            raise ConfigError(
                f"machine {machine} is outside this domain"
            ) from None


class ShardedSystem:
    """One simulated DEMOS/MP installation across parallel shards."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.config.validate()
        self.topology = self.config.build_topology()
        self.plan = ShardPlan.build(self.config, self.topology)
        self.rngs = RandomStreams(self.config.seed)
        #: shared by every kernel; server boots add entries as they come
        #: up.  Fully populated at build time, so forked workers all see
        #: the same (copied) directory.
        self.well_known: dict[str, ProcessAddress] = {}
        self.server_pids: dict[str, ProcessId] = {}
        self.shards: list[Shard] = []
        kernel_config = self.config.kernel_config()
        programs = registered_programs()
        elision = self.config.barrier_elision
        for index, machines in enumerate(self.plan.shards):
            loop: EventLoop = (
                KeyedEventLoop(self.plan.lookahead) if elision
                else EventLoop()
            )
            tracer = Tracer(
                (lambda _loop=loop: _loop.now),
                max_records=self.config.max_trace_records,
                enabled_categories=self.config.trace_categories,
            )
            metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
            network = ShardNetwork(
                loop,
                self.topology,
                shard_index=index,
                shard_of=self.plan.shard_of,
                machines=list(machines),
                tracer=tracer,
                rngs=self.rngs,
                faults=self.config.faults,
                rto=self.config.rto,
                metrics=metrics,
                elide_grid=self.plan.lookahead if elision else None,
            )
            kernels = {
                machine: Kernel(
                    machine,
                    loop,
                    network,
                    tracer,
                    config=kernel_config,
                    well_known=self.well_known,
                    metrics=metrics,
                )
                for machine in machines
            }
            for name, factory in programs.items():
                for kernel in kernels.values():
                    kernel.register_program(name, factory)
            shard = Shard(
                index, list(machines), loop, tracer, metrics, network,
                kernels,
            )
            metrics.register_collector(
                lambda registry, _shard=shard: self._publish_sim_metrics(
                    registry, _shard
                )
            )
            self.shards.append(shard)
        runtimes = [ShardRuntime(shard) for shard in self.shards]
        #: global (cross-shard) actions fired between windows — the
        #: fail-stop crash hook; empty unless chaos registers actions
        self._barrier_actions = BarrierActionQueue(self.plan.lookahead)
        if elision:
            self._runner: SerialBarrierRunner | ElidedSerialRunner = (
                ElidedSerialRunner(
                    runtimes,
                    self.plan.lookahead,
                    self.plan.pair_periods,
                    syncs=[shard.network.sync for shard in self.shards],
                    actions=self._barrier_actions,
                )
            )
        else:
            self._runner = SerialBarrierRunner(
                runtimes, self.plan.lookahead,
                actions=self._barrier_actions,
            )
        #: set once a forked execution has consumed this system
        self._forked = False
        if self.config.boot_servers:
            boot_standard_servers(self)

    # ------------------------------------------------------------------
    # Build-time scenario wiring
    # ------------------------------------------------------------------

    def kernel(self, machine: MachineId) -> Kernel:
        """The kernel running on *machine*."""
        shard = self.shards[self.plan.shard_of(machine)]
        return shard.kernels[machine]

    def shard_for(self, machine: MachineId) -> Shard:
        """The shard owning *machine*."""
        return self.shards[self.plan.shard_of(machine)]

    def domain_view(self, machines: list[MachineId]) -> DomainView:
        """A policy-facing view of one topology neighbourhood.

        All *machines* must live in one shard (the partitioner keeps
        aligned neighbourhoods whole, so any domain that respects the
        alignment satisfies this for every shard count).
        """
        if not machines:
            raise ConfigError("a domain needs at least one machine")
        return DomainView(self.shard_for(machines[0]), machines)

    def spawn(
        self,
        program: Callable,
        machine: MachineId = 0,
        name: str = "",
        **kwargs: Any,
    ) -> ProcessId:
        """Create a process on *machine* running *program*."""
        return self.kernel(machine).spawn(program, name=name, **kwargs)

    def call_at(
        self,
        time: int,
        machine: MachineId,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Schedule driver code at *time* on *machine*'s shard loop.

        The machine anchor is what keeps scheduled scenario actions
        executable in a forked worker (the closure runs where the
        machine's state lives) and shard-layout independent.
        """
        self.shard_for(machine).loop.call_at(time, callback, *args)

    def call_at_barrier(
        self,
        time: int,
        key: tuple,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Schedule a *global* action at the window barrier at *time*.

        Unlike :meth:`call_at`, the callback is not anchored to one
        machine's loop: it fires between windows, when every shard has
        executed all events strictly before *time* and frozen its clock
        there — so it may touch state on several shards atomically
        (fail-stop crash recovery does).  *time* must sit on the window
        grid (a multiple of ``plan.lookahead``); *key* is pure data and
        orders same-tick actions deterministically.

        Both serial engines support this: the classic runner fires due
        actions between windows, and the elided runner drives every
        shard to the action tick, fires, and re-arms its rendezvous
        schedule (the action's influence cannot arrive anywhere before
        tick + pair period, so clamped meetings stay conservative).
        Only the forked executor refuses — its workers have no global
        rendezvous a cross-shard mutation could ride on.
        """
        try:
            self._barrier_actions.add(time, key, callback, *args)
        except ValueError as exc:
            raise SimulationError(str(exc)) from None

    def crash_transport(
        self, dead: MachineId, executor: MachineId
    ) -> None:
        """Fail-stop *dead*'s transport across every shard network.

        The sharded sibling of :meth:`Network.crash_machine`: installs
        the redirect on **every** shard's routing view (pure data,
        replicated so each shard routes identically), hands the dead
        machine's receive-stream state to the executor's transport, and
        abandons the dead machine's unacknowledged sends.  Call only
        from a barrier action — mid-window the shards disagree on time.
        """
        dead_net = self.shard_for(dead).network
        exec_net = self.shard_for(executor).network
        for shard in self.shards:
            shard.network.install_redirect(dead, executor)
        exec_net._transport(executor).absorb_recv_states(
            dead_net._transport(dead).export_recv_states()
        )
        abandoned = dead_net._transport(dead).abandon_sends()
        self.shard_for(dead).tracer.record(
            "net",
            "crash",
            machine=dead,
            executor=executor,
            abandoned_sends=abandoned,
        )

    def schedule_spawn(
        self,
        at: int,
        machine: MachineId,
        program: Callable,
        name: str = "",
    ) -> None:
        """Spawn *program* on *machine* at simulated time *at*."""
        self.call_at(
            at, machine,
            lambda: self.kernel(machine).spawn(program, name=name),
        )

    def schedule_migration(
        self,
        at: int,
        pid: ProcessId,
        home: MachineId,
        dest: MachineId,
        on_done: Callable[[bool, "MigrationCostRecord"], None] | None = None,
    ) -> None:
        """Ask *home*'s kernel to migrate *pid* to *dest* at time *at*.

        Unlike :meth:`System.migrate` this is anchored to a machine,
        not to an omniscient process lookup: if the process is no
        longer on *home* at that tick (it exited, or a policy moved
        it), the request is skipped.  Per-machine state is identical
        across shard layouts, so skip-or-start is too.
        """

        def _start() -> None:
            kernel = self.kernel(home)
            if pid in kernel.processes:
                kernel.migration.start(pid, dest, on_done=on_done)

        self.call_at(at, home, _start)

    def migrate(
        self,
        pid: ProcessId,
        dest: MachineId,
        on_done: Callable[[bool, "MigrationCostRecord"], None] | None = None,
    ) -> MigrationTicket:
        """Immediate migration request (serial-executor convenience).

        Looks the process up across all shards, so tests can drive
        cross-shard migrations directly; scenario code meant for the
        forked executor should use :meth:`schedule_migration`.
        """
        ticket = MigrationTicket(pid, dest)
        kernel = self.kernel_hosting(pid)
        if kernel is None:
            raise UnknownProcessError(f"{pid} is not running anywhere")

        def _done(success: bool, record: "MigrationCostRecord") -> None:
            ticket._complete(success, record)
            if on_done is not None:
                on_done(success, record)

        ticket.initiated = kernel.migration.start(pid, dest, on_done=_done)
        return ticket

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, until: int | None = None) -> None:
        """Serial windowed execution; with *until*, stop the clocks there."""
        self._require_not_forked()
        self._runner.run(horizon=until)

    def drain(self) -> None:
        """Serial execution to global quiescence."""
        self._require_not_forked()
        self._runner.run(horizon=None)

    def execute(
        self,
        until: int | None,
        collect: Callable[[Shard], Any],
        executor: str = "serial",
    ) -> list[Any]:
        """Run to *until*, drain, and gather one result per shard.

        ``collect`` runs against each shard after quiescence — in this
        process (serial) or inside the owning worker (fork), where it
        must return something picklable.  Both executors follow the
        identical window schedule, so the collected results match
        byte for byte.
        """
        if executor == "serial":
            self.run(until=until)
            self.drain()
            return [collect(shard) for shard in self.shards]
        if executor == "fork":
            return self._execute_forked(until, collect)
        raise ConfigError(f"unknown executor {executor!r}")

    def _require_not_forked(self) -> None:
        if self._forked:
            raise SimulationError(
                "this ShardedSystem already ran under the fork executor; "
                "its in-process state is stale (build a fresh system)"
            )

    def _execute_forked(
        self, until: int | None, collect: Callable[[Shard], Any]
    ) -> list[Any]:
        """One-shot forked execution: one worker per shard."""
        self._require_not_forked()
        if self._barrier_actions.pending():
            raise SimulationError(
                "barrier actions (fail-stop crashes under sharding) "
                "need the serial executor; forked workers have no "
                "global barrier hook"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            # No fork on this platform: the serial executor computes the
            # identical result (the schedule is shared), just without
            # parallel speedup.
            return self.execute(until, collect, executor="serial")
        self._forked = True
        ctx = multiprocessing.get_context("fork")
        count = len(self.shards)
        pair_conns: dict[int, dict[int, Any]] = {
            i: {} for i in range(count)
        }
        for i in range(count):
            for j in range(i + 1, count):
                a, b = ctx.Pipe()
                pair_conns[i][j] = a
                pair_conns[j][i] = b
        result_conns = []
        workers = []
        for index in range(count):
            parent_end, child_end = ctx.Pipe(duplex=False)
            worker = ctx.Process(
                target=_forked_worker,
                name=f"shard-{index}",
                args=(
                    self, index, pair_conns, child_end, until, collect,
                ),
            )
            worker.start()
            child_end.close()
            result_conns.append(parent_end)
            workers.append(worker)
        # The parent must not hold write ends of the inter-worker pipes,
        # or a dead worker's peers would block forever instead of seeing
        # EOF and unwinding.
        for conns in pair_conns.values():
            for conn in conns.values():
                conn.close()
        results: list[Any] = [None] * count
        failed: list[int] = []
        for index, conn in enumerate(result_conns):
            try:
                results[index] = conn.recv()
            except EOFError:
                failed.append(index)
            finally:
                conn.close()
        for worker in workers:
            worker.join()
        if failed:
            codes = {i: workers[i].exitcode for i in failed}
            raise SimulationError(
                f"shard worker(s) {failed} died (exit codes {codes}); "
                "a common cause is a live cross-shard payload (e.g. "
                "migrating a live process generator between shards), "
                "which cannot cross a fork boundary — the serial "
                "executors (classic and elided) support it"
            )
        return results

    # ------------------------------------------------------------------
    # Inspection (serial executor / post-build)
    # ------------------------------------------------------------------

    def _publish_sim_metrics(
        self, registry: MetricsRegistry, shard: Shard
    ) -> None:
        registry.gauge("sim.now_us", shard=shard.index).set(shard.loop.now)
        registry.counter(
            "sim.events_fired", shard=shard.index
        ).set_total(shard.loop.events_fired)
        for name, value in shard.network.sync.as_dict().items():
            registry.counter(
                f"sim.sync.{name}", shard=shard.index
            ).set_total(value)

    def kernels_in_machine_order(self) -> list[Kernel]:
        """Every kernel, ordered by machine id."""
        return [self.kernel(m) for m in self.topology.machines]

    def kernel_hosting(self, pid: ProcessId) -> Kernel | None:
        """The kernel where *pid* currently lives (omniscient; only
        meaningful under the serial executor)."""
        for kernel in self.kernels_in_machine_order():
            if pid in kernel.processes:
                return kernel
        return None

    def where_is(self, pid: ProcessId) -> MachineId | None:
        """The machine currently hosting *pid*, or None."""
        kernel = self.kernel_hosting(pid)
        return kernel.machine if kernel is not None else None

    def is_alive(self, pid: ProcessId) -> bool:
        """Whether *pid* is still running somewhere (serial executor)."""
        return self.kernel_hosting(pid) is not None

    def total_forwarding_entries(self) -> int:
        """Forwarding addresses currently installed system-wide."""
        return sum(
            len(kernel.forwarding)
            for kernel in self.kernels_in_machine_order()
        )

    def events_fired(self) -> int:
        """Events executed across all shards (shard-count independent)."""
        return sum(shard.loop.events_fired for shard in self.shards)

    def now(self) -> int:
        """The common barrier clock (max over shard clocks)."""
        return max(shard.loop.now for shard in self.shards)

    def quiescent(self) -> bool:
        """No pending events, no queued hops, nothing awaiting an ack."""
        return all(
            shard.loop.pending_events == 0
            and shard.network.in_flight() == 0
            and shard.network.unacked() == 0
            for shard in self.shards
        )

    def migration_records(self) -> list["MigrationCostRecord"]:
        """Every completed migration's cost record, ordered by start."""
        records = [
            record
            for kernel in self.kernels_in_machine_order()
            for record in kernel.migration.completed
        ]
        return sorted(records, key=lambda r: r.started_at)

    def snapshot(self) -> MetricsSnapshot:
        """One merged metrics snapshot across every shard registry."""
        from repro.obs.metrics import merge_snapshots

        return merge_snapshots(
            [shard.metrics.snapshot() for shard in self.shards]
        )

    def __repr__(self) -> str:
        return (
            f"ShardedSystem(machines={self.config.machines},"
            f" shards={len(self.shards)},"
            f" lookahead={self.plan.lookahead}us,"
            f" now={self.now()}us, events={self.events_fired()})"
        )


def _forked_worker(
    system: ShardedSystem,
    index: int,
    pair_conns: dict[int, dict[int, Any]],
    result_conn: Any,
    until: int | None,
    collect: Callable[[Shard], Any],
) -> None:  # pragma: no cover — runs in forked children
    """Worker body: drive one shard to quiescence, ship the collection.

    Runs in a forked child, so it inherits the fully built system; it
    only ever *executes* its own shard's loop.  (Coverage is measured
    in the parent; the serial executor exercises the same barrier
    schedule in-process.)
    """
    for i, conns in pair_conns.items():
        for j, conn in conns.items():
            if i != index:
                conn.close()
    network = system.shards[index].network
    if system.config.barrier_elision:
        barrier: WorkerBarrier = ElidedWorkerBarrier(
            index, pair_conns[index], system.plan.lookahead,
            system.plan.pair_periods, sync=network.sync,
        )
    else:
        barrier = WorkerBarrier(
            index, pair_conns[index], system.plan.lookahead,
            sync=network.sync,
        )
    runtime = ShardRuntime(system.shards[index])
    barrier.run(runtime, horizon=until)
    barrier.run(runtime, horizon=None)
    result_conn.send(collect(system.shards[index]))
    result_conn.close()
