"""Structured tracing for simulation runs.

The tracer records ``(time, category, event, fields)`` tuples.  Tests and
benchmarks assert on traces (e.g. "exactly 9 admin messages during a
migration"); examples print them for narration.  Recording is cheap and can
be filtered per category; an optional bound turns the buffer into a ring.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced event."""

    time: int
    category: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:>10}us] {self.category}.{self.event} {detail}"


class Tracer:
    """Collects :class:`TraceRecord` entries for a run.

    Categories used by the library:

    - ``net``       packet / transport events
    - ``kernel``    message delivery, syscalls, scheduling
    - ``migrate``   the 8-step migration protocol
    - ``forward``   forwarding-address hits
    - ``linkupd``   link-update messages and applications
    - ``server``    system-process request handling
    - ``policy``    migration decisions
    """

    __slots__ = ("_clock_fn", "_records", "_enabled", "_listeners", "dropped")

    def __init__(
        self,
        clock_fn: Callable[[], int],
        max_records: int | None = None,
        enabled_categories: Iterable[str] | None = None,
    ) -> None:
        self._clock_fn = clock_fn
        self._records: deque[TraceRecord] = deque(maxlen=max_records)
        self._enabled: set[str] | None = (
            set(enabled_categories) if enabled_categories is not None else None
        )
        self._listeners: list[Callable[[TraceRecord], None]] = []
        self.dropped = 0

    def enabled(self, category: str) -> bool:
        """Whether records in *category* are currently collected."""
        return self._enabled is None or category in self._enabled

    def wants(self, category: str) -> bool:
        """Guard for hot call sites: skip building the record entirely.

        Returns whether *category* is collected — and, when it is not,
        counts the suppressed record in :attr:`dropped`, exactly as the
        unguarded ``record()`` call would have.  Use as::

            if tracer.wants("kernel"):
                tracer.record("kernel", "deliver", pid=str(pid), ...)

        so the field formatting is never paid when tracing is off.
        """
        if self._enabled is None or category in self._enabled:
            return True
        self.dropped += 1
        return False

    def record(self, category: str, event: str, **fields: Any) -> None:
        """Record one event if its category is enabled."""
        if not self.enabled(category):
            self.dropped += 1
            return
        rec = TraceRecord(self._clock_fn(), category, event, fields)
        self._records.append(rec)
        for listener in self._listeners:
            listener(rec)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke *listener* synchronously for every new record."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Stop invoking *listener*.  Unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def records(
        self,
        category: str | None = None,
        event: str | None = None,
    ) -> list[TraceRecord]:
        """Return collected records, optionally filtered."""
        return [
            r
            for r in self._records
            if (category is None or r.category == category)
            and (event is None or r.event == event)
        ]

    def count(self, category: str, event: str | None = None) -> int:
        """Number of records matching the filter."""
        return len(self.records(category, event))

    def clear(self) -> None:
        """Drop all collected records (listeners stay subscribed)."""
        self._records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
