"""Measurement: migration cost ledgers and system-wide reports."""

from repro.stats.collector import (
    SystemReport,
    collect_report,
    report_from_snapshot,
)
from repro.stats.migration_cost import SEGMENTS, MigrationCostRecord
from repro.stats.timeline import (
    TimelineEntry,
    forwarding_story,
    migration_timeline,
    render_timeline,
)

__all__ = [
    "MigrationCostRecord",
    "SEGMENTS",
    "SystemReport",
    "TimelineEntry",
    "collect_report",
    "forwarding_story",
    "migration_timeline",
    "render_timeline",
    "report_from_snapshot",
]
