"""System-wide measurement reports.

Builds the "means to collect the above information in one place" the
paper lists as a prerequisite for migration decision rules (§3.1).  The
report no longer scrapes each component by hand: every kernel, the
network, and the migration engines publish into the system's
:class:`~repro.obs.metrics.MetricsRegistry`, and the report is a typed
view over one registry snapshot.  ``SystemReport.to_dict()`` is the
machine-readable form ``python -m repro report --json`` emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System
    from repro.sim.shard import ShardedSystem

#: scalar network counters surfaced in ``SystemReport.network``
_NETWORK_SCALARS = (
    "packets_sent",
    "packets_delivered",
    "packets_dropped",
    "packets_duplicated",
    "retransmissions",
    "bytes_sent",
    "payload_bytes_sent",
)

#: histogram the closed-loop client pool publishes request latencies into
_REQUEST_LATENCY = "workload.request_latency_us"


def _digest(histogram) -> dict[str, Any]:
    return {
        "count": histogram.count,
        "mean_us": histogram.mean,
        "p50_us": histogram.p50,
        "p95_us": histogram.p95,
        "p99_us": histogram.p99,
        "max_us": histogram.max,
    }


def _latency_summary(snapshot: MetricsSnapshot) -> dict[str, Any] | None:
    """p50/p95/p99/max request-latency digest, or None when no
    request-scale workload ran."""
    histogram = snapshot.histogram(_REQUEST_LATENCY)
    if histogram is None or not histogram.count:
        return None
    return _digest(histogram)


def _latency_by_domain(snapshot: MetricsSnapshot) -> dict[str, Any]:
    """Per-domain request-latency digests (empty without domain labels).

    The open-loop client pool publishes each service's latencies into a
    ``domain=<label>`` series alongside the global histogram; these are
    the digests an SLO balancer acts on, surfaced so reports show *which*
    neighbourhood's tail breached.
    """
    return {
        str(domain): _digest(histogram)
        for domain, histogram in sorted(
            snapshot.histogram_by_label(_REQUEST_LATENCY, "domain").items(),
            key=lambda item: str(item[0]),
        )
        if histogram.count
    }


@dataclass
class SystemReport:
    """A snapshot of everything measurable about a run."""

    now: int
    machines: int
    processes_alive: int
    processes_exited: int
    migrations_completed: int
    migrations_refused: int
    total_downtime: int
    admin_messages: int
    admin_bytes: int
    state_bytes_moved: int
    pending_messages_forwarded: int
    messages_forwarded: int
    link_updates_applied: int
    links_retargeted: int
    forwarding_entries: int
    forwarding_residual_bytes: int
    network: dict[str, int] = field(default_factory=dict)
    sends_by_category: dict[str, int] = field(default_factory=dict)
    per_machine_load: dict[int, int] = field(default_factory=dict)
    #: injected chaos faults by kind (empty when no campaign ran)
    chaos_faults: dict[str, int] = field(default_factory=dict)
    #: barrier/sync traffic between shard workers (empty off the
    #: sharded engine; a function of shard count, not of the workload)
    sync_overhead: dict[str, int] = field(default_factory=dict)
    #: end-to-end request latency digest (None without a closed-loop run)
    request_latency: dict[str, Any] | None = None
    #: per-domain latency digests (empty unless the pool labels domains)
    request_latency_by_domain: dict[str, Any] = field(default_factory=dict)

    def lines(self) -> list[str]:
        """Human-readable rendering, one fact per line."""
        out = [
            f"t={self.now}us across {self.machines} machines",
            f"processes: {self.processes_alive} alive, "
            f"{self.processes_exited} exited",
            f"migrations: {self.migrations_completed} completed, "
            f"{self.migrations_refused} refused; total downtime "
            f"{self.total_downtime}us",
            f"migration admin traffic: {self.admin_messages} messages, "
            f"{self.admin_bytes} payload bytes",
            f"state moved: {self.state_bytes_moved} bytes; pending "
            f"messages forwarded: {self.pending_messages_forwarded}",
            f"forwarding: {self.messages_forwarded} redirects, "
            f"{self.forwarding_entries} live entries "
            f"({self.forwarding_residual_bytes} bytes)",
            f"link updates applied: {self.link_updates_applied} "
            f"({self.links_retargeted} links retargeted)",
        ]
        if any(self.sync_overhead.values()):
            sync = self.sync_overhead
            out.append(
                f"shard sync: {sync.get('rounds', 0)} barrier rounds, "
                f"{sync.get('records_sent', 0)} records / "
                f"{sync.get('bytes_sent', 0)} bytes shipped, "
                f"{sync.get('windows_elided', 0)} windows elided"
            )
        if self.chaos_faults:
            injected = ", ".join(
                f"{count} {kind}"
                for kind, count in sorted(self.chaos_faults.items())
            )
            out.append(f"chaos faults injected: {injected}")
        if self.request_latency is not None:
            digest = self.request_latency
            out.append(
                f"request latency: p50 {digest['p50_us']:.0f}us, "
                f"p95 {digest['p95_us']:.0f}us, "
                f"p99 {digest['p99_us']:.0f}us, "
                f"max {digest['max_us']:.0f}us "
                f"({digest['count']} requests)"
            )
        for domain, digest in self.request_latency_by_domain.items():
            out.append(
                f"  domain {domain}: p50 {digest['p50_us']:.0f}us, "
                f"p99 {digest['p99_us']:.0f}us "
                f"({digest['count']} requests)"
            )
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict with every headline number."""
        return {
            "now_us": self.now,
            "machines": self.machines,
            "processes_alive": self.processes_alive,
            "processes_exited": self.processes_exited,
            "migrations_completed": self.migrations_completed,
            "migrations_refused": self.migrations_refused,
            "total_downtime_us": self.total_downtime,
            "admin_messages": self.admin_messages,
            "admin_bytes": self.admin_bytes,
            "state_bytes_moved": self.state_bytes_moved,
            "pending_messages_forwarded": self.pending_messages_forwarded,
            "messages_forwarded": self.messages_forwarded,
            "link_updates_applied": self.link_updates_applied,
            "links_retargeted": self.links_retargeted,
            "forwarding_entries": self.forwarding_entries,
            "forwarding_residual_bytes": self.forwarding_residual_bytes,
            "network": dict(self.network),
            "sends_by_category": dict(self.sends_by_category),
            "per_machine_load": {
                str(machine): load
                for machine, load in self.per_machine_load.items()
            },
            "chaos_faults": dict(self.chaos_faults),
            "sync_overhead": dict(self.sync_overhead),
            "request_latency": (
                dict(self.request_latency)
                if self.request_latency is not None
                else None
            ),
            "request_latency_by_domain": {
                domain: dict(digest)
                for domain, digest in self.request_latency_by_domain.items()
            },
        }


def report_from_snapshot(
    snapshot: MetricsSnapshot, now: int, machines: int
) -> SystemReport:
    """Assemble a :class:`SystemReport` from one registry snapshot."""
    return SystemReport(
        now=now,
        machines=machines,
        processes_alive=int(snapshot.total("kernel.processes_alive")),
        processes_exited=int(snapshot.total("kernel.processes_exited")),
        migrations_completed=int(snapshot.total("migration.completed")),
        migrations_refused=int(snapshot.total("migration.refused")),
        total_downtime=int(snapshot.total("migration.downtime_us_total")),
        admin_messages=int(snapshot.total("migration.admin_messages")),
        admin_bytes=int(snapshot.total("migration.admin_bytes")),
        state_bytes_moved=int(snapshot.total("migration.state_bytes")),
        pending_messages_forwarded=int(
            snapshot.total("migration.pending_forwarded")
        ),
        messages_forwarded=int(snapshot.total("kernel.messages_forwarded")),
        link_updates_applied=int(
            snapshot.total("kernel.link_updates_applied")
        ),
        links_retargeted=int(snapshot.total("kernel.links_retargeted")),
        forwarding_entries=int(snapshot.total("kernel.forwarding_entries")),
        forwarding_residual_bytes=int(
            snapshot.total("kernel.forwarding_bytes")
        ),
        network={
            name: int(snapshot.get(f"net.{name}"))
            for name in _NETWORK_SCALARS
        },
        sends_by_category={
            category: int(count)
            for category, count in snapshot.by_label(
                "net.sends", "category"
            ).items()
        },
        per_machine_load={
            machine: int(load)
            for machine, load in snapshot.by_label(
                "kernel.run_queue", "machine"
            ).items()
        },
        chaos_faults={
            kind: int(count)
            for kind, count in snapshot.by_label(
                "chaos.faults", "kind"
            ).items()
        },
        sync_overhead={
            name.removeprefix("sim.sync."): int(snapshot.total(name))
            for name in sorted(snapshot.counters)
            if name.startswith("sim.sync.")
        },
        request_latency=_latency_summary(snapshot),
        request_latency_by_domain=_latency_by_domain(snapshot),
    )


def collect_report(system: "System") -> SystemReport:
    """Build a :class:`SystemReport` from a (possibly running) system."""
    return report_from_snapshot(
        system.metrics.snapshot(),
        now=system.loop.now,
        machines=len(system.kernels),
    )


def collect_sharded_report(system: "ShardedSystem") -> SystemReport:
    """Build one :class:`SystemReport` from a sharded system.

    Takes each shard registry's snapshot and folds them with
    :func:`repro.obs.metrics.merge_snapshots`, so the report reads
    exactly like a single-loop run's: counters sum, the request-latency
    histogram is the merged distribution across all shards.
    """
    return report_from_snapshot(
        system.snapshot(),
        now=system.now(),
        machines=system.config.machines,
    )


def sharded_report_from_snapshots(
    snapshots: list[MetricsSnapshot], now: int, machines: int
) -> SystemReport:
    """Assemble one report from already-collected per-shard snapshots.

    The fork executor ships each worker's :class:`MetricsSnapshot` back
    over a pipe; this merges them without needing the (stale) parent
    system object.
    """
    from repro.obs.metrics import merge_snapshots

    return report_from_snapshot(
        merge_snapshots(snapshots), now=now, machines=machines
    )
