"""System-wide measurement reports.

Aggregates the counters scattered across the network and the kernels into
one flat report — the "means to collect the above information in one
place" the paper lists as a prerequisite for migration decision rules
(§3.1), and the thing examples print at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System


@dataclass
class SystemReport:
    """A snapshot of everything measurable about a run."""

    now: int
    machines: int
    processes_alive: int
    processes_exited: int
    migrations_completed: int
    migrations_refused: int
    total_downtime: int
    admin_messages: int
    admin_bytes: int
    state_bytes_moved: int
    pending_messages_forwarded: int
    messages_forwarded: int
    link_updates_applied: int
    links_retargeted: int
    forwarding_entries: int
    forwarding_residual_bytes: int
    network: dict[str, int] = field(default_factory=dict)
    sends_by_category: dict[str, int] = field(default_factory=dict)
    per_machine_load: dict[int, int] = field(default_factory=dict)

    def lines(self) -> list[str]:
        """Human-readable rendering, one fact per line."""
        out = [
            f"t={self.now}us across {self.machines} machines",
            f"processes: {self.processes_alive} alive, "
            f"{self.processes_exited} exited",
            f"migrations: {self.migrations_completed} completed, "
            f"{self.migrations_refused} refused; total downtime "
            f"{self.total_downtime}us",
            f"migration admin traffic: {self.admin_messages} messages, "
            f"{self.admin_bytes} payload bytes",
            f"state moved: {self.state_bytes_moved} bytes; pending "
            f"messages forwarded: {self.pending_messages_forwarded}",
            f"forwarding: {self.messages_forwarded} redirects, "
            f"{self.forwarding_entries} live entries "
            f"({self.forwarding_residual_bytes} bytes)",
            f"link updates applied: {self.link_updates_applied} "
            f"({self.links_retargeted} links retargeted)",
        ]
        return out


def collect_report(system: "System") -> SystemReport:
    """Build a :class:`SystemReport` from a (possibly running) system."""
    records = system.migration_records()
    completed = [r for r in records if r.success]
    refused = [r for r in records if r.success is False]
    return SystemReport(
        now=system.loop.now,
        machines=len(system.kernels),
        processes_alive=sum(len(k.processes) for k in system.kernels),
        processes_exited=sum(
            k.stats.processes_exited for k in system.kernels
        ),
        migrations_completed=len(completed),
        migrations_refused=len(refused),
        total_downtime=sum(r.downtime or 0 for r in completed),
        admin_messages=sum(r.admin_message_count for r in records),
        admin_bytes=sum(r.admin_bytes for r in records),
        state_bytes_moved=sum(r.state_transfer_bytes for r in completed),
        pending_messages_forwarded=sum(
            r.pending_forwarded for r in completed
        ),
        messages_forwarded=sum(
            k.stats.messages_forwarded for k in system.kernels
        ),
        link_updates_applied=sum(
            k.stats.link_updates_applied for k in system.kernels
        ),
        links_retargeted=sum(
            k.stats.links_retargeted for k in system.kernels
        ),
        forwarding_entries=system.total_forwarding_entries(),
        forwarding_residual_bytes=sum(
            k.forwarding.storage_bytes for k in system.kernels
        ),
        network=system.network.stats.snapshot(),
        sends_by_category=dict(
            system.network.stats.sends_by_category
        ),
        per_machine_load={
            k.machine: k.scheduler.load for k in system.kernels
        },
    )
