"""Per-migration cost ledger (paper §6).

The paper separates the cost of moving a process into the *state transfer
cost* (three data moves: program, resident state, swappable state, plus
forwarding the pending message queue) and the *administrative cost*
(nine 6-12 byte control messages).  Every migration fills in one
:class:`MigrationCostRecord`, which benchmark E1 reads back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.ids import ProcessId
from repro.net.topology import MachineId

#: The three data moves of §6, in transfer order.
SEGMENTS = ("resident", "swappable", "program")


@dataclass
class MigrationCostRecord:
    """Everything one migration cost, as observed from the source kernel."""

    pid: ProcessId
    source: MachineId
    dest: MachineId
    started_at: int
    success: bool | None = None
    #: (op, payload_bytes) for each administrative message the source sent
    #: or received; a successful migration logs exactly nine
    admin_messages: list[tuple[str, int]] = field(default_factory=list)
    #: bytes per data move, keyed by segment name
    segment_bytes: dict[str, int] = field(default_factory=dict)
    #: number of move-data packets used for the state transfer
    datamove_chunks: int = 0
    #: messages that were pending in the queue and had to be forwarded
    pending_forwarded: int = 0
    #: simulated time the process restarted on the destination
    restarted_at: int | None = None
    #: simulated time the source learned the migration finished
    completed_at: int | None = None
    refusal_reason: str | None = None

    def note_admin(self, op: str, payload_bytes: int) -> None:
        """Log one administrative message."""
        self.admin_messages.append((op, payload_bytes))

    @property
    def admin_message_count(self) -> int:
        """How many administrative messages this migration used."""
        return len(self.admin_messages)

    @property
    def admin_bytes(self) -> int:
        """Total administrative payload bytes."""
        return sum(size for _op, size in self.admin_messages)

    @property
    def state_transfer_bytes(self) -> int:
        """Total bytes of the three data moves."""
        return sum(self.segment_bytes.values())

    @property
    def downtime(self) -> int | None:
        """Microseconds the process was unrunnable (freeze to restart)."""
        if self.restarted_at is None:
            return None
        return self.restarted_at - self.started_at

    @property
    def duration(self) -> int | None:
        """Microseconds from initiation until the source saw completion."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def summary(self) -> dict[str, object]:
        """A flat dict suitable for printing as a benchmark row."""
        return {
            "pid": str(self.pid),
            "source": self.source,
            "dest": self.dest,
            "success": self.success,
            "admin_messages": self.admin_message_count,
            "admin_bytes": self.admin_bytes,
            "resident_bytes": self.segment_bytes.get("resident", 0),
            "swappable_bytes": self.segment_bytes.get("swappable", 0),
            "program_bytes": self.segment_bytes.get("program", 0),
            "datamove_chunks": self.datamove_chunks,
            "pending_forwarded": self.pending_forwarded,
            "downtime_us": self.downtime,
            "duration_us": self.duration,
        }
