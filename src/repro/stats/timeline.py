"""Render migration traces as text timelines.

Turns the tracer's ``migrate``/``forward``/``linkupd`` records into the
kind of annotated timeline the paper draws in Figure 3-1 — useful in
examples and when debugging protocol changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import Tracer

#: Events rendered, with their display labels.
_LABELS = {
    "step1-freeze": "1 freeze (source)",
    "step2-request": "2 request -> destination",
    "step3-allocate": "3 allocate state (destination)",
    "step4-state": "4 transfer state",
    "step5-program": "5 transfer program",
    "step6-forward-pending": "6 forward pending messages (source)",
    "step7-cleanup": "7 cleanup + forwarding address (source)",
    "step8-restart": "8 restart (destination)",
}


@dataclass(frozen=True)
class TimelineEntry:
    """One rendered event."""

    time: int
    label: str
    detail: str


def migration_timeline(
    tracer: Tracer, pid: str | None = None
) -> list[TimelineEntry]:
    """Extract the migration steps (optionally for one pid) in order."""
    entries = []
    for record in tracer.records("migrate"):
        if pid is not None and record.fields.get("pid") != pid:
            continue
        label = _LABELS.get(record.event)
        if label is None:
            continue
        detail = " ".join(
            f"{key}={value}"
            for key, value in record.fields.items()
            if key != "pid"
        )
        entries.append(TimelineEntry(record.time, label, detail))
    return entries


def render_timeline(
    entries: list[TimelineEntry],
    width: int = 40,
) -> str:
    """An ASCII timeline with proportional spacing.

    >>> from repro.sim.trace import Tracer
    >>> tracer = Tracer(lambda: 0)
    >>> tracer.record("migrate", "step1-freeze", pid="p0.1")
    >>> print(render_timeline(migration_timeline(tracer)))
    t=         0us |> 1 freeze (source)
    """
    if not entries:
        return "(no migration events)"
    start = entries[0].time
    span = max(entries[-1].time - start, 1)
    lines = []
    for entry in entries:
        offset = (entry.time - start) * width // span
        bar = " " * offset + "|>"
        detail = f"  [{entry.detail}]" if entry.detail else ""
        lines.append(
            f"t={entry.time:>10}us {bar} {entry.label}{detail}"
        )
    return "\n".join(lines)


def forwarding_story(tracer: Tracer, pid: str) -> list[str]:
    """Narrate every forwarding hit and link update for *pid*."""
    story = []
    for record in tracer:
        if record.category == "forward" and record.event == "hit":
            if record.fields.get("pid") == pid:
                story.append(
                    f"t={record.time}us: message #"
                    f"{record.fields.get('serial')} redirected to machine "
                    f"{record.fields.get('to')} (hop "
                    f"{record.fields.get('hop')})"
                )
        elif record.category == "linkupd" and record.event == "applied":
            if record.fields.get("target") == pid:
                story.append(
                    f"t={record.time}us: {record.fields.get('sender')}'s "
                    f"links retargeted to machine "
                    f"{record.fields.get('new_machine')} "
                    f"({record.fields.get('changed')} changed)"
                )
    return story
