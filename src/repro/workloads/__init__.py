"""Synthetic workloads for examples, tests, and benchmarks."""

from repro.workloads.closed_loop import (
    REQUEST_LATENCY_METRIC,
    ClientPool,
    ClosedLoopConfig,
)
from repro.workloads.compute import compute_bound, migratory_compute
from repro.workloads.file_clients import file_io_client, file_reader
from repro.workloads.generators import (
    Arrival,
    ArrivalGenerator,
    burst_plan,
    poisson_plan,
)
from repro.workloads.pingpong import echo_server, make_pair_programs, pinger
from repro.workloads.results import DEFAULT_BOARD, ResultsBoard

__all__ = [
    "Arrival",
    "ArrivalGenerator",
    "ClientPool",
    "ClosedLoopConfig",
    "DEFAULT_BOARD",
    "REQUEST_LATENCY_METRIC",
    "ResultsBoard",
    "burst_plan",
    "compute_bound",
    "echo_server",
    "file_io_client",
    "file_reader",
    "make_pair_programs",
    "migratory_compute",
    "pinger",
    "poisson_plan",
]
