"""Request/reply client pools: the *user's* view of migration.

Two traffic models share one :class:`ClientPool`:

- **closed loop** (:class:`ClosedLoopConfig`) — N simulated users, each
  sending one request, waiting for the reply, thinking for a sampled
  delay, then sending the next.  Offered load adapts to how fast the
  system answers, so the request count is exactly the configured quota.
- **open loop** (:class:`OpenLoopConfig`) — every client sends on a
  pre-drawn Poisson schedule *whether or not earlier replies have
  arrived*.  Slow service no longer throttles the arrival rate (the
  coordinated-omission trap of closed loops), so queues genuinely build
  when demand exceeds capacity — which is what an SLO-driven migration
  policy needs to see.  A :class:`LoadShape` modulates the arrival rate
  over time (steady, burst, diurnal ramp) and can skew demand onto a
  few hot services (hot-key).

A server that migrates mid-conversation — or answers through a
forwarding chain — stretches the *observed response time* of exactly
the requests it delayed, and the paper's §6 per-event cost analysis
becomes a request-latency distribution, the metric interactive services
are actually judged on (means hide the damage; percentiles don't).

Latencies land in a :class:`~repro.obs.metrics.LatencyHistogram` in the
system's metrics registry, so ``report --json``, the metrics exporters
and the benchmark artifacts all see p50/p95/p99 without extra plumbing.
Open-loop pools can additionally partition latencies into per-domain
histograms (``domain=<label>``) whose bitwise merge equals the global
digest — the per-domain series an SLO balancer consumes.

Determinism: think times and arrival schedules are pre-drawn from one
named random stream at install time, in client-index order, so the same
seed and config yield the same per-request timing regardless of how the
event loop interleaves the clients at run time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Mapping, Sequence

from repro.kernel.context import ProcessContext
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.servers.common import lookup_service, rpc
from repro.workloads.results import ResultsBoard

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System

#: registry name for the pool's end-to-end request latency histogram
REQUEST_LATENCY_METRIC = "workload.request_latency_us"

#: rate profiles :class:`LoadShape` understands
LOAD_SHAPE_KINDS = ("steady", "burst", "diurnal", "hot_key")


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Shape of one closed-loop client pool."""

    clients: int = 4
    requests_per_client: int = 10
    #: mean think time between a reply and the next request (exponential;
    #: 0 disables thinking entirely)
    mean_think_us: int = 2_000
    payload_bytes: int = 32
    #: simulated time of the first client spawn
    start_at: int = 1_000
    #: spawn spacing between successive clients (staggers the switchboard
    #: lookups, like real users arriving over time)
    stagger_us: int = 500
    #: named random stream the think times are drawn from
    stream: str = "closed-loop"
    metric: str = REQUEST_LATENCY_METRIC

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError(f"need at least one client, got {self.clients}")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be positive")
        if self.mean_think_us < 0 or self.start_at < 0 or self.stagger_us < 0:
            raise ValueError("times must be non-negative")


@dataclass(frozen=True)
class LoadShape:
    """Time-varying arrival-rate profile plus per-service demand skew.

    ``kind`` selects the rate profile: ``steady`` (flat), ``burst``
    (``burst_factor``x inside ``[burst_start, burst_end)``, relative to
    the pool's ``start_at``), ``diurnal`` (linear ramp from 1x to
    ``ramp_factor``x over the arrival window), ``hot_key`` (flat rate,
    but demand skew required).  The skew fields apply under *any* kind —
    a burst can be aimed at hot services — and default to uniform.
    """

    kind: str = "steady"
    #: burst window, microseconds relative to the pool's ``start_at``
    burst_start: int = 0
    burst_end: int = 0
    burst_factor: float = 4.0
    #: diurnal: rate multiplier reached at the end of the window
    ramp_factor: float = 2.0
    #: the first *hot_services* service names absorb *hot_share* of the
    #: clients between them (0 = uniform demand across all services)
    hot_services: int = 1
    hot_share: float = 0.0

    def validate(self) -> None:
        if self.kind not in LOAD_SHAPE_KINDS:
            raise ValueError(
                f"unknown load shape {self.kind!r}; "
                f"choose from {LOAD_SHAPE_KINDS}"
            )
        if not 0.0 <= self.hot_share <= 1.0:
            raise ValueError("hot_share must be within [0, 1]")
        if self.hot_services < 1:
            raise ValueError("hot_services must be positive")
        if self.kind == "burst":
            if self.burst_end <= self.burst_start or self.burst_start < 0:
                raise ValueError("burst window must be non-empty")
            if self.burst_factor <= 0:
                raise ValueError("burst_factor must be positive")
        if self.kind == "diurnal" and self.ramp_factor <= 0:
            raise ValueError("ramp_factor must be positive")
        if self.kind == "hot_key" and self.hot_share == 0.0:
            raise ValueError("hot_key shape needs hot_share > 0")

    def rate_factor(self, elapsed: int, duration: int) -> float:
        """Arrival-rate multiplier at *elapsed* us into the window."""
        if self.kind == "burst":
            if self.burst_start <= elapsed < self.burst_end:
                return self.burst_factor
            return 1.0
        if self.kind == "diurnal" and duration > 0:
            return 1.0 + (self.ramp_factor - 1.0) * min(
                1.0, elapsed / duration
            )
        return 1.0

    def service_weights(self, services: int) -> list[float]:
        """Per-service probability of absorbing one client."""
        hot = min(self.hot_services, services)
        if self.hot_share == 0.0 or hot == services:
            return [1.0 / services] * services
        cold = services - hot
        return [self.hot_share / hot] * hot + [
            (1.0 - self.hot_share) / cold
        ] * cold


@dataclass(frozen=True)
class OpenLoopConfig:
    """Shape of one open-loop (Poisson-arrival) client pool."""

    clients: int = 100
    #: mean gap between one client's requests at rate factor 1.0
    mean_interarrival_us: int = 100_000
    #: length of the arrival window, from ``start_at``
    duration: int = 1_000_000
    #: per-request SLO window: a reply later than this is *late*, never
    #: in-SLO, however long the client keeps listening for it
    deadline_us: int = 50_000
    #: how long a client waits for stragglers after its last send
    drain_grace_us: int = 300_000
    shape: LoadShape = field(default_factory=LoadShape)
    payload_bytes: int = 32
    #: simulated time of the first possible arrival
    start_at: int = 1_000
    #: spawn spacing between successive clients
    stagger_us: int = 0
    #: named random stream schedules and skew draws come from
    stream: str = "open-loop"
    metric: str = REQUEST_LATENCY_METRIC

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError(f"need at least one client, got {self.clients}")
        if self.mean_interarrival_us < 1:
            raise ValueError("mean_interarrival_us must be positive")
        if self.duration < 1:
            raise ValueError("duration must be positive")
        if self.deadline_us < 1:
            raise ValueError("deadline_us must be positive")
        if min(self.drain_grace_us, self.start_at, self.stagger_us) < 0:
            raise ValueError("times must be non-negative")
        self.shape.validate()


def open_loop_schedules(
    config: OpenLoopConfig, rng: random.Random
) -> list[list[int]]:
    """Pre-draw every client's absolute send times, in client order.

    A pure function of (config, rng state): the same seeded stream
    always yields the same schedule, which is what makes open-loop runs
    reproducible.  Rate modulation uses the piecewise-exponential
    approximation — each gap is drawn at the rate in force when it
    starts — which is deterministic and close enough for load shaping.
    """
    shape = config.shape
    end = config.start_at + config.duration
    schedules: list[list[int]] = []
    for _ in range(config.clients):
        at = float(config.start_at)
        times: list[int] = []
        while True:
            factor = shape.rate_factor(
                int(at) - config.start_at, config.duration
            )
            at += rng.expovariate(factor / config.mean_interarrival_us)
            if at >= end:
                break
            times.append(int(at))
        schedules.append(times)
    return schedules


class ClientPool:
    """N simulated users driving request/reply services.

    With a :class:`ClosedLoopConfig`, each client resolves one service
    name through the switchboard (the names cycle over *services*, so a
    pool can spread load across many servers), then alternates
    request -> reply -> think until it has completed its quota.  With an
    :class:`OpenLoopConfig`, each client instead fires requests on its
    pre-drawn Poisson schedule, matching replies back to requests by id
    as they arrive — so a slow server accumulates outstanding requests
    rather than slowing the offered load.

    Per-request latencies are observed into the registry's latency
    histogram; per-client request counts are kept in
    :attr:`request_counts` so tests can pin the exact vector.  Open-loop
    extras:

    - *domains* maps a service name to a domain label; each reply is
      then also observed into ``metric{domain=<label>}``, the per-domain
      digests an SLO balancer consumes (their bitwise merge equals the
      global histogram);
    - *addresses* maps service names to :class:`ProcessAddress`, letting
      tens of thousands of clients skip the switchboard stampede;
    - *spotlight* ``(label, start, end)`` additionally records requests
      *sent* inside ``[start, end)`` into ``metric{window=<label>}`` —
      how the e13 benchmark isolates the burst window's percentiles.
    """

    def __init__(
        self,
        system: "System",
        config: ClosedLoopConfig | OpenLoopConfig | None = None,
        *,
        services: Sequence[str] = ("echo",),
        machines: Sequence[int] | None = None,
        board: ResultsBoard | None = None,
        key: str = "closed-loop",
        domains: Mapping[str, str] | None = None,
        addresses: Mapping[str, ProcessAddress] | None = None,
        spotlight: tuple[str, int, int] | None = None,
    ) -> None:
        if not services:
            raise ValueError("need at least one service name")
        self.system = system
        self.config = config or ClosedLoopConfig()
        self.config.validate()
        self.services = tuple(services)
        self.machines = tuple(
            machines if machines is not None else system.topology.machines
        )
        self.board = board if board is not None else ResultsBoard()
        self.key = key
        self.domains = dict(domains) if domains else {}
        self.addresses = dict(addresses) if addresses else None
        self.spotlight = spotlight
        #: requests completed (closed loop) / sent (open loop), by client
        self.request_counts: list[int] = [0] * self.config.clients
        self.spawned: list[ProcessId] = []
        #: replies whose echoed payload did not match the request that
        #: was awaiting one — a duplicate, reordered, or cross-wired
        #: reply.  The chaos exactly-once invariant gates this at zero.
        self.mismatches = 0
        #: open-loop reply outcomes against the per-request deadline
        self.in_slo = 0
        self.late = 0
        #: open-loop requests still unanswered when their client gave up
        self.unanswered = 0
        self.finished_clients = 0
        metrics = system.metrics
        self._latency = metrics.latency_histogram(self.config.metric)
        self._completed = metrics.counter("workload.requests_completed")
        self._forwarded = metrics.counter("workload.replies_forwarded")
        self._mismatched = metrics.counter("workload.reply_mismatches")
        self._sent = metrics.counter("workload.requests_sent")
        self._slo_ok = metrics.counter("workload.replies_in_slo")
        self._slo_late = metrics.counter("workload.replies_late")
        self._domain_latency = {
            domain: metrics.latency_histogram(
                self.config.metric, domain=domain
            )
            for domain in sorted(set(self.domains.values()))
        }
        self._spot_latency = (
            metrics.latency_histogram(
                self.config.metric, window=spotlight[0]
            )
            if spotlight is not None
            else None
        )
        self._think_times: list[list[int]] = []
        self._schedules: list[list[int]] = []

    @property
    def open_loop(self) -> bool:
        """Whether this pool runs the open-loop arrival mode."""
        return isinstance(self.config, OpenLoopConfig)

    # ------------------------------------------------------------------

    def install(self) -> None:
        """Pre-draw every think time / arrival, then schedule spawns."""
        cfg = self.config
        rng = self.system.rngs.stream(cfg.stream)
        if self.open_loop:
            # Draw order matters for determinism: schedules first (in
            # client order), then the per-client service skew draws.
            self._schedules = open_loop_schedules(cfg, rng)
            assignments = self._assign_services(rng)
        else:
            mean = cfg.mean_think_us
            self._think_times = [
                [
                    int(rng.expovariate(1.0 / mean)) if mean else 0
                    for _ in range(cfg.requests_per_client)
                ]
                for _ in range(cfg.clients)
            ]
            assignments = [
                self.services[index % len(self.services)]
                for index in range(cfg.clients)
            ]
        start = 0 if self.open_loop else cfg.start_at
        for index in range(cfg.clients):
            machine = self.machines[index % len(self.machines)]
            service = assignments[index]
            at = start + index * cfg.stagger_us
            self.system.loop.call_at(
                at,
                lambda _i=index, _m=machine, _s=service: self._spawn_client(
                    _i, _m, _s
                ),
            )

    def _assign_services(self, rng: random.Random) -> list[str]:
        """One service per client: round-robin when demand is uniform,
        weighted draws when the shape skews it onto hot services."""
        cfg = self.config
        weights = cfg.shape.service_weights(len(self.services))
        if len(set(weights)) == 1:
            return [
                self.services[index % len(self.services)]
                for index in range(cfg.clients)
            ]
        return rng.choices(self.services, weights=weights, k=cfg.clients)

    def _spawn_client(self, index: int, machine: int, service: str) -> None:
        program = (
            (lambda ctx: self._open_client(ctx, index, service))
            if self.open_loop
            else (lambda ctx: self._client(ctx, index, service))
        )
        kernel = self.system.kernel(machine)
        extra_links = None
        if self.addresses is not None:
            extra_links = {"service": self.addresses[service]}
        self.spawned.append(
            kernel.spawn(
                program,
                name=f"{self.key}-{index}",
                extra_links=extra_links,
            )
        )

    @property
    def done(self) -> bool:
        """Whether every client has finished its conversation."""
        if self.open_loop:
            return self.finished_clients == self.config.clients
        quota = self.config.requests_per_client
        return all(count == quota for count in self.request_counts)

    # ------------------------------------------------------------------

    def _client(
        self, ctx: ProcessContext, index: int, service_name: str
    ) -> Generator[Any, Any, None]:
        cfg = self.config
        service = yield from lookup_service(ctx, service_name)
        thinks = self._think_times[index]
        server_machines: list[int] = []
        for round_no in range(cfg.requests_per_client):
            sent_at = ctx.now
            request = {"round": round_no, "client": index}
            reply = yield from rpc(
                ctx,
                service,
                "echo",
                request,
                payload_bytes=cfg.payload_bytes,
            )
            assert reply is not None
            if reply.payload.get("echo") != request:
                # The reply answering this request is not an echo of it:
                # exactly-once delivery was violated somewhere.
                self.mismatches += 1
                self._mismatched.inc()
            self._latency.observe(ctx.now - sent_at)
            self._completed.inc()
            if reply.payload.get("forwarded"):
                self._forwarded.inc()
            self.request_counts[index] += 1
            machine = reply.payload.get("machine")
            if not server_machines or machine != server_machines[-1]:
                server_machines.append(machine)
            think = thinks[round_no]
            if think:
                yield ctx.sleep(think)
        self.board.post(
            self.key,
            {
                "client": index,
                "service": service_name,
                "requests": self.request_counts[index],
                "server_machines": server_machines,
            },
        )
        self.finished_clients += 1
        yield ctx.exit()

    # ------------------------------------------------------------------
    # Open-loop mode
    # ------------------------------------------------------------------

    def _open_client(
        self, ctx: ProcessContext, index: int, service_name: str
    ) -> Generator[Any, Any, None]:
        """Fire requests on the pre-drawn schedule; match replies by id.

        Sends never wait for outstanding replies — that is the open-loop
        contract.  Replies are drained between sends (and for a grace
        period after the last one) and matched back to their request by
        the echoed ``req`` id; each reply's latency goes to the global,
        per-domain and spotlight histograms, and is judged against the
        per-request deadline: a reply arriving after its window is
        counted *late*, never in-SLO.
        """
        cfg = self.config
        if self.addresses is not None:
            service = ctx.bootstrap["service"]
        else:
            service = yield from lookup_service(ctx, service_name)
        domain = self.domains.get(service_name)
        schedule = self._schedules[index]
        #: req id -> (sent_at, reply link id)
        pending: dict[int, tuple[int, int]] = {}
        next_req = 0
        replies = 0
        while next_req < len(schedule) or pending:
            if next_req < len(schedule):
                due = schedule[next_req]
                if ctx.now >= due:
                    reply_link = yield ctx.create_link()
                    yield ctx.send(
                        service,
                        op="echo",
                        payload={"client": index, "req": next_req},
                        payload_bytes=cfg.payload_bytes,
                        links=(reply_link,),
                    )
                    pending[next_req] = (ctx.now, reply_link)
                    self.request_counts[index] += 1
                    self._sent.inc()
                    next_req += 1
                    continue
                message = yield ctx.receive(timeout=due - ctx.now)
            else:
                message = yield ctx.receive(timeout=cfg.drain_grace_us)
                if message is None:
                    break  # stragglers beyond the grace window are lost
            if message is None:
                continue  # timeout: the next scheduled send is due
            replies += 1
            yield from self._absorb_reply(ctx, index, domain, message, pending)
        self.unanswered += len(pending)
        self.board.post(
            self.key,
            {
                "client": index,
                "service": service_name,
                "sent": self.request_counts[index],
                "replies": replies,
                "unanswered": len(pending),
            },
        )
        self.finished_clients += 1
        yield ctx.exit()

    def _absorb_reply(
        self,
        ctx: ProcessContext,
        index: int,
        domain: str | None,
        message: Any,
        pending: dict[int, tuple[int, int]],
    ) -> Generator[Any, Any, None]:
        """Record one reply: latency, SLO verdict, bookkeeping."""
        payload = message.payload if isinstance(message.payload, dict) else {}
        echo = payload.get("echo")
        req = echo.get("req") if isinstance(echo, dict) else None
        entry = pending.pop(req, None) if req is not None else None
        if entry is None or (echo or {}).get("client") != index:
            # Not an echo of anything this client is waiting for:
            # exactly-once delivery was violated somewhere.
            self.mismatches += 1
            self._mismatched.inc()
            return
        sent_at, reply_link = entry
        latency = ctx.now - sent_at
        self._latency.observe(latency)
        if domain is not None:
            self._domain_latency[domain].observe(latency)
        if self.spotlight is not None:
            _, spot_start, spot_end = self.spotlight
            if spot_start <= sent_at < spot_end:
                self._spot_latency.observe(latency)
        self._completed.inc()
        if payload.get("forwarded"):
            self._forwarded.inc()
        # The deadline verdict: replies beyond the window are late, so
        # in_slo counts only requests the user would call answered.
        if latency <= self.config.deadline_us:
            self.in_slo += 1
            self._slo_ok.inc()
        else:
            self.late += 1
            self._slo_late.inc()
        yield ctx.destroy_link(reply_link)
