"""Closed-loop request/reply clients: the *user's* view of migration.

The open-loop generators in :mod:`repro.workloads.generators` keep
offering work no matter how slowly the system answers, so migration and
forwarding costs only ever surface as counter totals.  A closed-loop
pool models N simulated users instead: each sends one request over a
link, waits for the reply, thinks for a sampled delay, and only then
sends the next.  A server that migrates mid-conversation — or answers
through a forwarding chain — therefore stretches the *observed response
time* of exactly the requests it delayed, and the paper's §6 per-event
cost analysis becomes a request-latency distribution, the metric
interactive services are actually judged on (means hide the damage;
percentiles don't).

Latencies land in a :class:`~repro.obs.metrics.LatencyHistogram` in the
system's metrics registry, so ``report --json``, the metrics exporters
and the benchmark artifacts all see p50/p95/p99 without extra plumbing.

Determinism: think times are pre-drawn from one named random stream at
install time, in client-index order, so the same seed and config yield
the same per-request think times regardless of how the event loop
interleaves the clients at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.kernel.context import ProcessContext
from repro.kernel.ids import ProcessId
from repro.servers.common import lookup_service, rpc
from repro.workloads.results import ResultsBoard

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System

#: registry name for the pool's end-to-end request latency histogram
REQUEST_LATENCY_METRIC = "workload.request_latency_us"


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Shape of one closed-loop client pool."""

    clients: int = 4
    requests_per_client: int = 10
    #: mean think time between a reply and the next request (exponential;
    #: 0 disables thinking entirely)
    mean_think_us: int = 2_000
    payload_bytes: int = 32
    #: simulated time of the first client spawn
    start_at: int = 1_000
    #: spawn spacing between successive clients (staggers the switchboard
    #: lookups, like real users arriving over time)
    stagger_us: int = 500
    #: named random stream the think times are drawn from
    stream: str = "closed-loop"
    metric: str = REQUEST_LATENCY_METRIC

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError(f"need at least one client, got {self.clients}")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be positive")
        if self.mean_think_us < 0 or self.start_at < 0 or self.stagger_us < 0:
            raise ValueError("times must be non-negative")


class ClientPool:
    """N simulated users driving request/reply services in closed loop.

    Each client resolves one service name through the switchboard (the
    names cycle over *services*, so a pool can spread load across many
    servers), then alternates request -> reply -> think until it has
    completed its quota.  Per-request latencies are observed into the
    registry's latency histogram; per-client completions are kept in
    :attr:`request_counts` so tests can pin the exact request-count
    vector.
    """

    def __init__(
        self,
        system: "System",
        config: ClosedLoopConfig | None = None,
        *,
        services: Sequence[str] = ("echo",),
        machines: Sequence[int] | None = None,
        board: ResultsBoard | None = None,
        key: str = "closed-loop",
    ) -> None:
        if not services:
            raise ValueError("need at least one service name")
        self.system = system
        self.config = config or ClosedLoopConfig()
        self.config.validate()
        self.services = tuple(services)
        self.machines = tuple(
            machines if machines is not None else system.topology.machines
        )
        self.board = board if board is not None else ResultsBoard()
        self.key = key
        #: requests completed so far, indexed by client
        self.request_counts: list[int] = [0] * self.config.clients
        self.spawned: list[ProcessId] = []
        #: replies whose echoed payload did not match the request that
        #: was awaiting one — a duplicate, reordered, or cross-wired
        #: reply.  The chaos exactly-once invariant gates this at zero.
        self.mismatches = 0
        self._latency = system.metrics.latency_histogram(self.config.metric)
        self._completed = system.metrics.counter("workload.requests_completed")
        self._forwarded = system.metrics.counter("workload.replies_forwarded")
        self._mismatched = system.metrics.counter("workload.reply_mismatches")
        self._think_times: list[list[int]] = []

    # ------------------------------------------------------------------

    def install(self) -> None:
        """Pre-draw every think time, then schedule the client spawns."""
        cfg = self.config
        rng = self.system.rngs.stream(cfg.stream)
        mean = cfg.mean_think_us
        self._think_times = [
            [
                int(rng.expovariate(1.0 / mean)) if mean else 0
                for _ in range(cfg.requests_per_client)
            ]
            for _ in range(cfg.clients)
        ]
        for index in range(cfg.clients):
            machine = self.machines[index % len(self.machines)]
            service = self.services[index % len(self.services)]
            at = cfg.start_at + index * cfg.stagger_us
            self.system.loop.call_at(
                at,
                lambda _i=index, _m=machine, _s=service: self.spawned.append(
                    self.system.spawn(
                        lambda ctx: self._client(ctx, _i, _s),
                        machine=_m,
                        name=f"{self.key}-{_i}",
                    )
                ),
            )

    @property
    def done(self) -> bool:
        """Whether every client has completed its request quota."""
        quota = self.config.requests_per_client
        return all(count == quota for count in self.request_counts)

    # ------------------------------------------------------------------

    def _client(
        self, ctx: ProcessContext, index: int, service_name: str
    ) -> Generator[Any, Any, None]:
        cfg = self.config
        service = yield from lookup_service(ctx, service_name)
        thinks = self._think_times[index]
        server_machines: list[int] = []
        for round_no in range(cfg.requests_per_client):
            sent_at = ctx.now
            request = {"round": round_no, "client": index}
            reply = yield from rpc(
                ctx,
                service,
                "echo",
                request,
                payload_bytes=cfg.payload_bytes,
            )
            assert reply is not None
            if reply.payload.get("echo") != request:
                # The reply answering this request is not an echo of it:
                # exactly-once delivery was violated somewhere.
                self.mismatches += 1
                self._mismatched.inc()
            self._latency.observe(ctx.now - sent_at)
            self._completed.inc()
            if reply.payload.get("forwarded"):
                self._forwarded.inc()
            self.request_counts[index] += 1
            machine = reply.payload.get("machine")
            if not server_machines or machine != server_machines[-1]:
                server_machines.append(machine)
            think = thinks[round_no]
            if think:
                yield ctx.sleep(think)
        self.board.post(
            self.key,
            {
                "client": index,
                "service": service_name,
                "requests": self.request_counts[index],
                "server_machines": server_machines,
            },
        )
        yield ctx.exit()
