"""Compute-bound workloads: the raw material for load balancing (E9)."""

from __future__ import annotations

from typing import Any, Generator

from repro.core.registry import register_program
from repro.kernel.context import ProcessContext
from repro.workloads.results import DEFAULT_BOARD, ResultsBoard


@register_program("compute")
def compute_bound(
    ctx: ProcessContext,
    total: int = 50_000,
    slice_size: int = 5_000,
    board: ResultsBoard | None = None,
    key: str = "compute",
) -> Generator[Any, Any, None]:
    """Burn *total* microseconds of CPU in *slice_size* pieces, then exit.

    Posts ``{pid, started, finished, elapsed, machines}`` so benchmarks
    can compute makespans and see where the work actually ran.
    """
    board = board if board is not None else DEFAULT_BOARD
    started = ctx.now
    machines = [ctx.machine]
    remaining = total
    while remaining > 0:
        burst = min(slice_size, remaining)
        yield ctx.compute(burst)
        remaining -= burst
        if ctx.machine != machines[-1]:
            machines.append(ctx.machine)
    board.post(key, {
        "pid": ctx.pid,
        "started": started,
        "finished": ctx.now,
        "elapsed": ctx.now - started,
        "machines": machines,
    })
    yield ctx.exit()


@register_program("migratory-compute")
def migratory_compute(
    ctx: ProcessContext,
    total: int = 50_000,
    slice_size: int = 5_000,
    hop_to: int | None = None,
    hop_after: int = 10_000,
    board: ResultsBoard | None = None,
    key: str = "migratory-compute",
) -> Generator[Any, Any, None]:
    """A compute job that requests its own migration part-way (§3.1:
    "It is of course possible for a process to request its own
    migration")."""
    board = board if board is not None else DEFAULT_BOARD
    started = ctx.now
    done = 0
    hopped = False
    while done < total:
        burst = min(slice_size, total - done)
        yield ctx.compute(burst)
        done += burst
        if not hopped and hop_to is not None and done >= hop_after:
            hopped = True
            yield ctx.request_migration(hop_to)
    board.post(key, {
        "pid": ctx.pid,
        "elapsed": ctx.now - started,
        "finished_on": ctx.machine,
        "hopped": hopped,
    })
    yield ctx.exit()
