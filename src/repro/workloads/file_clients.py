"""File-system client workloads (for the paper's own test case, E6).

"One of our test examples of process migration ... migrates a file system
process while several user processes are performing I/O."  These clients
perform verified read-after-write streams against the file system and
post a transcript; the E6 bench migrates the file server mid-stream and
asserts zero corruption and zero lost operations.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.registry import register_program
from repro.kernel.context import ProcessContext
from repro.servers.filesystem import FileClient
from repro.workloads.results import DEFAULT_BOARD, ResultsBoard


def _pattern(tag: int, index: int, size: int) -> bytes:
    """Deterministic, self-describing file contents."""
    seed = f"<{tag}:{index}>".encode()
    reps = size // len(seed) + 1
    return (seed * reps)[:size]


@register_program("file-io-client")
def file_io_client(
    ctx: ProcessContext,
    tag: int = 0,
    operations: int = 10,
    write_size: int = 600,
    gap: int = 500,
    board: ResultsBoard | None = None,
    key: str = "file-io",
) -> Generator[Any, Any, None]:
    """Create a private file and run verified write/read rounds.

    Each round appends a distinctive pattern, reads it back, and checks
    the bytes; every mismatch or error is recorded.  The summary posted
    at the end carries per-operation latencies and the verification
    verdict.
    """
    board = board if board is not None else DEFAULT_BOARD
    fs = FileClient(ctx)
    name = f"client-{tag}.dat"
    errors: list[str] = []
    latencies: list[int] = []

    yield from fs.create(name)
    handle = yield from fs.open(name)
    for index in range(operations):
        expected = _pattern(tag, index, write_size)
        offset = index * write_size
        started = ctx.now
        written = yield from fs.write(handle, offset, expected)
        if written != write_size:
            errors.append(f"op{index}: short write {written}")
        data = yield from fs.read(handle, offset, write_size)
        latencies.append(ctx.now - started)
        if data != expected:
            errors.append(
                f"op{index}: readback mismatch "
                f"({data[:16]!r} != {expected[:16]!r})"
            )
        if gap:
            yield ctx.sleep(gap)
    yield from fs.close(handle)
    board.post(key, {
        "pid": ctx.pid,
        "tag": tag,
        "operations": operations,
        "errors": errors,
        "latencies": latencies,
    })
    yield ctx.exit()


@register_program("file-reader")
def file_reader(
    ctx: ProcessContext,
    name: str = "shared.dat",
    reads: int = 10,
    length: int = 512,
    gap: int = 1_000,
    board: ResultsBoard | None = None,
    key: str = "file-reader",
) -> Generator[Any, Any, None]:
    """Repeatedly read the head of an existing file (cache-friendly)."""
    board = board if board is not None else DEFAULT_BOARD
    fs = FileClient(ctx)
    handle = yield from fs.open(name)
    latencies = []
    for _ in range(reads):
        started = ctx.now
        yield from fs.read(handle, 0, length)
        latencies.append(ctx.now - started)
        if gap:
            yield ctx.sleep(gap)
    yield from fs.close(handle)
    board.post(key, {"pid": ctx.pid, "latencies": latencies})
    yield ctx.exit()
