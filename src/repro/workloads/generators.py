"""Workload arrival generators.

Benchmarks that study load balancing need processes arriving over time,
unevenly across machines — "a balanced execution mix can be disturbed ...
by the creation of a new process with unexpected resource requirements"
(§1).  An :class:`ArrivalGenerator` schedules spawns on the event loop
according to a plan; plans can be built deterministically or drawn from a
Poisson process on a named random stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.kernel.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import System


@dataclass(frozen=True)
class Arrival:
    """One planned process creation."""

    at: int  #: simulated time of the spawn
    machine: int
    program: Callable  #: program factory, called with the context
    name: str = ""


class ArrivalGenerator:
    """Spawns processes according to a plan of :class:`Arrival` entries."""

    def __init__(self, system: "System", plan: list[Arrival]) -> None:
        self.system = system
        self.plan = sorted(plan, key=lambda a: a.at)
        self.spawned: list[ProcessId] = []

    def install(self) -> None:
        """Schedule every planned arrival on the system's event loop."""
        for arrival in self.plan:
            self.system.loop.call_at(arrival.at, self._spawn, arrival)

    def _spawn(self, arrival: Arrival) -> None:
        pid = self.system.spawn(
            arrival.program, machine=arrival.machine, name=arrival.name,
        )
        self.spawned.append(pid)


def poisson_plan(
    system: "System",
    program: Callable,
    rate_per_ms: float,
    duration: int,
    machine_weights: dict[int, float],
    stream_name: str = "arrivals",
    name_prefix: str = "job",
) -> list[Arrival]:
    """A Poisson arrival plan with weighted machine placement.

    *machine_weights* skews arrivals: ``{0: 0.8, 1: 0.2}`` floods machine
    0, the canonical imbalance scenario for E9.
    """
    rng = system.rngs.stream(stream_name)
    machines = sorted(machine_weights)
    weights = [machine_weights[m] for m in machines]
    plan: list[Arrival] = []
    t = 0.0
    index = 0
    while True:
        t += rng.expovariate(rate_per_ms) * 1_000  # rate is per ms
        if t >= duration:
            break
        machine = rng.choices(machines, weights=weights)[0]
        plan.append(Arrival(
            at=int(t), machine=machine, program=program,
            name=f"{name_prefix}-{index}",
        ))
        index += 1
    return plan


def burst_plan(
    program: Callable,
    machine: int,
    count: int,
    start: int = 0,
    spacing: int = 100,
    name_prefix: str = "burst",
) -> list[Arrival]:
    """*count* arrivals on one machine, *spacing* microseconds apart."""
    return [
        Arrival(
            at=start + i * spacing, machine=machine, program=program,
            name=f"{name_prefix}-{i}",
        )
        for i in range(count)
    ]
