"""Message-exchange workloads: echo servers and pingers.

These exercise exactly the traffic pattern the forwarding/link-update
analysis (paper §5, §6) reasons about: a client holds a link to a server,
the server migrates, and the client's next messages go through the
forwarding address until the link-update message patches its table.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.registry import register_program
from repro.kernel.context import ProcessContext
from repro.servers.common import lookup_service, rpc
from repro.servers.switchboard import register_service
from repro.workloads.results import DEFAULT_BOARD, ResultsBoard


@register_program("echo-server")
def echo_server(
    ctx: ProcessContext,
    service_name: str = "echo",
    compute_per_request: int = 0,
) -> Generator[Any, Any, None]:
    """Register under *service_name* and echo every request's payload.

    Replies carry the server's current machine, so clients can watch the
    server move without any out-of-band channel.
    """
    yield from register_service(ctx, service_name)
    while True:
        msg = yield ctx.receive()
        if not msg.delivered_link_ids:
            continue
        if compute_per_request:
            yield ctx.compute(compute_per_request)
        reply_link = msg.delivered_link_ids[0]
        yield ctx.send(
            reply_link, op="echo-reply",
            payload={"echo": msg.payload, "machine": ctx.machine,
                     "forwarded": msg.forward_count},
            payload_bytes=msg.payload_bytes,
        )
        yield ctx.destroy_link(reply_link)


@register_program("pinger")
def pinger(
    ctx: ProcessContext,
    service_name: str = "echo",
    rounds: int = 10,
    payload_bytes: int = 32,
    gap: int = 0,
    board: ResultsBoard | None = None,
    key: str = "pinger",
) -> Generator[Any, Any, None]:
    """Send *rounds* echo requests and record each round-trip.

    Posts one record per round: latency, which machine answered, and how
    many forwarding hops the request suffered (mirrored back by the
    server), plus a final summary under ``key + '-summary'``.
    """
    board = board if board is not None else DEFAULT_BOARD
    service = yield from lookup_service(ctx, service_name)
    transcript = []
    for round_no in range(rounds):
        sent_at = ctx.now
        reply = yield from rpc(
            ctx, service, "echo", {"round": round_no},
            payload_bytes=payload_bytes,
        )
        assert reply is not None
        transcript.append({
            "round": round_no,
            "latency": ctx.now - sent_at,
            "server_machine": reply.payload["machine"],
            "request_forwarded": reply.payload["forwarded"],
            "echo": reply.payload["echo"],
        })
        board.post(key, transcript[-1])
        if gap:
            yield ctx.sleep(gap)
    board.post(key + "-summary", {
        "pid": ctx.pid,
        "rounds": rounds,
        "transcript": transcript,
    })
    yield ctx.exit()


def make_pair_programs(
    board: ResultsBoard,
    rounds: int = 50,
    payload_bytes: int = 64,
    key: str = "pair",
):
    """Two tightly-coupled peers for communication-affinity experiments.

    Returns ``(leader, follower)`` program factories.  The leader creates
    a link to itself, passes it to the follower through the switchboard,
    and the two then exchange *rounds* messages; both post their total
    elapsed time.
    """

    def leader(ctx: ProcessContext):
        yield from register_service(ctx, f"{key}-leader")
        started = ctx.now
        for _ in range(rounds):
            msg = yield ctx.receive()
            reply_link = msg.delivered_link_ids[0]
            yield ctx.send(reply_link, op="pong", payload_bytes=payload_bytes)
            yield ctx.destroy_link(reply_link)
        board.post(key + "-leader", {"elapsed": ctx.now - started,
                                     "machine": ctx.machine})
        yield ctx.exit()

    def follower(ctx: ProcessContext):
        service = yield from lookup_service(ctx, f"{key}-leader")
        started = ctx.now
        for _ in range(rounds):
            yield from rpc(ctx, service, "ping", payload_bytes=payload_bytes)
        board.post(key + "-follower", {"elapsed": ctx.now - started,
                                       "machine": ctx.machine})
        yield ctx.exit()

    return leader, follower
