"""A blackboard for workload outcomes.

Simulated processes cannot return values to the host — when they exit,
their state is reclaimed (that is rather the point of the paper).  Tests
and benchmarks therefore hand workloads a :class:`ResultsBoard` to post
their observations on: latencies, payload transcripts, error counts.

This is measurement harness, not part of the simulated OS.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any


class ResultsBoard:
    """Append-only per-key result collection."""

    def __init__(self) -> None:
        self._entries: dict[str, list[Any]] = defaultdict(list)

    def post(self, key: str, value: Any) -> None:
        """Append *value* under *key*."""
        self._entries[key].append(value)

    def get(self, key: str) -> list[Any]:
        """All values posted under *key* (empty list if none)."""
        return list(self._entries.get(key, []))

    def only(self, key: str) -> Any:
        """The single value posted under *key* (asserts exactly one)."""
        values = self._entries.get(key, [])
        if len(values) != 1:
            raise AssertionError(
                f"expected exactly one result under {key!r}, got {values!r}"
            )
        return values[0]

    def keys(self) -> list[str]:
        """All keys with at least one posting."""
        return sorted(self._entries)

    def clear(self) -> None:
        """Forget everything."""
        self._entries.clear()

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())


#: Default board used by programs spawned by name (e.g. via the command
#: interpreter), where no board instance can be passed through.
DEFAULT_BOARD = ResultsBoard()
