"""Campaign runners, result shaping, and the ``repro chaos`` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.chaos import (
    CampaignResult,
    SCENARIOS,
    ScenarioOutcome,
    ledger_digest,
    run_campaign,
)
from repro.chaos.engine import FaultEvent
from repro.errors import ConfigError


class TestResultShaping:
    def test_counters_flatten_by_scenario(self):
        result = CampaignResult(
            scale="smoke",
            outcomes=[
                ScenarioOutcome("a", counters={"x": 1, "y": 2}),
                ScenarioOutcome("b", counters={"x": 7}),
            ],
        )
        assert result.counters == {"a.x": 1, "a.y": 2, "b.x": 7}
        assert result.ok

    def test_problems_carry_scenario_prefix(self):
        result = CampaignResult(
            scale="smoke",
            outcomes=[
                ScenarioOutcome("a"),
                ScenarioOutcome("b", problems=["it broke"]),
            ],
        )
        assert result.problems == ["[b] it broke"]
        assert not result.ok

    def test_ledger_digest_is_stable(self):
        ledger = [
            FaultEvent(10, "crash", "machine 2 -> executor 3"),
            FaultEvent(20, "heal", "[0, 1] | [2, 3]"),
        ]
        assert ledger_digest(ledger) == ledger_digest(list(ledger))
        assert ledger_digest(ledger) != ledger_digest(ledger[:1])
        assert ledger_digest([]) == ledger_digest([])


class TestCampaignRunner:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError, match="unknown campaign scale"):
            run_campaign("gigantic")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            run_campaign("smoke", scenarios=["meteor"])

    def test_smoke_evacuate_scenario_holds_invariants(self):
        result = run_campaign("smoke", scenarios=["evacuate"])
        assert result.ok, "\n".join(result.problems)
        outcome = result.outcomes[0]
        assert outcome.counters["draining_refusals"] >= 1
        assert outcome.counters["casualties"] == 0
        assert outcome.counters["recovered"] == 0
        kinds = [event.kind for event in outcome.ledger]
        assert "drain" in kinds and "maintenance-kill" in kinds

    def test_smoke_storm_parity_matches_across_shard_counts(self):
        result = run_campaign("smoke", scenarios=["storm_parity"])
        assert result.ok, "\n".join(result.problems)
        outcome = result.outcomes[0]
        assert outcome.counters["shards"] == 2
        assert outcome.counters["faults.storm-move"] >= 1
        assert outcome.counters["messages_forwarded"] >= 1
        assert outcome.counters["pingers_done"] == 8

    def test_smoke_fileserver_crash_serves_through_the_crash(self):
        result = run_campaign("smoke", scenarios=["fileserver_crash"])
        assert result.ok, "\n".join(result.problems)
        outcome = result.outcomes[0]
        assert outcome.counters["file_errors"] == 0
        assert outcome.counters["file_streams_done"] >= 1
        assert outcome.counters["recovered"] >= 1
        assert outcome.counters["reply_mismatches"] == 0

    def test_smoke_crash_parity_matches_the_classic_engine(self):
        result = run_campaign("smoke", scenarios=["crash_parity"])
        assert result.ok, "\n".join(result.problems)
        outcome = result.outcomes[0]
        assert outcome.counters["variants"] == 3
        assert outcome.counters["recovered"] >= 1
        assert outcome.counters["pingers_done"] >= 2
        assert outcome.counters["faults.crash"] >= 1

    def test_smoke_crash_scenario_recovers_survivors(self):
        result = run_campaign("smoke", scenarios=["crash"])
        assert result.ok, "\n".join(result.problems)
        outcome = result.outcomes[0]
        assert outcome.counters["recovered"] >= 1
        assert outcome.counters["reply_mismatches"] == 0
        assert outcome.counters["probe_round2_forwards"] <= len(
            [e for e in outcome.ledger if e.kind == "storm-move"]
        )


class TestChaosCli:
    def test_json_output_round_trips(self, capsys):
        code = main(["chaos", "--scenario", "evacuate", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["ok"] is True
        assert document["scale"] == "smoke"
        assert document["scenarios"] == ["evacuate"]
        assert document["problems"] == []
        assert document["counters"]["evacuate.draining_refusals"] >= 1

    def test_text_output_prints_ledger_and_verdict(self, capsys):
        code = main(["chaos", "--scenario", "partition"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[partition] ok" in out
        assert "partition:" in out and "heal:" in out
        assert "all survivor invariants hold" in out

    def test_default_runs_every_scenario(self):
        assert tuple(SCENARIOS) == (
            "crash", "partition", "evacuate", "fileserver_crash",
            "storm_parity", "crash_parity",
        )
