"""Property suite: chaos is a pure function of (seed, scenario).

The contract the campaign and the e12 benchmark lean on: the same seed
and scenario produce an identical fault-event ledger and identical
gated counters, on repeated runs and across shard counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ChaosEngine,
    ChaosScenario,
    CrashMachine,
    FaultEvent,
    MigrationStorm,
    Move,
    Partition,
)
from repro.core.config import SystemConfig
from repro.sim.shard import ShardedSystem
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import make_system

MACHINES = 4


def parked(ctx):
    while True:
        yield ctx.receive()


def run_classic(seed: int, crash_at: int, partition_at: int):
    """A crash + healing partition over parked processes; returns the
    gated observables."""
    system = make_system(machines=MACHINES, seed=seed)
    for m in (1, 2):
        system.spawn(parked, machine=m, name=f"sleeper-{m}")
    scenario = ChaosScenario(
        "prop-classic",
        (
            CrashMachine(at=crash_at, machine=1, executor=3),
            Partition(
                at=partition_at, heal_at=partition_at + 15_000,
                group_a=(0, 1), group_b=(2, 3),
            ),
        ),
    )
    engine = ChaosEngine(system, scenario)
    engine.install()
    system.run(max_events=2_000_000)
    counters = dict(engine.counts)
    counters["recovered"] = sum(
        len(r.recovered) for r in engine.crash_reports
    )
    counters["packets"] = system.network.stats.packets_sent
    return scenario, engine.ledger(), counters


def run_storm(seed: int, wave_times: tuple[int, ...], shards: int):
    """An echo/pinger torus under a forced storm; returns the gated
    observables."""
    system = ShardedSystem(SystemConfig(
        machines=MACHINES, topology="torus", latency=1_000,
        shards=shards, seed=seed,
        trace_categories=(), metrics_enabled=False,
    ))
    boards = [ResultsBoard() for _ in system.shards]
    pids = {}
    for m in range(MACHINES):
        name = f"prop-echo-{m}"
        pids[m] = system.spawn(
            lambda ctx, _n=name: echo_server(ctx, service_name=_n),
            machine=m, name=name,
        )
    for m in range(MACHINES):
        client = (m + 1) % MACHINES
        board = boards[system.plan.shard_of(client)]
        system.schedule_spawn(
            5_000 + 500 * m, client,
            lambda ctx, _m=m, _b=board: pinger(
                ctx, service_name=f"prop-echo-{_m}", rounds=3,
                gap=6_000, board=_b, key=f"prop-ping-{_m}",
            ),
            name="pinger",
        )
    half = MACHINES // 2
    storms = tuple(
        MigrationStorm(
            at=at,
            moves=tuple(
                Move(
                    pid=pids[m],
                    home=(m + wave * half) % MACHINES,
                    dest=(m + (wave + 1) * half) % MACHINES,
                )
                for m in range(MACHINES)
            ),
        )
        for wave, at in enumerate(wave_times)
    )
    engine = ChaosEngine(system, ChaosScenario("prop-storm", storms))
    engine.install()
    system.drain()
    kernels = system.kernels_in_machine_order()
    counters = dict(engine.counts)
    counters["delivered"] = sum(
        k.stats.messages_delivered for k in kernels
    )
    counters["forwarded"] = sum(
        k.stats.messages_forwarded for k in kernels
    )
    counters["link_updates"] = sum(
        k.stats.link_updates_applied for k in kernels
    )
    counters["entries"] = sum(len(k.forwarding) for k in kernels)
    return engine.ledger(), counters


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    crash_at=st.integers(min_value=5_000, max_value=40_000),
    partition_at=st.integers(min_value=5_000, max_value=40_000),
)
def test_classic_ledger_is_the_schedule_and_repeats(
    seed, crash_at, partition_at
):
    scenario, ledger, counters = run_classic(
        seed, crash_at, partition_at
    )
    # No storms → nothing can skip: the runtime ledger IS the static
    # schedule, verbatim.
    assert ledger == [
        FaultEvent(*entry) for entry in scenario.fault_schedule()
    ]
    _, ledger2, counters2 = run_classic(seed, crash_at, partition_at)
    assert ledger2 == ledger
    assert counters2 == counters


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    wave_times=st.lists(
        st.integers(min_value=8_000, max_value=150_000),
        min_size=1, max_size=2, unique=True,
    ).map(lambda ts: tuple(sorted(ts))),
)
def test_storm_repeats_and_matches_across_shard_counts(
    seed, wave_times
):
    ledger_1, counters_1 = run_storm(seed, wave_times, shards=1)
    ledger_1b, counters_1b = run_storm(seed, wave_times, shards=1)
    assert ledger_1b == ledger_1
    assert counters_1b == counters_1
    ledger_2, counters_2 = run_storm(seed, wave_times, shards=2)
    assert ledger_2 == ledger_1
    assert counters_2 == counters_1
