"""The engine's action interpreters against live systems."""

import pytest

from repro.chaos import (
    ChaosEngine,
    ChaosScenario,
    CrashMachine,
    Evacuation,
    FaultEvent,
    FlakyLinks,
    MigrationStorm,
    Move,
    Partition,
)
from repro.core.config import SystemConfig
from repro.errors import SimulationError
from repro.net.channel import FaultPlan
from repro.sim.shard import ShardedSystem
from repro.workloads.pingpong import echo_server
from tests.conftest import make_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestCrashAction:
    def test_protected_crash_recovers_onto_executor(self):
        system = make_system(machines=4)
        pid = system.spawn(parked, machine=2, name="victim")
        engine = ChaosEngine(system, ChaosScenario(
            "t", (CrashMachine(at=10_000, machine=2, executor=3),),
        ))
        engine.install()
        system.run(until=50_000)
        assert system.kernel(2).crashed
        assert pid in system.kernel(3).processes
        assert engine.counts == {"crash": 1}
        report = engine.crash_reports[0]
        assert report.recovered == [pid]
        assert report.casualties == []

    def test_unprotected_crash_leaves_casualties(self):
        system = make_system(machines=4)
        pid = system.spawn(parked, machine=2, name="victim")
        engine = ChaosEngine(system, ChaosScenario(
            "t",
            (
                CrashMachine(
                    at=10_000, machine=2, executor=3, protect=False,
                ),
            ),
        ))
        engine.install()
        system.run(until=50_000)
        assert not system.is_alive(pid)
        assert engine.crash_reports[0].casualties == [pid]


class TestPartitionAction:
    def test_partition_stalls_and_heal_releases(self):
        system = make_system(machines=4)
        engine = ChaosEngine(system, ChaosScenario(
            "t",
            (
                Partition(
                    at=5_000, heal_at=40_000,
                    group_a=(0, 1), group_b=(2, 3),
                ),
            ),
        ))
        engine.install()

        delivered = []

        def ponger(ctx):
            yield from echo_server(ctx, service_name="pong")

        def sender(ctx):
            from repro.servers.common import lookup_service, rpc

            service = yield from lookup_service(ctx, "pong")
            yield ctx.sleep(8_000)  # inside the partition window
            reply = yield from rpc(ctx, service, "echo", {"n": 1})
            delivered.append(ctx.now)
            yield ctx.exit()

        system.spawn(ponger, machine=0, name="ponger")
        system.spawn(sender, machine=3, name="sender")
        system.run(until=30_000)
        # Cut at 5ms, request sent around 9ms: still undelivered.
        assert delivered == []
        system.run(until=300_000)
        # Healed at 40ms: retransmission gets it through, exactly once.
        assert len(delivered) == 1
        assert delivered[0] > 40_000
        assert [e.kind for e in engine.ledger()] == ["partition", "heal"]


class TestFlakyAction:
    def test_flaky_window_restores_baseline(self):
        system = make_system(machines=4)
        plan = FaultPlan(drop_probability=0.5, max_jitter=100)
        engine = ChaosEngine(system, ChaosScenario(
            "t", (FlakyLinks(at=1_000, until=2_000, faults=plan),),
        ))
        engine.install()
        baseline = system.network._default_faults
        system.run(until=1_500)
        assert system.network._default_faults is plan
        system.run(until=5_000)
        assert system.network._default_faults is baseline
        assert engine.counts == {"flaky": 1, "flaky-end": 1}


class TestStormAction:
    def test_storm_moves_and_skips_deterministically(self):
        system = make_system(machines=4)
        pid = system.spawn(parked, machine=2, name="mover")
        ghost_pid = system.spawn(parked, machine=3, name="ghost")
        # The ghost exits before the storm fires.
        system.loop.call_at(
            5_000, lambda: system.kernel(3).terminate(ghost_pid)
        )
        engine = ChaosEngine(system, ChaosScenario(
            "t",
            (MigrationStorm(at=10_000, moves=(
                Move(pid, 2, 0), Move(ghost_pid, 3, 0),
            )),),
        ))
        engine.install()
        system.run(until=200_000)
        assert pid in system.kernel(0).processes
        assert engine.counts == {"storm-move": 1, "storm-skip": 1}
        kinds = sorted(e.kind for e in engine.ledger())
        assert kinds == ["storm-move", "storm-skip"]


class TestEvacuationAction:
    def test_drain_refuses_inbound_and_kill_finds_empty_machine(self):
        system = make_system(machines=4)
        resident = system.spawn(parked, machine=2, name="resident")
        outsider = system.spawn(parked, machine=0, name="outsider")
        engine = ChaosEngine(system, ChaosScenario(
            "t",
            (
                Evacuation(
                    drain_at=10_000, machine=2, kill_at=300_000,
                    executor=3, dests=(3,),
                ),
                # Inbound move against the draining machine: refused.
                MigrationStorm(
                    at=20_000, moves=(Move(outsider, 0, 2),),
                ),
            ),
        ))
        engine.install()
        system.run(until=400_000)
        assert system.kernel(2).draining
        assert system.kernel(2).crashed
        assert resident in system.kernel(3).processes
        assert outsider in system.kernel(0).processes
        assert engine.counts["drain-migrations"] == 1
        report = engine.crash_reports[0]
        assert report.recovered == [] and report.casualties == []
        refusals = system.tracer.records("migrate", "refuse-draining")
        assert len(refusals) == 1


class TestEngineDiscipline:
    def test_double_install_rejected(self):
        system = make_system(machines=4)
        engine = ChaosEngine(system, ChaosScenario(
            "t", (CrashMachine(at=1_000, machine=2, executor=3),),
        ))
        engine.install()
        with pytest.raises(SimulationError, match="already installed"):
            engine.install()

    def test_sharded_system_rejects_wire_surgery_actions(self):
        system = ShardedSystem(SystemConfig(
            machines=4, topology="torus", latency=1_000, shards=2,
        ))
        with pytest.raises(SimulationError, match="fault plans"):
            ChaosEngine(system, ChaosScenario(
                "t",
                (
                    Partition(
                        at=1_000, heal_at=2_000,
                        group_a=(0, 1), group_b=(2, 3),
                    ),
                ),
            ))

    def test_sharded_crash_needs_grid_aligned_time(self):
        system = ShardedSystem(SystemConfig(
            machines=4, topology="torus", latency=1_000, shards=2,
        ))
        with pytest.raises(SimulationError, match="window grid"):
            ChaosEngine(system, ChaosScenario(
                "t", (CrashMachine(at=1_500, machine=2, executor=3),),
            ))

    def test_sharded_crash_time_must_not_collide_with_storm(self):
        system = ShardedSystem(SystemConfig(
            machines=4, topology="torus", latency=1_000, shards=2,
        ))
        pid = system.spawn(parked, machine=1, name="mover")
        with pytest.raises(SimulationError, match="collides"):
            ChaosEngine(system, ChaosScenario(
                "t",
                (
                    MigrationStorm(at=10_000, moves=(Move(pid, 1, 3),)),
                    CrashMachine(at=10_000, machine=2, executor=3),
                ),
            ))

    def test_sharded_crash_recovers_across_shards(self):
        # Machine 3 lives in shard 1, executor 1 in shard 0: recovery
        # moves the live process state across the shard boundary at the
        # barrier, and the redirect carries later traffic to machine 1.
        system = ShardedSystem(SystemConfig(
            machines=4, topology="torus", latency=1_000, shards=2,
        ))
        pid = system.spawn(parked, machine=3, name="victim")
        engine = ChaosEngine(system, ChaosScenario(
            "t", (CrashMachine(at=10_000, machine=3, executor=1),),
        ))
        engine.install()
        system.drain()
        assert system.kernel(3).crashed
        assert pid in system.kernel(1).processes
        assert engine.counts == {"crash": 1}
        assert engine.crash_reports[0].recovered == [pid]
        for shard in system.shards:
            assert shard.network.effective_destination(3) == 1
        assert engine.ledger() == [
            FaultEvent(10_000, "crash", "machine 3 -> executor 1"),
        ]

    def test_sharded_crash_under_barrier_elision(self):
        # Run-ahead elision supports barrier actions in the serial
        # executors: the runner drives every shard to the action tick,
        # fires it frozen, and re-arms the rendezvous schedule.
        system = ShardedSystem(SystemConfig(
            machines=4, topology="torus", latency=1_000, shards=2,
            barrier_elision=True, backbone_latency=1_000,
        ))
        pid = system.spawn(parked, machine=3, name="victim")
        engine = ChaosEngine(system, ChaosScenario(
            "t", (CrashMachine(at=10_000, machine=3, executor=1),),
        ))
        engine.install()
        system.drain()
        assert system.kernel(3).crashed
        assert pid in system.kernel(1).processes
        assert engine.counts == {"crash": 1}
        assert engine.crash_reports[0].recovered == [pid]
        for shard in system.shards:
            assert shard.network.effective_destination(3) == 1
        assert engine.ledger() == [
            FaultEvent(10_000, "crash", "machine 3 -> executor 1"),
        ]

    def test_sharded_storm_runs_and_ledgers(self):
        system = ShardedSystem(SystemConfig(
            machines=4, topology="torus", latency=1_000, shards=2,
        ))
        pid = system.spawn(parked, machine=1, name="mover")
        engine = ChaosEngine(system, ChaosScenario(
            "t", (MigrationStorm(at=10_000, moves=(Move(pid, 1, 3),)),),
        ))
        engine.install()
        system.drain()
        assert pid in system.kernel(3).processes
        assert engine.ledger() == [
            FaultEvent(10_000, "storm-move", f"{pid} 1 -> 3"),
        ]
