"""The chaos fuzzer: generation, running, shrinking, repro files.

The committed regressions under ``tests/chaos/regressions/`` are
schedules the fuzzer once minimized from real violations (e.g. the
mid-migration source crash that lost a forwarding address); the loader
test replays every file and asserts the bug stays fixed.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.chaos import (
    ActionSpec,
    FuzzSchedule,
    generate_schedule,
    load_repro,
    replay,
    run_fuzz,
    run_schedule,
    shrink,
    validate_schedule,
    write_repro,
)
from repro.chaos.fuzz import schedule_from_json, schedule_to_json
from repro.errors import ConfigError
from repro.__main__ import main

REGRESSIONS = sorted(
    (Path(__file__).parent / "regressions").glob("*.json")
)


class TestGeneration:
    def test_same_seed_and_index_reproduce_the_schedule(self):
        assert generate_schedule(7, 3) == generate_schedule(7, 3)

    def test_draws_are_independent_of_each_other(self):
        # Schedule 5 is the same whether or not draws 0..4 happened.
        assert generate_schedule(7, 5) == generate_schedule(7, 5)
        assert generate_schedule(7, 5) != generate_schedule(8, 5)

    def test_generated_schedules_always_validate(self):
        for index in range(50):
            validate_schedule(generate_schedule(2026, index))

    def test_evacuation_dest_draw_clamps_to_a_thin_pool(self):
        # Hypothesis-found: with prior deaths on a small system, the
        # evacuation-destination pool can hold a single machine while
        # the generator wanted to draw two (ValueError from
        # rng.sample); the draw is clamped to the pool.
        validate_schedule(generate_schedule(217, 280))

    def test_victims_never_host_pinger_clients(self):
        # Fail-stop abandons a dead machine's unacked sends, so a
        # recovered mid-RPC client may hang legally; the generator keeps
        # client machines out of the victim pool to keep the completion
        # gate meaningful.
        for index in range(80):
            schedule = generate_schedule(11, index)
            clients = {client for _, client in schedule.pingers}
            victims = {
                spec.machine for spec in schedule.actions
                if spec.kind in ("crash", "evacuate")
            }
            assert not victims & clients
            assert not victims & {0, 1}

    def test_sharded_draws_carry_only_shard_safe_actions(self):
        saw_sharded = False
        for index in range(40):
            schedule = generate_schedule(3, index)
            if not schedule.sharded:
                continue
            saw_sharded = True
            assert schedule.machines % 2 == 0
            assert schedule.topology == "torus"
            kinds = {spec.kind for spec in schedule.actions}
            assert not kinds & {"partition", "flaky"}
        assert saw_sharded


class TestValidation:
    """Hand-built invalid schedules hit every static check."""

    def base(self, **overrides):
        fields = dict(
            seed=0, index=0, system_seed=1, machines=4,
            topology="mesh", sharded=False, servers=(1,),
            pingers=((0, 2),), rounds=2,
            actions=(
                ActionSpec(
                    kind="crash", at=20_000, machine=2, executor=3,
                ),
            ),
        )
        fields.update(overrides)
        return FuzzSchedule(**fields)

    def test_base_schedule_is_valid(self):
        validate_schedule(self.base())

    def test_unknown_action_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown action kind"):
            validate_schedule(self.base(
                actions=(ActionSpec(kind="meteor", at=20_000),),
            ))

    def test_server_home_out_of_range(self):
        with pytest.raises(ConfigError, match="server home 9"):
            validate_schedule(self.base(servers=(9,)))

    def test_pinger_server_index_out_of_range(self):
        with pytest.raises(ConfigError, match="pinger server index 5"):
            validate_schedule(self.base(pingers=((5, 2),)))

    def test_pinger_machine_out_of_range(self):
        with pytest.raises(ConfigError, match="pinger machine 9"):
            validate_schedule(self.base(pingers=((0, 9),)))

    def test_rounds_floor(self):
        with pytest.raises(ConfigError, match="at least one pinger"):
            validate_schedule(self.base(rounds=0))

    def test_sharded_needs_even_machines(self):
        with pytest.raises(ConfigError, match="even machine count"):
            validate_schedule(self.base(
                sharded=True, topology="torus", machines=5,
                servers=(1,), pingers=((0, 2),),
            ))

    def test_sharded_rejects_wire_surgery(self):
        with pytest.raises(ConfigError, match="wire-surgery"):
            validate_schedule(self.base(
                sharded=True, topology="torus",
                actions=(ActionSpec(
                    kind="flaky", at=20_000, until=29_000,
                    drop_permille=100, jitter=10,
                ),),
            ))

    def test_sharded_crash_must_sit_on_the_grid(self):
        with pytest.raises(ConfigError, match="off the 1000us grid"):
            validate_schedule(self.base(
                sharded=True, topology="torus",
                actions=(
                    ActionSpec(
                        kind="crash", at=20_037, machine=2, executor=3,
                    ),
                ),
            ))

    def test_sharded_barrier_times_must_not_collide(self):
        with pytest.raises(ConfigError, match="collides"):
            validate_schedule(self.base(
                sharded=True, topology="torus",
                actions=(
                    ActionSpec(
                        kind="crash", at=20_000, machine=2, executor=0,
                    ),
                    ActionSpec(
                        kind="crash", at=20_000, machine=3, executor=0,
                    ),
                ),
            ))


class TestRunning:
    def test_classic_schedule_runs_clean(self):
        schedule = generate_schedule(77, 0)
        assert not schedule.sharded
        outcome = run_schedule(schedule)
        assert outcome.ok, outcome.problems
        assert outcome.counters["pingers_done"] == len(schedule.pingers)

    def test_sharded_schedule_passes_the_parity_oracle(self):
        schedule = generate_schedule(77, 1)
        assert schedule.sharded
        outcome = run_schedule(schedule)
        assert outcome.ok, outcome.problems

    def test_same_schedule_twice_is_byte_identical(self):
        schedule = generate_schedule(77, 2)
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.counters == second.counters
        assert first.ledger == second.ledger

    def test_fuzz_report_digests_are_deterministic(self):
        first = run_fuzz(seed=42, runs=4)
        second = run_fuzz(seed=42, runs=4)
        assert first.ok and second.ok
        assert first.digests == second.digests
        assert len(first.digests) == 4


class TestShrinking:
    def test_shrinker_drops_irrelevant_components(self):
        schedule = generate_schedule(77, 10)
        assert len(schedule.actions) >= 2

        # Synthetic predicate: the violation only needs the first
        # action; everything else is noise the shrinker should remove.
        needed = schedule.actions[0]

        def still_fails(candidate):
            return needed in candidate.actions

        smallest = shrink(schedule, still_fails)
        assert smallest.actions == (needed,)
        assert len(smallest.pingers) <= 1
        assert smallest.rounds <= schedule.rounds
        validate_schedule(smallest)

    def test_invalid_candidates_are_skipped_for_free(self):
        # Dropping the crash would re-home the server onto machine 1,
        # turning the storm move into a no-op ("goes nowhere") — an
        # invalid candidate the shrinker must skip, not crash on.
        schedule = FuzzSchedule(
            seed=0, index=0, system_seed=1, machines=4,
            topology="mesh", sharded=False, servers=(1,),
            pingers=((0, 3),), rounds=2,
            actions=(
                ActionSpec(
                    kind="crash", at=20_000, machine=1, executor=2,
                ),
                ActionSpec(kind="storm", at=35_037, moves=((0, 1),)),
            ),
        )
        validate_schedule(schedule)

        def still_fails(candidate):
            return any(a.kind == "storm" for a in candidate.actions)

        smallest = shrink(schedule, still_fails)
        # The crash survives (removing it is invalid), the storm
        # survives (the predicate needs it), the pinger is shed.
        assert len(smallest.actions) == 2
        assert not smallest.pingers

    def test_shrinker_never_returns_a_passing_schedule(self):
        schedule = generate_schedule(77, 10)

        def still_fails(candidate):
            return len(candidate.actions) >= 1

        smallest = shrink(schedule, still_fails)
        assert still_fails(smallest)


class TestReproFiles:
    def test_json_round_trip_is_exact(self):
        schedule = generate_schedule(9, 4)
        data = schedule_to_json(schedule)
        assert schedule_from_json(json.loads(json.dumps(data))) == schedule

    def test_write_and_load_repro(self, tmp_path):
        schedule = generate_schedule(9, 4)
        path = write_repro(
            tmp_path / "r.json", schedule, ["problem"], note="why",
        )
        assert load_repro(path) == schedule
        payload = json.loads(path.read_text())
        assert payload["violations"] == ["problem"]
        assert payload["note"] == "why"

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"version": 99, "schedule": {}}))
        with pytest.raises(ConfigError, match="version"):
            load_repro(path)

    def test_violations_are_shrunk_and_written(self, tmp_path):
        # Force a violation with an impossible event budget: every
        # schedule "fails", so the session must shrink and write repros.
        report = run_fuzz(seed=5, runs=1, budget=10, out_dir=tmp_path)
        assert not report.ok
        assert report.repro_paths
        written = load_repro(report.repro_paths[0])
        validate_schedule(written)


class TestCommittedRegressions:
    """Replay every promoted repro file; the bug must stay fixed."""

    def test_regressions_exist(self):
        assert REGRESSIONS, "no committed fuzz regressions found"

    @pytest.mark.parametrize(
        "path", REGRESSIONS, ids=lambda p: p.stem,
    )
    def test_regression_replays_clean(self, path):
        outcome = replay(path)
        assert outcome.ok, (
            f"{path.name} regressed:\n" + "\n".join(outcome.problems)
        )


class TestCli:
    def test_fuzz_command_exits_zero_on_clean_sweep(self, capsys):
        assert main(["fuzz", "--seed", "42", "--runs", "2"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_fuzz_command_json_mode(self, capsys):
        assert main(
            ["fuzz", "--seed", "42", "--runs", "2", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert len(document["digests"]) == 2

    def test_fuzz_command_exits_nonzero_on_violation(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seed", "5", "--runs", "1", "--budget", "10",
            "--out", str(tmp_path),
        ])
        assert code == 1
        assert "repro written" in capsys.readouterr().out

    def test_replay_command(self, capsys):
        path = str(REGRESSIONS[0])
        assert main(["fuzz", "--replay", path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_replay_command_json_mode(self, capsys):
        path = str(REGRESSIONS[0])
        assert main(["fuzz", "--replay", path, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["replay"] == path
        assert document["problems"] == []

    def test_replay_command_reports_violations(self, capsys):
        # A starvation budget turns the replay into a violation, so the
        # text mode prints the verdict and every problem line.
        path = str(REGRESSIONS[0])
        assert main(["fuzz", "--replay", path, "--budget", "10"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "did not quiesce" in out

    def test_fuzz_command_json_mode_carries_violations(
        self, tmp_path, capsys,
    ):
        code = main([
            "fuzz", "--seed", "5", "--runs", "1", "--budget", "10",
            "--out", str(tmp_path), "--json",
        ])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        (violation,) = document["violations"]
        assert violation["index"] == 0
        assert violation["problems"]
        assert document["repro_paths"]
