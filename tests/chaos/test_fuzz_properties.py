"""Property-based tests for the chaos fuzzer.

Three load-bearing claims get adversarial inputs instead of examples:
every drawn schedule is statically valid (the generator never needs the
runner to reject its output), the whole pipeline is a pure function of
``(seed, index)`` — byte-identical schedule *and* byte-identical run —
and the shrinker only ever returns schedules that still satisfy the
caller's failure predicate.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import (
    generate_schedule,
    run_schedule,
    shrink,
    validate_schedule,
)

BOUNDED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10**6)
indices = st.integers(min_value=0, max_value=500)


class TestGenerationProperties:
    @BOUNDED
    @given(seed=seeds, index=indices)
    def test_every_draw_validates(self, seed, index):
        """The generator only emits schedules the runner would accept."""
        validate_schedule(generate_schedule(seed, index))

    @BOUNDED
    @given(seed=seeds, index=indices)
    def test_draws_are_pure_functions_of_seed_and_index(self, seed, index):
        """Same (seed, index) — byte-identical schedule, forever."""
        assert generate_schedule(seed, index) == \
            generate_schedule(seed, index)

    @BOUNDED
    @given(seed=seeds, index=indices)
    def test_action_times_respect_the_slot_scheme(self, seed, index):
        """Barrier actions sit on the window grid, loop actions off it,
        and no two actions share a time — the static guarantee that
        makes every sharded draw schedulable."""
        schedule = generate_schedule(seed, index)
        times = [spec.at for spec in schedule.actions]
        assert len(times) == len(set(times))
        if not schedule.sharded:
            return
        for spec in schedule.actions:
            if spec.kind == "crash":
                assert spec.at % 1_000 == 0
            elif spec.kind == "evacuate":
                assert spec.until % 1_000 == 0
                assert spec.at % 1_000 != 0
            elif spec.kind == "storm":
                assert spec.at % 1_000 != 0


class TestRunProperties:
    @BOUNDED
    @given(
        seed=st.integers(min_value=0, max_value=10**4),
        index=st.integers(min_value=0, max_value=40),
    )
    def test_same_schedule_runs_byte_identical(self, seed, index):
        """The run is deterministic: counters, ledger and verdict are
        functions of the schedule alone."""
        schedule = generate_schedule(seed, index)
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.counters == second.counters
        assert first.ledger == second.ledger
        assert first.problems == second.problems


class TestShrinkProperties:
    @BOUNDED
    @given(seed=seeds, index=indices, pick=st.data())
    def test_shrunk_schedule_still_fails_and_validates(
        self, seed, index, pick
    ):
        """Whatever the failure predicate keys on, the shrinker's
        output satisfies it and remains statically valid."""
        schedule = generate_schedule(seed, index)
        if not schedule.actions:
            return
        needed = pick.draw(
            st.sampled_from(schedule.actions), label="needed action",
        )

        def still_fails(candidate):
            return needed in candidate.actions

        smallest = shrink(schedule, still_fails)
        assert still_fails(smallest)
        validate_schedule(smallest)
        assert len(smallest.actions) <= len(schedule.actions)
        assert len(smallest.pingers) <= len(schedule.pingers)
