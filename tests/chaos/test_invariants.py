"""Survivor invariants: clean systems pass, seeded damage is named."""

from repro.chaos import (
    check_chain_collapse,
    check_exactly_once,
    check_memory_accounting,
    check_no_stranded_forwarding,
    check_quiescence,
    check_recovery_state,
    survivor_invariants,
)
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.messages import MessageKind
from repro.policy.recovery import CrashRecoveryManager
from repro.workloads.closed_loop import ClientPool, ClosedLoopConfig
from repro.workloads.pingpong import echo_server
from tests.conftest import make_system

FAKE = ProcessId(creating_machine=0, local_id=999)


def parked(ctx):
    while True:
        yield ctx.receive()


def run_echo_workload(system, clients=2, requests=3):
    system.spawn(lambda ctx: echo_server(ctx), machine=1, name="echo")
    pool = ClientPool(
        system,
        ClosedLoopConfig(clients=clients, requests_per_client=requests),
    )
    pool.install()
    system.run(max_events=5_000_000)
    return pool


class TestCleanSystem:
    def test_quiesced_workload_passes_everything(self):
        system = make_system(machines=4)
        pool = run_echo_workload(system)
        assert survivor_invariants(system, pool=pool) == []

    def test_real_forwarding_chain_is_clean(self):
        system = make_system(machines=4)
        pid = system.spawn(parked, machine=1, name="mover")
        system.migrate(pid, 3)
        system.run(max_events=1_000_000)
        # A genuine post-migration entry on machine 1 pointing at 3.
        assert system.kernel(1).forwarding.lookup(pid) is not None
        assert check_chain_collapse(system) == []
        assert check_no_stranded_forwarding(system) == []


class TestSeededViolations:
    def test_dangling_chain_detected(self):
        system = make_system(machines=4)
        system.kernel(0).forwarding.install(FAKE, 2, now=0)
        problems = check_chain_collapse(system)
        assert len(problems) == 1
        assert "dangles at machine 2" in problems[0]

    def test_cyclic_chain_detected(self):
        system = make_system(machines=4)
        system.kernel(0).forwarding.install(FAKE, 1, now=0)
        system.kernel(1).forwarding.install(FAKE, 0, now=0)
        problems = check_chain_collapse(system)
        assert any("cycles" in p for p in problems)

    def test_residency_ends_the_walk_before_cycle_check(self):
        system = make_system(machines=4)
        pid = system.spawn(parked, machine=1, name="resident")
        # Entry pointing at the process's own machine: moot, not a loop
        # (the delivering kernel consults its process table first).
        system.kernel(1).forwarding.install(pid, 1, now=0)
        assert check_chain_collapse(system) == []

    def test_stranded_entry_for_dead_process_detected(self):
        system = make_system(machines=4)
        system.kernel(2).forwarding.install(FAKE, 0, now=0)
        problems = check_no_stranded_forwarding(system)
        assert len(problems) == 1
        assert f"dead {FAKE}" in problems[0]

    def test_incomplete_quota_detected(self):
        system = make_system(machines=4)
        pool = run_echo_workload(system)
        pool.request_counts[0] -= 1
        problems = check_exactly_once(pool)
        assert any("completed 2/3 requests" in p for p in problems)

    def test_reply_mismatch_detected(self):
        system = make_system(machines=4)
        pool = run_echo_workload(system)
        pool.mismatches += 1
        problems = check_exactly_once(pool)
        assert any("did not echo" in p for p in problems)

    def test_orphaned_recovery_state_detected(self):
        system = make_system(machines=4)
        recovery = CrashRecoveryManager(system)
        pid = system.spawn(parked, machine=2, name="victim")
        recovery.protect(pid)
        system.run(until=5_000)
        recovery.crash(2, executor=3)
        system.run(max_events=1_000_000)
        assert check_recovery_state(recovery) == []
        # Vanish the recovered process without an exit: orphaned.
        system.kernel(3).processes.pop(pid)
        system.kernel(3).memory.detach(pid)
        problems = check_recovery_state(recovery)
        assert any("orphaned" in p for p in problems)

    def test_memory_leak_detected(self):
        system = make_system(machines=4)
        pid = system.spawn(parked, machine=2, name="leak")
        system.run(until=5_000)
        # Drop the process table entry but keep its allocation.
        del system.kernel(2).processes[pid]
        problems = check_memory_accounting(system)
        assert len(problems) == 1
        assert "machine 2 memory accounting is off" in problems[0]

    def test_in_flight_traffic_fails_quiescence(self):
        system = make_system(machines=4)
        pid = system.spawn(parked, machine=1, name="target")
        system.run(until=2_000)
        system.kernel(0).send_to_process(
            ProcessAddress(pid, 1), "probe", {}, kind=MessageKind.USER,
        )
        problems = check_quiescence(system)
        assert len(problems) == 1
        assert "not quiescent" in problems[0]
