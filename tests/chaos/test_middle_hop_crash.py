"""Regression: crash the *middle* hop of a live forwarding chain.

A server that migrated 1 -> 2 -> 3 leaves a two-link chain behind:
machine 1 forwards to 2, machine 2 forwards to 3.  Fail-stop the middle
hop (machine 2) onto executor 1 — the machine whose own forwarding
entry points *at* the dead machine — while a request is chasing the
chain.  Recovery must overwrite the executor's stale entry with the
dead machine's strictly fresher pointer: the network redirect (2 -> 1)
otherwise turns the stale entry into a routing cycle 1 -> 2 -> 1 that
forwards the request forever and the simulation never quiesces.
"""

from repro.chaos import survivor_invariants
from repro.policy.recovery import CrashRecoveryManager
from repro.servers.common import lookup_service, rpc
from repro.workloads.pingpong import echo_server
from tests.conftest import drain, make_system

CRASH_DELAY = 5_000


def test_crash_middle_hop_with_traffic_in_flight():
    system = make_system(machines=5)

    def hop_server(ctx):
        yield from echo_server(ctx, service_name="hop")

    pid = system.spawn(hop_server, machine=1, name="hop")
    drain(system)

    # Build the chain: 1 -> 2, then 2 -> 3.  Machine 1's entry stays
    # stale (nothing updates it until traffic provokes a link update).
    assert system.kernel(1).migration.start(pid, 2)
    drain(system)
    assert system.kernel(2).migration.start(pid, 3)
    drain(system)
    assert system.kernel(1).forwarding.lookup(pid).machine == 2
    assert system.kernel(2).forwarding.lookup(pid).machine == 3

    # The client looked the service up before any migration-era traffic,
    # so its request enters the chain at machine 1 and is in flight when
    # the middle hop dies.
    replies = []

    def client(ctx):
        service = yield from lookup_service(ctx, "hop")
        yield ctx.sleep(CRASH_DELAY - 200)
        reply = yield from rpc(ctx, service, "echo", {"n": 1})
        replies.append(reply.payload)
        yield ctx.exit()

    system.spawn(client, machine=0, name="client")
    recovery = CrashRecoveryManager(system)

    def crash():
        recovery.protect_all(2)
        recovery.crash(2, 1)

    system.loop.call_at(system.loop.now + CRASH_DELAY, crash)
    drain(system, max_events=1_000_000)

    assert replies and replies[0]["machine"] == 3
    # The executor's entry now holds the dead machine's fresher pointer.
    assert system.kernel(1).forwarding.lookup(pid).machine == 3
    problems = survivor_invariants(system, recovery=recovery)
    assert not problems, "\n".join(problems)
