"""Scenario validation and the static fault schedule."""

import pytest

from repro.chaos import (
    ChaosScenario,
    CrashMachine,
    Evacuation,
    FlakyLinks,
    MigrationStorm,
    Move,
    Partition,
)
from repro.errors import ConfigError
from repro.kernel.ids import ProcessId

PID = ProcessId(creating_machine=2, local_id=1)


def scenario(*actions, name="test"):
    return ChaosScenario(name, tuple(actions))


class TestValidation:
    def test_valid_schedule_passes(self):
        scenario(
            MigrationStorm(at=10, moves=(Move(PID, 2, 3),)),
            CrashMachine(at=50, machine=3, executor=4),
            Partition(at=20, heal_at=60, group_a=(0, 1), group_b=(2, 3)),
            FlakyLinks(at=70, until=90),
            Evacuation(
                drain_at=100, machine=5, kill_at=200, executor=6,
                dests=(6, 7),
            ),
        ).validate(machines=8)

    def test_crash_machine_out_of_range(self):
        with pytest.raises(ConfigError, match="out of range"):
            scenario(
                CrashMachine(at=1, machine=9, executor=0)
            ).validate(machines=4)

    def test_machine_cannot_execute_its_own_crash(self):
        with pytest.raises(ConfigError, match="own crash executor"):
            scenario(
                CrashMachine(at=1, machine=2, executor=2)
            ).validate(machines=4)

    def test_double_crash_rejected(self):
        with pytest.raises(ConfigError, match="crashed twice"):
            scenario(
                CrashMachine(at=1, machine=2, executor=0),
                CrashMachine(at=9, machine=2, executor=3),
            ).validate(machines=4)

    def test_evacuated_machine_cannot_also_crash(self):
        with pytest.raises(ConfigError, match="crashed twice"):
            scenario(
                CrashMachine(at=1, machine=2, executor=0),
                Evacuation(
                    drain_at=5, machine=2, kill_at=9, executor=3,
                    dests=(3,),
                ),
            ).validate(machines=4)

    def test_dead_executor_rejected(self):
        with pytest.raises(ConfigError, match="already dead"):
            scenario(
                CrashMachine(at=1, machine=2, executor=0),
                CrashMachine(at=9, machine=3, executor=2),
            ).validate(machines=4)

    def test_executor_dying_later_is_fine(self):
        scenario(
            CrashMachine(at=1, machine=2, executor=3),
            CrashMachine(at=9, machine=3, executor=0),
        ).validate(machines=4)

    def test_partition_needs_disjoint_groups(self):
        with pytest.raises(ConfigError, match="overlap"):
            scenario(
                Partition(at=1, heal_at=9, group_a=(0, 1), group_b=(1, 2))
            ).validate(machines=4)

    def test_partition_window_must_be_positive(self):
        with pytest.raises(ConfigError, match="empty or negative"):
            scenario(
                Partition(at=9, heal_at=9, group_a=(0,), group_b=(1,))
            ).validate(machines=4)

    def test_flaky_pair_range_checked(self):
        with pytest.raises(ConfigError, match="out of range"):
            scenario(
                FlakyLinks(at=1, until=9, pairs=((0, 7),))
            ).validate(machines=4)

    def test_storm_needs_moves(self):
        with pytest.raises(ConfigError, match="at least one move"):
            scenario(MigrationStorm(at=1, moves=())).validate(machines=4)

    def test_move_to_self_rejected(self):
        with pytest.raises(ConfigError, match="goes nowhere"):
            scenario(
                MigrationStorm(at=1, moves=(Move(PID, 2, 2),))
            ).validate(machines=4)

    def test_scenario_needs_a_name(self):
        with pytest.raises(ConfigError, match="needs a name"):
            ChaosScenario("", ()).validate(machines=4)

    def test_crash_executor_out_of_range(self):
        with pytest.raises(ConfigError, match="executor 9 out of range"):
            scenario(
                CrashMachine(at=1, machine=2, executor=9)
            ).validate(machines=4)

    def test_crash_time_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="non-negative"):
            scenario(
                CrashMachine(at=-1, machine=2, executor=3)
            ).validate(machines=4)

    def test_partition_needs_non_empty_groups(self):
        with pytest.raises(ConfigError, match="non-empty"):
            scenario(
                Partition(at=1, heal_at=9, group_a=(), group_b=(1,))
            ).validate(machines=4)

    def test_partition_machine_out_of_range(self):
        with pytest.raises(ConfigError, match="out of range"):
            scenario(
                Partition(at=1, heal_at=9, group_a=(0,), group_b=(7,))
            ).validate(machines=4)

    def test_flaky_window_must_be_positive(self):
        with pytest.raises(ConfigError, match="empty or negative"):
            scenario(FlakyLinks(at=9, until=9)).validate(machines=4)

    def test_flaky_self_pair_rejected(self):
        with pytest.raises(ConfigError, match="no wire to itself"):
            scenario(
                FlakyLinks(at=1, until=9, pairs=((2, 2),))
            ).validate(machines=4)

    def test_storm_move_machines_range_checked(self):
        with pytest.raises(ConfigError, match="home 9 out of range"):
            scenario(
                MigrationStorm(at=1, moves=(Move(PID, 9, 3),))
            ).validate(machines=4)
        with pytest.raises(ConfigError, match="dest 9 out of range"):
            scenario(
                MigrationStorm(at=1, moves=(Move(PID, 2, 9),))
            ).validate(machines=4)

    def test_storm_time_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="non-negative"):
            scenario(
                MigrationStorm(at=-1, moves=(Move(PID, 2, 3),))
            ).validate(machines=4)

    def test_evacuation_window_must_be_positive(self):
        with pytest.raises(ConfigError, match="empty or negative"):
            scenario(
                Evacuation(
                    drain_at=9, machine=2, kill_at=9, executor=3,
                    dests=(3,),
                )
            ).validate(machines=4)

    def test_evacuation_machine_and_executor_range_checked(self):
        with pytest.raises(ConfigError, match="evacuated machine 9"):
            scenario(
                Evacuation(
                    drain_at=1, machine=9, kill_at=9, executor=3,
                    dests=(3,),
                )
            ).validate(machines=4)
        with pytest.raises(ConfigError, match="executor 9 out of range"):
            scenario(
                Evacuation(
                    drain_at=1, machine=2, kill_at=9, executor=9,
                    dests=(3,),
                )
            ).validate(machines=4)

    def test_evacuation_cannot_execute_its_own_kill(self):
        with pytest.raises(ConfigError, match="its own kill"):
            scenario(
                Evacuation(
                    drain_at=1, machine=2, kill_at=9, executor=2,
                    dests=(3,),
                )
            ).validate(machines=4)

    def test_evacuation_needs_destinations(self):
        with pytest.raises(ConfigError, match="at least one destination"):
            scenario(
                Evacuation(
                    drain_at=1, machine=2, kill_at=9, executor=3,
                    dests=(),
                )
            ).validate(machines=4)

    def test_evacuation_dest_out_of_range(self):
        with pytest.raises(ConfigError, match="dest 9 out of range"):
            scenario(
                Evacuation(
                    drain_at=1, machine=2, kill_at=9, executor=3,
                    dests=(9,),
                )
            ).validate(machines=4)

    def test_evacuation_dest_cannot_be_the_drained_machine(self):
        with pytest.raises(ConfigError, match="being drained"):
            scenario(
                Evacuation(
                    drain_at=1, machine=2, kill_at=9, executor=3,
                    dests=(2,),
                )
            ).validate(machines=4)


class TestShardSafety:
    def test_storm_only_scenario_is_shard_safe(self):
        assert scenario(
            MigrationStorm(at=1, moves=(Move(PID, 2, 3),))
        ).shard_safe

    def test_crash_and_evacuation_are_shard_safe(self):
        assert scenario(
            MigrationStorm(at=1, moves=(Move(PID, 2, 3),)),
            CrashMachine(at=5, machine=3, executor=0),
            Evacuation(
                drain_at=7, machine=1, kill_at=9, executor=0,
                dests=(0,),
            ),
        ).shard_safe

    def test_wire_surgery_is_not_shard_safe(self):
        assert not scenario(
            Partition(at=1, heal_at=5, group_a=(0, 1), group_b=(2, 3)),
        ).shard_safe
        assert not scenario(
            FlakyLinks(at=1, until=5),
        ).shard_safe


class TestFaultSchedule:
    def test_schedule_is_static_and_sorted(self):
        s = scenario(
            CrashMachine(at=50, machine=3, executor=4),
            Partition(at=20, heal_at=60, group_a=(1, 0), group_b=(2, 3)),
            MigrationStorm(at=10, moves=(Move(PID, 2, 3),)),
        )
        schedule = s.fault_schedule()
        assert schedule == sorted(schedule)
        assert [entry[:2] for entry in schedule] == [
            (10, "storm-move"),
            (20, "partition"),
            (50, "crash"),
            (60, "heal"),
        ]
        # Pure function of the scenario: identical every call.
        assert s.fault_schedule() == schedule

    def test_evacuation_contributes_drain_and_kill(self):
        s = scenario(
            Evacuation(
                drain_at=5, machine=2, kill_at=9, executor=3,
                dests=(3, 0),
            ),
        )
        assert [entry[1] for entry in s.fault_schedule()] == [
            "drain", "maintenance-kill",
        ]

    def test_flaky_contributes_window_edges(self):
        s = scenario(
            FlakyLinks(at=5, until=9),
            FlakyLinks(at=20, until=30, pairs=((0, 1),)),
        )
        assert [entry[:2] for entry in s.fault_schedule()] == [
            (5, "flaky"), (9, "flaky-end"),
            (20, "flaky"), (30, "flaky-end"),
        ]
        details = [entry[2] for entry in s.fault_schedule()]
        assert details[0] == "all wires"
        assert details[2] == "1 wire pair(s)"

    def test_unprotected_crash_marked(self):
        s = scenario(
            CrashMachine(at=1, machine=2, executor=3, protect=False)
        )
        assert "(unprotected)" in s.fault_schedule()[0][2]
