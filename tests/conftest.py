"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import System
from repro.workloads.results import ResultsBoard


def make_system(machines: int = 4, **overrides) -> System:
    """A System with test-friendly defaults (servers on by default)."""
    return System(SystemConfig(machines=machines, **overrides))


def make_bare_system(machines: int = 3, **overrides) -> System:
    """A System without any system processes (pure kernel testing)."""
    overrides.setdefault("boot_servers", False)
    return System(SystemConfig(machines=machines, **overrides))


@pytest.fixture
def board() -> ResultsBoard:
    """A fresh results blackboard."""
    return ResultsBoard()


@pytest.fixture
def system() -> System:
    """A booted 4-machine system."""
    return make_system()


@pytest.fixture
def bare_system() -> System:
    """A 3-machine system with no servers."""
    return make_bare_system()


def drain(system: System, max_events: int = 2_000_000) -> int:
    """Run the system until its event queue is empty."""
    fired = system.run(max_events=max_events)
    assert fired < max_events, "simulation did not quiesce"
    return fired


def spawn_and_drain(system: System, program, machine: int = 0, name: str = ""):
    """Spawn one program and run to quiescence; returns its pid."""
    pid = system.spawn(program, machine=machine, name=name)
    drain(system)
    return pid
