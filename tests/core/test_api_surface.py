"""Tests for tracer unsubscribe and System.spawn priority."""

from tests.conftest import drain, make_bare_system


class TestUnsubscribe:
    def test_unsubscribed_listener_stops_seeing_records(self):
        system = make_bare_system()
        seen = []
        system.tracer.subscribe(seen.append)
        system.spawn(lambda ctx: iter(()), machine=0)
        count_at_unsub = len(seen)
        assert count_at_unsub > 0
        system.tracer.unsubscribe(seen.append)
        # unsubscribe removed *a different bound method object*; use the
        # identical callable to test removal semantics properly.

    def test_unsubscribe_identical_callable(self):
        system = make_bare_system()
        seen = []
        listener = seen.append
        system.tracer.subscribe(listener)
        system.spawn(lambda ctx: iter(()), machine=0)
        before = len(seen)
        system.tracer.unsubscribe(listener)
        system.spawn(lambda ctx: iter(()), machine=1)
        assert len(seen) == before

    def test_unsubscribe_unknown_is_noop(self):
        system = make_bare_system()
        system.tracer.unsubscribe(lambda r: None)

    def test_affinity_stop_detaches_observer(self):
        from repro.policy.affinity import AffinityPolicy

        system = make_bare_system()
        policy = AffinityPolicy(system)
        policy.install()
        policy.stop()
        count_before = sum(policy.matrix.counts.values())
        # New deliveries no longer feed the matrix.
        def server(ctx):
            while True:
                yield ctx.receive()

        from repro.kernel.ids import ProcessAddress
        from repro.kernel.messages import MessageKind

        pid = system.spawn(server, machine=0)
        system.kernel(1).send_to_process(
            ProcessAddress(pid, 0), "x", {}, kind=MessageKind.USER,
        )
        drain(system)
        assert sum(policy.matrix.counts.values()) == count_before


class TestSpawnPriority:
    def test_system_spawn_passes_priority(self):
        system = make_bare_system()
        order = []

        def make_job(tag):
            def job(ctx):
                yield ctx.compute(10_000)
                order.append(tag)
                yield ctx.exit()
            return job

        system.spawn(make_job("low"), machine=0, priority=0)
        system.spawn(make_job("high"), machine=0, priority=3)
        drain(system)
        assert order == ["high", "low"]
