"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_migrate_prints_cost_summary(self, capsys):
        assert main(["migrate", "--dest", "1"]) == 0
        out = capsys.readouterr().out
        assert "admin_messages: 9" in out.replace(" ", "").replace(
            "admin_messages:9", "admin_messages: 9"
        ) or "admin_messages" in out
        assert "success: True" in out

    def test_migrate_custom_machines(self, capsys):
        assert main(["migrate", "--machines", "6", "--source", "2",
                     "--dest", "5"]) == 0
        out = capsys.readouterr().out
        assert "dest: 5" in out

    def test_shell_runs_lines(self, capsys):
        assert main(["shell", "help", "ps"]) == 0
        out = capsys.readouterr().out
        assert "demos$ help" in out
        assert "commands:" in out

    def test_report_prints_headlines(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "migrations: 1 completed" in out
        assert "machines" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
