"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.obs.exporters import METRICS_SCHEMA, TRACE_SCHEMA


class TestCli:
    def test_migrate_prints_cost_summary(self, capsys):
        assert main(["migrate", "--dest", "1"]) == 0
        out = capsys.readouterr().out
        assert "admin_messages: 9" in out.replace(" ", "").replace(
            "admin_messages:9", "admin_messages: 9"
        ) or "admin_messages" in out
        assert "success: True" in out

    def test_migrate_custom_machines(self, capsys):
        assert main(["migrate", "--machines", "6", "--source", "2",
                     "--dest", "5"]) == 0
        out = capsys.readouterr().out
        assert "dest: 5" in out

    def test_shell_runs_lines(self, capsys):
        assert main(["shell", "help", "ps"]) == 0
        out = capsys.readouterr().out
        assert "demos$ help" in out
        assert "commands:" in out

    def test_report_prints_headlines(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "migrations: 2 completed" in out
        assert "machines" in out

    def test_report_prints_latency_percentiles(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "request latency: p50" in out
        assert "(40 requests)" in out

    def test_report_pool_size_is_configurable(self, capsys):
        assert main(["report", "--clients", "2", "--requests", "3"]) == 0
        out = capsys.readouterr().out
        assert "(6 requests)" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReportSharded:
    def test_text_mode_names_the_shard_count(self, capsys):
        assert main(
            ["report", "--shards", "2", "--requests", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "sharded execution: 2 shards" in out
        assert "lookahead" in out

    def test_json_mode_carries_shard_count(self, capsys):
        assert main(
            ["report", "--shards", "2", "--requests", "3", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == METRICS_SCHEMA
        assert document["shards"] == 2
        assert document["report"]["machines"] == 4


class TestReportJson:
    def test_emits_valid_metrics_document(self, capsys):
        assert main(["report", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == METRICS_SCHEMA
        assert document["now_us"] > 0
        assert set(document) >= {
            "counters", "gauges", "histograms", "report",
        }

    def test_report_section_carries_headline_numbers(self, capsys):
        main(["report", "--json"])
        document = json.loads(capsys.readouterr().out)
        report = document["report"]
        assert report["migrations_completed"] == 2
        assert report["admin_messages"] == 18
        assert report["machines"] == 4

    def test_report_json_carries_latency_percentiles(self, capsys):
        main(["report", "--json"])
        document = json.loads(capsys.readouterr().out)
        digest = document["report"]["request_latency"]
        assert digest["count"] == 40
        assert 0 < digest["p50_us"] <= digest["p95_us"] <= digest["p99_us"]
        assert digest["p99_us"] <= digest["max_us"]
        histogram = document["histograms"]["workload.request_latency_us"]
        assert histogram["count"] == 40
        assert histogram["p50"] == digest["p50_us"]

    def test_counters_are_labeled_series(self, capsys):
        main(["report", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert document["counters"]["migration.completed{machine=0}"] == 1
        assert any(
            key.startswith("kernel.messages_delivered{")
            for key in document["counters"]
        )

    def test_migration_histograms_present(self, capsys):
        main(["report", "--json"])
        document = json.loads(capsys.readouterr().out)
        downtime = document["histograms"]["migration.downtime_us"]
        assert downtime["count"] == 2
        assert downtime["min"] > 0


class TestSloCommand:
    def test_prints_one_line_per_policy(self, capsys):
        assert main(["slo", "--clients", "8"]) == 0
        out = capsys.readouterr().out
        assert "p99 SLO 10000us" in out
        assert "queue-depth" in out
        assert "latency-aware" in out

    def test_json_shows_latency_aware_winning_the_burst(self, capsys):
        assert main(["slo", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["slo_us"] == 10_000
        queue, latency = document["policies"]
        assert queue["policy"] == "queue-depth"
        assert latency["policy"] == "latency-aware"
        # The mailbox backlog is invisible to run-queue spread: the
        # queue-depth arm never moves and its tail rots, while the
        # latency-aware arm migrates and lands a lower p99.
        assert queue["migrations"] == 0
        assert queue["first_move_at_us"] is None
        assert latency["migrations"] >= 1
        assert latency["p99_us"] < queue["p99_us"]
        assert latency["replies_in_slo"] > queue["replies_in_slo"]
        assert latency["slo_breach_samples"] >= 2

    def test_text_mode_prints_first_move_time(self, capsys):
        # Default client count: the latency-aware arm migrates, so the
        # text report names the first move's timestamp.
        assert main(["slo"]) == 0
        out = capsys.readouterr().out
        assert "first move t=" in out
        assert "never moved" in out

    def test_slo_threshold_is_configurable(self, capsys):
        assert main(["slo", "--clients", "8", "--slo-us", "25000"]) == 0
        out = capsys.readouterr().out
        assert "p99 SLO 25000us" in out


class TestTraceCommand:
    def test_writes_perfetto_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["otherData"]["schema"] == TRACE_SCHEMA
        assert document["displayTimeUnit"] == "ms"

    def test_trace_embeds_metrics_snapshot(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        main(["trace", "--out", str(out)])
        document = json.loads(out.read_text())
        metrics = document["otherData"]["metrics"]
        assert metrics["counters"]["migration.completed{machine=0}"] == 1
        assert "histograms" in metrics

    def test_trace_contains_all_eight_steps_in_order(self, tmp_path,
                                                     capsys):
        out = tmp_path / "trace.json"
        main(["trace", "--out", str(out)])
        document = json.loads(out.read_text())
        (complete,) = [
            e for e in document["traceEvents"] if e["ph"] == "X"
        ]
        steps = complete["args"]["steps"]
        assert sorted(set(steps)) == [1, 2, 3, 4, 5, 6, 7, 8]
        instants = [
            e for e in document["traceEvents"]
            if e["ph"] == "i" and e["args"].get("step")
        ]
        times = [e["ts"] for e in instants]
        assert times == sorted(times)

    def test_trace_includes_forwarding_child_event(self, tmp_path,
                                                   capsys):
        out = tmp_path / "trace.json"
        main(["trace", "--out", str(out)])
        document = json.loads(out.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "FORWARD_HOP" in names

    def test_trace_prints_span_summary(self, tmp_path, capsys):
        main(["trace", "--out", str(tmp_path / "t.json")])
        printed = capsys.readouterr().out
        assert "migrate p0.1 0->2: ok" in printed
        assert "wrote Chrome trace" in printed
