"""Tests for SystemConfig validation."""

import pytest

from repro.core.config import SystemConfig
from repro.errors import ConfigError
from repro.kernel.kernel import UndeliverablePolicy


class TestValidation:
    def test_defaults_valid(self):
        SystemConfig().validate()

    def test_zero_machines_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(machines=0).validate()

    def test_bad_topology_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(topology="moebius").validate()

    def test_all_shapes_accepted(self):
        for shape in (
            "mesh", "line", "ring", "star", "torus", "hypercube", "cliques",
        ):
            SystemConfig(machines=4, topology=shape).validate()

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ConfigError):
            SystemConfig(machines=6, topology="hypercube").validate()
        SystemConfig(machines=8, topology="hypercube").validate()

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(latency=-1).validate()

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(bandwidth=0).validate()

    def test_zero_quantum_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(quantum=0).validate()

    def test_zero_packet_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(max_data_packet=0).validate()

    def test_control_machine_bounds(self):
        with pytest.raises(ConfigError):
            SystemConfig(machines=2, control_machine=2).validate()

    def test_fs_machine_bounds_only_when_booting_servers(self):
        with pytest.raises(ConfigError):
            SystemConfig(machines=1, file_system_machine=1).validate()
        SystemConfig(
            machines=1, file_system_machine=1, boot_servers=False,
        ).validate()

    def test_return_to_sender_requires_no_forwarding(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                undeliverable_policy=UndeliverablePolicy.RETURN_TO_SENDER,
            ).validate()
        SystemConfig(
            undeliverable_policy=UndeliverablePolicy.RETURN_TO_SENDER,
            leave_forwarding_address=False,
        ).validate()
