"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        exception_types = [
            value for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        for exc_type in exception_types:
            assert issubclass(exc_type, errors.ReproError), exc_type

    def test_kernel_errors_grouped(self):
        for exc_type in (
            errors.UnknownProcessError,
            errors.InvalidLinkError,
            errors.LinkAccessError,
            errors.ProcessStateError,
            errors.MigrationError,
            errors.TransferError,
            errors.MemoryError_,
        ):
            assert issubclass(exc_type, errors.KernelError)

    def test_refusal_is_a_migration_error(self):
        assert issubclass(
            errors.MigrationRefusedError, errors.MigrationError,
        )

    def test_server_errors_grouped(self):
        assert issubclass(errors.FileSystemError, errors.ServerError)
        assert issubclass(errors.SwitchboardError, errors.ServerError)

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.NoRouteError("nope")

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)
