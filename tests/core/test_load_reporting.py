"""Tests for in-system load/memory reporting (§3.1)."""

from repro.servers.common import rpc
from tests.conftest import drain, make_system


class TestLoadReporting:
    def test_pm_accumulates_load_reports(self):
        system = make_system(load_report_interval=10_000)
        status = {}

        def probe(ctx):
            yield ctx.sleep(50_000)
            reply = yield from rpc(
                ctx, ctx.bootstrap["process_manager"], "status", {},
            )
            status.update(reply.payload)
            yield ctx.exit()

        system.spawn(probe, machine=2, name="probe")
        system.run(until=100_000)
        system.stop_load_reporting()
        drain(system)
        loads = status["loads"]
        assert set(loads) == {0, 1, 2, 3}
        assert all("run_queue" in entry for entry in loads.values())

    def test_memory_scheduler_places_by_real_free_memory(self):
        # Fill machine 0's memory so reports steer placement elsewhere.
        system = make_system(load_report_interval=10_000)
        system.kernel(0).memory.reserve("ballast",
                                        system.kernel(0).memory.free_bytes)
        placement = {}

        def probe(ctx):
            yield ctx.sleep(40_000)
            reply = yield from rpc(
                ctx, ctx.bootstrap["memory_scheduler"], "place",
                {"bytes": 10_000},
            )
            placement.update(reply.payload)
            yield ctx.exit()

        system.spawn(probe, machine=2, name="probe")
        system.run(until=120_000)
        system.stop_load_reporting()
        drain(system)
        assert placement["ok"]
        assert placement["machine"] != 0

    def test_reporting_off_by_default(self):
        system = make_system()
        system.run(until=100_000)
        sends = system.network.stats.sends_by_category
        assert sends.get("load", 0) == 0

    def test_stop_load_reporting_lets_loop_drain(self):
        system = make_system(load_report_interval=5_000)
        system.run(until=20_000)
        system.stop_load_reporting()
        drain(system)  # would hang (assert) if the timer kept rearming
