"""Tests for the System facade."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import System
from repro.errors import ConfigError, UnknownProcessError
from tests.conftest import drain, make_bare_system, make_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestConstruction:
    def test_boots_figure_2_3_servers(self):
        system = make_system()
        names = {s.name for k in system.kernels for s in k.processes.values()}
        assert {
            "switchboard", "process_manager", "memory_scheduler",
            "command_interpreter", "disk_driver", "buffer_manager",
            "directory_manager", "file_system",
        } <= names

    def test_bare_system_has_no_processes(self):
        system = make_bare_system()
        assert all(not k.processes for k in system.kernels)

    def test_well_known_services_registered(self):
        system = make_system()
        for name in ("switchboard", "process_manager", "memory_scheduler",
                     "file_system", "command_interpreter"):
            assert name in system.well_known

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            System(SystemConfig(machines=0))

    def test_kernel_accessor_bounds(self):
        system = make_bare_system(machines=2)
        with pytest.raises(ConfigError):
            system.kernel(5)


class TestOperations:
    def test_spawn_places_on_requested_machine(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=2, name="p")
        assert system.where_is(pid) == 2
        assert pid.creating_machine == 2

    def test_migrate_unknown_pid_raises(self):
        from repro.kernel.ids import ProcessId

        system = make_bare_system()
        with pytest.raises(UnknownProcessError):
            system.migrate(ProcessId(0, 42), 1)

    def test_ticket_fills_in_on_completion(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        assert ticket.initiated and not ticket.done
        drain(system)
        assert ticket.done and ticket.success
        assert ticket.record.dest == 1

    def test_migrate_callback_invoked(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        calls = []
        system.migrate(pid, 1, on_done=lambda ok, rec: calls.append(ok))
        drain(system)
        assert calls == [True]

    def test_run_until_pauses_and_resumes(self):
        system = make_bare_system()
        finished = {}

        def worker(ctx):
            yield ctx.compute(10_000)
            finished["at"] = ctx.now
            yield ctx.exit()

        system.spawn(worker, machine=0)
        system.run(until=5_000)
        assert "at" not in finished
        drain(system)
        assert finished["at"] >= 10_000

    def test_migration_records_aggregated_and_sorted(self):
        system = make_bare_system()
        first = system.spawn(parked, machine=0)
        second = system.spawn(parked, machine=1)
        system.migrate(first, 1)
        drain(system)
        system.migrate(second, 2)
        drain(system)
        records = system.migration_records()
        assert len(records) == 2
        assert records[0].pid == first
        assert records[0].started_at <= records[1].started_at

    def test_loads_snapshot_shape(self):
        system = make_bare_system(machines=2)
        loads = system.loads()
        assert set(loads) == {0, 1}
        assert {"run_queue", "memory_free", "processes"} <= set(loads[0])

    def test_is_alive_and_process_state(self):
        system = make_bare_system()

        def brief(ctx):
            yield ctx.exit()

        pid = system.spawn(brief, machine=0)
        assert system.is_alive(pid)
        drain(system)
        assert not system.is_alive(pid)
        assert system.process_state(pid) is None

    def test_total_forwarding_entries(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        assert system.total_forwarding_entries() == 0
        system.migrate(pid, 1)
        drain(system)
        assert system.total_forwarding_entries() == 1


class TestRegistry:
    def test_registered_programs_spawnable_by_name(self):
        from repro.core.registry import lookup_program, registered_programs

        programs = registered_programs()
        assert "compute" in programs
        assert "pinger" in programs
        assert lookup_program("compute") is programs["compute"]

    def test_unknown_program_lookup_raises(self):
        from repro.core.registry import lookup_program

        with pytest.raises(ConfigError):
            lookup_program("no-such-program")

    def test_duplicate_registration_rejected(self):
        from repro.core.registry import register_program

        @register_program("test-dup-unique-name")
        def first(ctx):
            yield ctx.exit()

        with pytest.raises(ConfigError):
            @register_program("test-dup-unique-name")
            def second(ctx):
                yield ctx.exit()

    def test_reregistering_same_factory_is_fine(self):
        from repro.core.registry import register_program
        from repro.workloads.compute import compute_bound

        register_program("compute")(compute_bound)
