"""Chaos test: heavy mixed workload + random migrations + channel faults.

A deterministic "monkey" moves random user processes between random
machines every few milliseconds while echo traffic, file I/O, and compute
jobs run, over a lossy jittery network.  Global invariants:

- every workload completes with correct results;
- no message is lost or duplicated (workload-level transcripts);
- the network quiesces (no retransmission leaks);
- memory accounting balances on every machine;
- every forwarding address left behind is either live or collected.
"""

from repro.net.channel import FaultPlan
from repro.policy.metrics import migratable_processes
from repro.workloads.compute import compute_bound
from repro.workloads.file_clients import file_io_client
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_system

MONKEY_PERIOD = 7_000
HORIZON = 400_000


class TestChaos:
    def test_everything_survives_the_monkey(self):
        board = ResultsBoard()
        system = make_system(
            seed=2026,
            faults=FaultPlan(drop_probability=0.05, max_jitter=500),
        )
        rng = system.rngs.stream("monkey")

        system.spawn(lambda ctx: echo_server(ctx), machine=2, name="echo")
        system.spawn(
            lambda ctx: pinger(ctx, rounds=10, gap=8_000, board=board,
                               key="ping"),
            machine=3, name="pinger",
        )
        for tag in range(2):
            system.spawn(
                lambda ctx, t=tag: file_io_client(
                    ctx, tag=t, operations=5, gap=4_000, board=board,
                    key="io",
                ),
                machine=tag, name=f"io-{tag}",
            )
        for i in range(3):
            system.spawn(
                lambda ctx: compute_bound(ctx, total=50_000, board=board,
                                          key="compute"),
                machine=0, name=f"crunch-{i}",
            )

        moves = {"count": 0}

        def monkey():
            machines = [k.machine for k in system.kernels]
            source = rng.choice(machines)
            candidates = migratable_processes(system, source)
            if candidates:
                victim = rng.choice(candidates)
                dest = rng.choice(
                    [m for m in machines if m != source]
                )
                if system.kernel(source).migration.start(victim, dest):
                    moves["count"] += 1
            if system.loop.now < HORIZON:
                system.loop.call_after(MONKEY_PERIOD, monkey)

        system.loop.call_after(MONKEY_PERIOD, monkey)
        drain(system, max_events=50_000_000)

        # The monkey really did interfere.
        assert moves["count"] >= 10

        # Every workload finished, correctly.
        ping = board.only("ping-summary")["transcript"]
        assert [t["round"] for t in ping] == list(range(10))
        io_results = board.get("io")
        assert len(io_results) == 2
        for result in io_results:
            assert result["errors"] == [], result
        assert len(board.get("compute")) == 3

        # Transport-level conservation.
        assert system.network.quiescent()

        # Memory accounting balances: used == sum of resident images of
        # the processes actually present.
        for kernel in system.kernels:
            expected = sum(
                state.memory.resident_bytes
                for state in kernel.processes.values()
            )
            assert kernel.memory.used_bytes == expected, kernel

        # Forwarding entries only for processes that are still alive
        # somewhere (dead ones were collected via backward pointers).
        for kernel in system.kernels:
            for entry in kernel.forwarding.entries():
                assert system.is_alive(entry.pid), entry
