"""Bit-for-bit determinism: identical configurations produce identical
histories, including under fault injection and migration."""

from repro.net.channel import FaultPlan
from repro.workloads.file_clients import file_io_client
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_system


def run_once(seed: int):
    board = ResultsBoard()
    system = make_system(
        seed=seed,
        faults=FaultPlan(drop_probability=0.1, max_jitter=1_000),
    )
    box = {}

    def server(ctx):
        box["pid"] = ctx.pid
        yield from echo_server(ctx)

    system.spawn(server, machine=2, name="echo")
    system.spawn(
        lambda ctx: pinger(ctx, rounds=6, gap=3_000, board=board, key="p"),
        machine=3, name="pinger",
    )
    system.spawn(
        lambda ctx: file_io_client(ctx, tag=1, operations=3, board=board,
                                   key="io"),
        machine=0, name="io",
    )
    system.loop.call_at(10_000, lambda: system.migrate(box["pid"], 1))
    drain(system, max_events=10_000_000)
    # Message serials come from a process-global counter; normalise them
    # so two runs in one interpreter compare equal.
    import re

    trace_tail = [
        re.sub(r"serial=\d+", "serial=*", str(r))
        for r in system.tracer
    ][-50:]
    return {
        "events": system.loop.events_fired,
        "final_time": system.loop.now,
        "network": system.network.stats.snapshot(),
        "ping": board.get("p"),
        "io_latencies": board.only("io")["latencies"],
        "trace_tail": trace_tail,
    }


class TestDeterminism:
    def test_same_seed_identical_history(self):
        first = run_once(seed=123)
        second = run_once(seed=123)
        assert first == second

    def test_different_seed_different_fault_pattern(self):
        first = run_once(seed=1)
        second = run_once(seed=2)
        # Payload-level results match (correctness is seed-independent)...
        assert [t["echo"] for t in first["ping"]] == [
            t["echo"] for t in second["ping"]
        ]
        # ...but the fault pattern differs.
        assert (
            first["network"]["packets_dropped"]
            != second["network"]["packets_dropped"]
            or first["final_time"] != second["final_time"]
        )
