"""Smoke tests: every example script runs clean and prints its story."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "9 admin messages" in out
        assert "Worker's diary" in out

    def test_fileserver_migration(self):
        out = run_example("fileserver_migration.py")
        assert "verdict: OK" in out
        assert "after 2 migrations" in out

    def test_load_balancing(self):
        out = run_example("load_balancing.py")
        assert "makespan speedup from migration" in out

    def test_sinking_ship(self):
        out = run_example("sinking_ship.py")
        assert "no round was served by the dead machine" in out

    def test_shell_session(self):
        out = run_example("shell_session.py")
        assert "demos$ migrate" in out
        assert "machine=3" in out

    def test_crash_recovery(self):
        out = run_example("crash_recovery.py")
        assert "recovered on machine 3" in out
        assert "network quiescent: True" in out

    def test_affinity(self):
        out = run_example("affinity.py")
        assert "affinity policy migrations" in out
        assert "busiest pair" in out
