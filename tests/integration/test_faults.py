"""Migration under network faults.

The paper assumes only eventual delivery from the transport; migration
must therefore survive packet drops, duplicates, and jitter during every
phase of the protocol.
"""

from repro.net.channel import FaultPlan
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_bare_system, make_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestMigrationUnderFaults:
    def test_migration_completes_despite_drops(self):
        system = make_bare_system(
            faults=FaultPlan(drop_probability=0.25), seed=11,
        )
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 2)
        drain(system)
        assert ticket.success
        assert system.where_is(pid) == 2
        assert system.network.stats.retransmissions > 0

    def test_admin_message_count_unaffected_by_retransmits(self):
        """Retransmissions are a transport matter; the protocol still
        exchanges exactly nine administrative messages."""
        system = make_bare_system(
            faults=FaultPlan(drop_probability=0.3), seed=12,
        )
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.record.admin_message_count == 9

    def test_migration_under_duplication_and_jitter(self):
        system = make_bare_system(
            faults=FaultPlan(duplicate_probability=0.3, max_jitter=3_000),
            seed=13,
        )
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 2)
        drain(system)
        assert ticket.success
        assert system.where_is(pid) == 2

    def test_repeated_migrations_under_combined_faults(self):
        system = make_bare_system(
            machines=4,
            faults=FaultPlan(
                drop_probability=0.15,
                duplicate_probability=0.15,
                max_jitter=2_000,
            ),
            seed=14,
        )
        pid = system.spawn(parked, machine=0)
        for dest in (1, 2, 3, 0, 2):
            ticket = system.migrate(pid, dest)
            drain(system)
            assert ticket.success, f"failed moving to {dest}"
        assert system.where_is(pid) == 2

    def test_workload_correct_under_faults_and_migration(self):
        board = ResultsBoard()
        system = make_system(
            faults=FaultPlan(drop_probability=0.1, max_jitter=1_000),
            seed=15,
        )
        server_box = {}

        def server(ctx):
            server_box["pid"] = ctx.pid
            yield from echo_server(ctx)

        system.spawn(server, machine=2, name="echo")
        system.spawn(
            lambda ctx: pinger(ctx, rounds=8, gap=5_000, board=board,
                               key="f"),
            machine=3, name="pinger",
        )
        system.loop.call_at(
            15_000, lambda: system.migrate(server_box["pid"], 0),
        )
        drain(system, max_events=5_000_000)
        transcript = board.only("f-summary")["transcript"]
        assert [t["round"] for t in transcript] == list(range(8))
        assert transcript[-1]["server_machine"] == 0
