"""Property-based end-to-end test: file-system correctness is invariant
under arbitrary migration schedules of the file-server front end."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.servers.filesystem import FileClient
from tests.conftest import drain, make_system

BOUNDED = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

schedules = st.lists(
    st.tuples(
        st.integers(min_value=1_000, max_value=120_000),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=3,
)

write_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2_000),  # offset
        st.binary(min_size=1, max_size=600),  # data
    ),
    min_size=1,
    max_size=5,
)


class TestFileSystemInvariance:
    @BOUNDED
    @given(schedule=schedules, plan=write_plans)
    def test_reads_reflect_all_writes_regardless_of_migration(
        self, schedule, plan,
    ):
        system = make_system()
        fs_pid = system.server_pids["file_system"]
        outcome = {}

        # The reference picture of the file after all writes, in order.
        size = max(offset + len(data) for offset, data in plan)
        reference = bytearray(size)
        for offset, data in plan:
            reference[offset:offset + len(data)] = data

        def client(ctx):
            fs = FileClient(ctx)
            yield from fs.create("prop")
            handle = yield from fs.open("prop")
            for offset, data in plan:
                yield from fs.write(handle, offset, data)
                yield ctx.sleep(3_000)
            outcome["data"] = yield from fs.read(handle, 0, size)
            yield ctx.exit()

        system.spawn(client, machine=0, name="client")
        for at, dest in schedule:
            system.loop.call_at(
                at,
                lambda d=dest: (
                    system.kernel_hosting(fs_pid)
                    and system.kernel_hosting(fs_pid).migration.start(
                        fs_pid, d)
                ),
            )
        drain(system, max_events=20_000_000)
        assert outcome["data"] == bytes(reference)
