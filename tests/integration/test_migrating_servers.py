"""Migrating *system* processes — "the worst case" (paper §2.4, §5).

"Moving a system process (or, more precisely, a server process), is more
difficult, since many processes may have links to it, and such links may
last a long time, being duplicated and passed to other processes."

These tests migrate the switchboard and the process manager themselves
while clients are actively using them.
"""

from repro.servers.common import lookup_service, rpc
from repro.servers.switchboard import register_service
from tests.conftest import drain, make_system


class TestMigratingSwitchboard:
    def test_lookups_keep_working_across_switchboard_migration(self):
        system = make_system()
        resolved = []

        def provider(ctx):
            yield from register_service(ctx, "svc")
            while True:
                msg = yield ctx.receive()
                if msg.delivered_link_ids:
                    yield ctx.send(msg.delivered_link_ids[0], op="hi")
                    yield ctx.destroy_link(msg.delivered_link_ids[0])

        def make_consumer(tag, delay):
            def consumer(ctx):
                yield ctx.sleep(delay)
                link = yield from lookup_service(ctx, "svc")
                reply = yield from rpc(ctx, link, "call")
                resolved.append((tag, reply.op))
                yield ctx.exit()
            return consumer

        system.spawn(provider, machine=1, name="provider")
        # Consumers before, during, and after the migration window.
        for tag, delay in enumerate((1_000, 20_000, 60_000)):
            system.spawn(make_consumer(tag, delay), machine=2 + tag % 2,
                         name=f"consumer-{tag}")
        switchboard_pid = system.server_pids["switchboard"]
        system.loop.call_at(
            15_000, lambda: system.migrate(switchboard_pid, 3),
        )
        drain(system)
        assert sorted(resolved) == [(0, "hi"), (1, "hi"), (2, "hi")]
        assert system.where_is(switchboard_pid) == 3

    def test_parked_lookup_answered_after_switchboard_moves(self):
        """A lookup parked inside the switchboard (name not yet
        registered) travels with it and is answered from the new home."""
        system = make_system()
        resolved = []

        def early_consumer(ctx):
            link = yield from lookup_service(ctx, "late")  # parks
            reply = yield from rpc(ctx, link, "call")
            resolved.append(reply.op)
            yield ctx.exit()

        def late_provider(ctx):
            yield ctx.sleep(60_000)  # registers after the migration
            yield from register_service(ctx, "late")
            msg = yield ctx.receive()
            yield ctx.send(msg.delivered_link_ids[0], op="finally")
            yield ctx.exit()

        system.spawn(early_consumer, machine=2, name="consumer")
        system.spawn(late_provider, machine=1, name="provider")
        switchboard_pid = system.server_pids["switchboard"]
        system.loop.call_at(
            20_000, lambda: system.migrate(switchboard_pid, 3),
        )
        drain(system)
        assert resolved == ["finally"]


class TestMigratingProcessManager:
    def test_pm_keeps_serving_after_migration(self):
        system = make_system(notify_process_manager=True)
        replies = []

        def client(ctx):
            yield ctx.sleep(30_000)  # after the PM has moved
            reply = yield from rpc(
                ctx, ctx.bootstrap["process_manager"], "create-process",
                {"program": "compute", "machine": 1,
                 "params": {"total": 1_000}},
            )
            replies.append(reply.payload)
            yield ctx.exit()

        pm_pid = system.server_pids["process_manager"]
        system.spawn(client, machine=2, name="client")
        system.loop.call_at(5_000, lambda: system.migrate(pm_pid, 2))
        drain(system)
        assert replies and replies[0]["ok"]
        assert system.where_is(pm_pid) == 2

    def test_pm_migration_during_create_request(self):
        """The PM moves while a create-process request is mid-flight:
        the request is forwarded, the spawn-reply chases the PM's new
        location (the kernel answers reply_to at its recorded machine,
        which forwarding fixes)."""
        system = make_system(notify_process_manager=True)
        replies = []

        def client(ctx):
            reply = yield from rpc(
                ctx, ctx.bootstrap["process_manager"], "create-process",
                {"program": "compute", "machine": 3,
                 "params": {"total": 1_000}},
            )
            replies.append(reply.payload)
            yield ctx.exit()

        pm_pid = system.server_pids["process_manager"]
        system.spawn(client, machine=3, name="client")
        # Fire the migration immediately: it races the request.
        system.migrate(pm_pid, 1)
        drain(system)
        assert replies and replies[0]["ok"], replies
