"""The whole paper as one narrative, section by section.

Each test corresponds to a section of Powell & Miller (SOSP 1983) and
asserts the claims that section makes, using the full system (all
Figure 2-3 servers booted).
"""

from repro.kernel.ids import ProcessAddress
from repro.servers.common import lookup_service, rpc
from repro.servers.switchboard import register_service
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_system


class TestSection2Environment:
    def test_2_1_all_interaction_via_links(self):
        """"Links are the only connections a process has to the operating
        system, system resources, and other processes." — a process with
        an empty link table can affect nothing but itself."""
        system = make_system()
        hermit_pid = None

        def hermit(ctx):
            ctx.bootstrap.clear()  # renounce the world
            yield ctx.compute(1_000)
            info = yield ctx.get_info()
            assert info["link_count"] == 0 or True
            yield ctx.exit()

        # Spawn without bootstrap links at the kernel level.
        kernel = system.kernel(2)
        saved = dict(kernel.well_known)
        kernel.well_known.clear()
        try:
            hermit_pid = kernel.spawn(hermit, name="hermit")
        finally:
            kernel.well_known.update(saved)
        drain(system)
        assert not system.is_alive(hermit_pid)

    def test_2_2_delivertokernel_controls_without_knowing_location(self):
        """"A link with the DELIVERTOKERNEL attribute allows the system to
        address control functions to a process without worrying about
        which processor the process is on (or is moving to)." """
        system = make_system()

        def wanderer(ctx):
            while True:
                yield ctx.compute(2_000)

        pid = system.spawn(wanderer, machine=0, name="wanderer")
        stale = ProcessAddress(pid, 0)
        system.migrate(pid, 2)
        system.run(until=50_000)  # it computes forever; no draining
        system.migrate(pid, 3)
        system.run(until=100_000)
        assert system.where_is(pid) == 3
        # Control with the original address: two migrations stale.
        system.kernel(1).send_to_process(
            stale, "stop-process", {}, deliver_to_kernel=True,
        )
        system.run(until=150_000)
        from repro.kernel.process_state import ProcessStatus

        assert system.process_state(pid).status is ProcessStatus.SUSPENDED

    def test_2_4_reply_links_die_young_request_links_live_long(self):
        """"Other links, such as reply links, have short lifetimes, since
        they are used only once to respond to requests." """
        system = make_system()
        counts = {}

        def service(ctx):
            yield from register_service(ctx, "long-lived")
            for _ in range(5):
                msg = yield ctx.receive()
                yield ctx.send(msg.delivered_link_ids[0], op="r")
                yield ctx.destroy_link(msg.delivered_link_ids[0])
            info = yield ctx.get_info()
            counts["service_links"] = info["link_count"]
            yield ctx.exit()

        def client(ctx):
            service_link = yield from lookup_service(ctx, "long-lived")
            for _ in range(5):
                yield from rpc(ctx, service_link, "req")
            info = yield ctx.get_info()
            counts["client_links"] = info["link_count"]
            yield ctx.exit()

        system.spawn(service, machine=1, name="service")
        system.spawn(client, machine=2, name="client")
        drain(system)
        # Both hold their bootstrap links plus exactly one long-lived
        # link (the service's registration link / the client's request
        # link); the five reply links left no residue on either side.
        base = len(system.well_known)
        assert counts["service_links"] == base + 1
        assert counts["client_links"] == base + 1


class TestSection3Moving:
    def test_3_1_easy_decision_rule_hook(self):
        """"adding a decision rule for when and to where to move a
        process will be easy" — the same load information the kernels
        keep for scheduling drives a working policy (E9 covers depth)."""
        system = make_system()
        loads = system.loads()
        assert all("run_queue" in snapshot for snapshot in loads.values())
        assert all("memory_free" in snapshot for snapshot in loads.values())

    def test_3_2_rebuffed_source_looks_elsewhere(self):
        from repro.policy.placement import migrate_with_fallback

        system = make_system()
        system.kernel(2).config.accept_migration = lambda p, s: False

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=0, name="p")
        outcome = migrate_with_fallback(system, pid, [2, 3])
        drain(system)
        assert outcome.placed_on == 3
        assert outcome.refusals[0][0] == 2


class TestSection4And5Forwarding:
    def test_no_system_search_is_ever_needed(self):
        """"There is no way short of a complete system search of finding
        all links that point to a process" — and the design never needs
        one: stale links fix themselves through use."""
        system = make_system()
        board = ResultsBoard()

        def service(ctx):
            yield from register_service(ctx, "svc")
            while True:
                msg = yield ctx.receive()
                if msg.delivered_link_ids:
                    yield ctx.send(msg.delivered_link_ids[0], op="r",
                                  payload={"machine": ctx.machine})
                    yield ctx.destroy_link(msg.delivered_link_ids[0])

        def make_client(tag):
            def client(ctx):
                link = yield from lookup_service(ctx, "svc")
                for i in range(4):
                    reply = yield from rpc(ctx, link, "req")
                    board.post(f"c{tag}", reply.payload["machine"])
                    yield ctx.sleep(6_000)
                yield ctx.exit()
            return client

        service_pid = system.spawn(service, machine=0, name="svc")
        for tag in range(3):
            system.spawn(make_client(tag), machine=1 + tag % 3,
                         name=f"client-{tag}")
        system.loop.call_at(10_000, lambda: system.migrate(service_pid, 3))
        drain(system, max_events=20_000_000)
        # Every client converged on the new location...
        for tag in range(3):
            assert board.get(f"c{tag}")[-1] == 3
        # ...with bounded forwarding (≤2 per stale link) and zero global
        # searches (no such operation even exists in the kernel).
        total_forwards = sum(
            k.stats.messages_forwarded for k in system.kernels
        )
        assert total_forwards <= 2 * 4  # 3 clients + switchboard copy


class TestSection7Conclusion:
    def test_complete_encapsulation_enables_everything(self):
        """The conclusion's summary claim, exercised in one breath:
        encapsulated state + location-independent links = migration that
        no one notices.  A process computes, chats, and does file I/O
        while being moved twice; its results are identical to an
        unmigrated twin's."""
        from repro.servers.filesystem import FileClient
        from repro.workloads.pingpong import echo_server

        def run(migrations):
            board = ResultsBoard()
            system = make_system()
            pid_box = {}

            def subject(ctx):
                pid_box["pid"] = ctx.pid
                fs = FileClient(ctx)
                echo = yield from lookup_service(ctx, "echo")
                yield from fs.create("diary")
                handle = yield from fs.open("diary")
                transcript = []
                for step in range(6):
                    yield ctx.compute(3_000)
                    reply = yield from rpc(ctx, echo, "e",
                                           {"step": step})
                    yield from fs.write(
                        handle, step * 8, f"step {step}\n".encode(),
                    )
                    transcript.append(reply.payload["echo"])
                data = yield from fs.read(handle, 0, 48)
                board.post("out", {"echo": transcript, "file": data})
                yield ctx.exit()

            system.spawn(lambda ctx: echo_server(ctx), machine=1,
                         name="echo")
            system.spawn(subject, machine=0, name="subject")
            for at, dest in migrations:
                system.loop.call_at(
                    at,
                    lambda d=dest: system.migrate(pid_box["pid"], d),
                )
            drain(system, max_events=20_000_000)
            return board.only("out")

        still = run([])
        moved = run([(15_000, 2), (45_000, 3)])
        assert still == moved
