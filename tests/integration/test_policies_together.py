"""The full §7 vision: decision policies and GC running concurrently."""

from repro.policy.gc import ForwardingSweeper
from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.workloads.compute import compute_bound
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_system


class TestPoliciesTogether:
    def test_balancer_and_sweeper_coexist(self):
        board = ResultsBoard()
        system = make_system()
        # Imbalanced compute arrivals on machine 0 + live echo traffic.
        system.spawn(lambda ctx: echo_server(ctx), machine=2, name="echo")
        system.spawn(
            lambda ctx: pinger(ctx, rounds=12, gap=10_000, board=board,
                               key="ping"),
            machine=3, name="pinger",
        )
        for i in range(6):
            system.spawn(
                lambda ctx: compute_bound(ctx, total=60_000, board=board,
                                          key="compute"),
                machine=0, name=f"job-{i}",
            )
        balancer = ThresholdLoadBalancer(
            system, interval=8_000, threshold=2, sustain=1,
            cooldown=40_000,
        )
        sweeper = ForwardingSweeper(
            system, interval=50_000, max_age=150_000,
        )
        balancer.install()
        sweeper.install()
        system.run(until=800_000)
        balancer.stop()
        sweeper.stop()
        drain(system, max_events=50_000_000)

        # Work got spread and finished.
        assert balancer.stats.migrations_succeeded >= 2
        assert len(board.get("compute")) == 6
        # Echo traffic unharmed by all the churn.
        transcript = board.only("ping-summary")["transcript"]
        assert [t["round"] for t in transcript] == list(range(12))
        # The sweeper eventually reclaimed the migration residue for
        # processes that have exited (death-GC) or aged out.
        assert sweeper.stats.sweeps >= 3
        # No forwarding entry survives for a dead process.
        for kernel in system.kernels:
            for entry in kernel.forwarding.entries():
                assert system.is_alive(entry.pid)

    def test_balanced_compute_results_identical_to_static(self):
        """Policies change *where and when* work runs, never its output."""

        def run(balanced):
            board = ResultsBoard()
            system = make_system()
            for i in range(4):
                system.spawn(
                    lambda ctx, t=i: compute_bound(
                        ctx, total=40_000, board=board, key="c",
                    ),
                    machine=0, name=f"job-{i}",
                )
            balancer = None
            if balanced:
                balancer = ThresholdLoadBalancer(
                    system, interval=8_000, threshold=2, sustain=1,
                )
                balancer.install()
            system.run(until=600_000)
            if balancer:
                balancer.stop()
            drain(system, max_events=50_000_000)
            records = board.get("c")
            return sorted(
                (str(r["pid"]), r["elapsed"] >= 40_000) for r in records
            )

        static = run(False)
        balanced = run(True)
        assert [p for p, _ in static] == [p for p, _ in balanced]
        assert all(done for _, done in static)
        assert all(done for _, done in balanced)
